"""Semantic validation of CNX documents.

.. deprecated:: compatibility shim
    The checks that used to live here moved into the pluggable static
    analyzer, :mod:`repro.analysis` -- one diagnostics engine shared by
    this module, the ``python -m repro.analysis`` CLI, the client
    runner, and the portal.  :func:`collect_problems` and
    :func:`validate` remain as thin wrappers (error-severity findings,
    rendered in the historical message format) so existing callers keep
    working; new code should call :func:`repro.analysis.analyze_cnx`
    directly and get structured :class:`~repro.analysis.Diagnostic`
    records with stable ``CNxxx`` codes, source locations and fix hints.

The parser guarantees well-formedness; the analyzer checks the
properties the CN runtime depends on: unique task names, resolvable and
acyclic ``depends`` relations, positive memory, known runmodels,
well-typed parameters, dynamic-invocation multiplicities, message-flow
deadlock freedom, and the client-level job partial order.
"""

from __future__ import annotations

from .schema import CnxDocument

__all__ = ["CnxValidationError", "validate", "collect_problems"]


class CnxValidationError(ValueError):
    """Raised by :func:`validate`; ``problems`` holds the message list.

    ``diagnostics`` (when validation ran through the analyzer) holds the
    structured :class:`~repro.analysis.Diagnostic` records behind those
    messages."""

    def __init__(self, problems: list[str], diagnostics=None) -> None:
        self.problems = problems
        self.diagnostics = list(diagnostics) if diagnostics is not None else []
        joined = "\n  - ".join(problems)
        super().__init__(f"CNX document is not valid:\n  - {joined}")


def collect_problems(doc: CnxDocument) -> list[str]:
    """Error-severity analyzer findings as plain message strings.

    Deprecated thin wrapper over :func:`repro.analysis.analyze_cnx`
    (kept for backward compatibility; messages preserve the historical
    phrasing)."""
    from repro.analysis import analyze_cnx

    return analyze_cnx(doc).legacy_problems()


def validate(doc: CnxDocument) -> CnxDocument:
    """Raise :class:`CnxValidationError` on error-severity findings.

    Deprecated thin wrapper over :func:`repro.analysis.analyze_cnx`;
    warnings pass through silently here -- use the analyzer directly to
    see them."""
    from repro.analysis import analyze_cnx

    report = analyze_cnx(doc)
    if not report.ok:
        raise CnxValidationError(report.legacy_problems(), report.errors())
    return doc
