"""Semantic validation of CNX documents.

The parser guarantees well-formedness; this module checks the properties
the CN runtime depends on:

* task names unique within a job,
* every ``depends`` entry names a task in the same job,
* the dependency relation is acyclic (a CN job is a DAG),
* memory requirements positive, runmodels known,
* dynamic tasks carry a multiplicity (and anything with a multiplicity
  or argument expression is marked dynamic).

The validator reports *all* problems, and :func:`validate` raises a
single :class:`CnxValidationError` carrying the list -- mirroring the
activity-graph validator so both ends of the transform give symmetric
diagnostics.
"""

from __future__ import annotations

from ..uml.tags import CNProfile
from .schema import CnxDocument, CnxJob

__all__ = ["CnxValidationError", "validate", "collect_problems"]


class CnxValidationError(ValueError):
    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        joined = "\n  - ".join(problems)
        super().__init__(f"CNX document is not valid:\n  - {joined}")


def collect_problems(doc: CnxDocument) -> list[str]:
    problems: list[str] = []
    if not doc.client.cls:
        problems.append("client has empty class name")
    if not (0 < doc.client.port < 65536):
        problems.append(f"client port {doc.client.port} out of range")
    for index, job in enumerate(doc.client.jobs):
        label = job.name or f"job[{index}]"
        problems.extend(_job_problems(label, job))
    problems.extend(_job_order_problems(doc))
    return problems


def _job_order_problems(doc: CnxDocument) -> list[str]:
    """The client-level partial order must reference named jobs and be
    acyclic (paper section 4)."""
    problems: list[str] = []
    names = [j.name for j in doc.client.jobs if j.name]
    duplicates = {n for n in names if names.count(n) > 1}
    for dup in sorted(duplicates):
        problems.append(f"duplicate job name {dup!r}")
    known = set(names)
    for job in doc.client.jobs:
        for prerequisite in job.after:
            if prerequisite not in known:
                problems.append(
                    f"job {job.name or '<unnamed>'} is after unknown job "
                    f"{prerequisite!r}"
                )
            if job.name and prerequisite == job.name:
                problems.append(f"job {job.name!r} is after itself")
        if job.after and not job.name:
            problems.append("a job with 'after' ordering must be named")
    if not problems and any(j.after for j in doc.client.jobs):
        # cycle check via iterative peeling
        remaining = {j.name: set(j.after) for j in doc.client.jobs if j.name}
        while remaining:
            ready = [n for n, deps in remaining.items() if not deps]
            if not ready:
                problems.append(
                    f"cyclic job ordering among {sorted(remaining)}"
                )
                break
            for name in ready:
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
    return problems


def _job_problems(label: str, job: CnxJob) -> list[str]:
    problems: list[str] = []
    names = job.task_names()
    seen: set[str] = set()
    for name in names:
        if name in seen:
            problems.append(f"{label}: duplicate task name {name!r}")
        seen.add(name)
    for task in job.tasks:
        for dep in task.depends:
            if dep not in seen:
                problems.append(
                    f"{label}: task {task.name!r} depends on unknown task {dep!r}"
                )
            if dep == task.name:
                problems.append(f"{label}: task {task.name!r} depends on itself")
        if task.task_req.memory <= 0:
            problems.append(
                f"{label}: task {task.name!r} has non-positive memory "
                f"{task.task_req.memory}"
            )
        if task.task_req.retries < 0:
            problems.append(
                f"{label}: task {task.name!r} has negative retries "
                f"{task.task_req.retries}"
            )
        if task.task_req.runmodel not in CNProfile.KNOWN_RUNMODELS:
            problems.append(
                f"{label}: task {task.name!r} has unknown runmodel "
                f"{task.task_req.runmodel!r}"
            )
        if task.dynamic and not task.multiplicity:
            problems.append(f"{label}: dynamic task {task.name!r} lacks multiplicity")
        if not task.dynamic and (task.multiplicity or task.arguments):
            problems.append(
                f"{label}: task {task.name!r} has dynamic attributes but is not "
                "marked dynamic"
            )
    # Cycle check only makes sense once all deps resolve.
    if not problems:
        try:
            job.topological()
        except ValueError as exc:
            problems.append(f"{label}: {exc}")
    return problems


def validate(doc: CnxDocument) -> CnxDocument:
    problems = collect_problems(doc)
    if problems:
        raise CnxValidationError(problems)
    return doc
