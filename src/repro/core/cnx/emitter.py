"""Serialize a CNX document model to XML matching paper Fig. 2.

Layout fidelity matters here: the Fig. 2 reproduction test compares the
emitted descriptor canonically against the listing in the paper, so the
element and attribute vocabulary (``cn2``/``client``/``job``/``task``/
``task-req``/``memory``/``runmodel``/``param``) and their order follow
the figure exactly.  Paper quirk kept as-is: worker tasks list
``<param>`` before ``<task-req>`` for tctask1..5 in the figure but after
for the splitter/joiner; we emit ``task-req`` first uniformly (canonical
comparison is order-insensitive for this, and uniformity is kinder to
consumers).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.util.xmlutil import pretty_print

from .schema import CnxDocument, CnxJob, CnxTask

__all__ = ["emit", "to_element"]


def to_element(doc: CnxDocument) -> ET.Element:
    """Build the ``<cn2>`` element tree for *doc*."""
    root = ET.Element("cn2")
    client = doc.client
    client_elem = ET.SubElement(
        root,
        "client",
        {
            "class": client.cls,
            "log": client.log,
            "port": str(client.port),
        },
    )
    for job in client.jobs:
        _emit_job(client_elem, job)
    return root


def _emit_job(parent: ET.Element, job: CnxJob) -> None:
    attrs = {"name": job.name} if job.name else {}
    if job.after:
        attrs["after"] = ",".join(job.after)
    job_elem = ET.SubElement(parent, "job", attrs)
    for task in job.tasks:
        _emit_task(job_elem, task)


def _emit_task(parent: ET.Element, task: CnxTask) -> None:
    attrs = {
        "name": task.name,
        "jar": task.jar,
        "class": task.cls,
        "depends": ",".join(task.depends),
    }
    if task.dynamic:
        attrs["dynamic"] = "true"
        if task.multiplicity:
            attrs["multiplicity"] = task.multiplicity
        if task.arguments:
            attrs["arguments"] = task.arguments
    # message-flow extension attributes; omitted when empty so Fig. 2
    # output stays byte-compatible with the paper
    if task.sends:
        attrs["sends"] = ",".join(task.sends)
    if task.receives:
        attrs["receives"] = ",".join(task.receives)
    task_elem = ET.SubElement(parent, "task", attrs)
    req = ET.SubElement(task_elem, "task-req")
    memory = ET.SubElement(req, "memory")
    memory.text = str(task.task_req.memory)
    runmodel = ET.SubElement(req, "runmodel")
    runmodel.text = task.task_req.runmodel
    if task.task_req.retries:
        # extension element; omitted at the default so Fig. 2 output is
        # byte-compatible with the paper
        retries = ET.SubElement(req, "retries")
        retries.text = str(task.task_req.retries)
    for param in task.params:
        param_elem = ET.SubElement(task_elem, "param", {"type": param.type})
        param_elem.text = param.value


def emit(doc: CnxDocument) -> str:
    """The CNX descriptor as a pretty-printed XML string."""
    return pretty_print(to_element(doc))
