"""CNX: the CN compositional language (paper Fig. 2).

CNX is an XML dialect that "captures the details of the client program"
(paper Fig. 1): a ``<cn2>`` root holding one ``<client>`` with its class
name, log file and port, containing one or more ``<job>`` elements, each
a list of ``<task>`` elements.  Every task names its archive (``jar``),
implementation ``class``, a comma-separated ``depends`` list, a
``<task-req>`` block (memory, runmodel) and ordered ``<param>``
children.

This module defines the document model as plain dataclasses.  The
``dynamic`` / ``multiplicity`` / ``arguments`` attributes are our
documented CNX extension carrying the paper's Fig. 5 dynamic-invocation
semantics through to the generated client (the paper notes the run-time
argument expression "would be specified separately"; CNX is where we
specify it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "CnxParam",
    "CnxTaskReq",
    "CnxTask",
    "CnxJob",
    "CnxClient",
    "CnxDocument",
    "DEFAULT_RUNMODEL",
    "DEFAULT_MEMORY",
    "DEFAULT_PORT",
]

DEFAULT_RUNMODEL = "RUN_AS_THREAD_IN_TM"
DEFAULT_MEMORY = 1000
DEFAULT_PORT = 5666


@dataclass
class CnxParam:
    """One ``<param type="...">value</param>`` task constructor argument."""

    type: str
    value: str

    def python_value(self):
        """The parameter value coerced per its declared CNX type."""
        if self.type in ("Integer", "int", "java.lang.Integer"):
            return int(self.value)
        if self.type in ("Long", "java.lang.Long"):
            return int(self.value)
        if self.type in ("Double", "Float", "java.lang.Double"):
            return float(self.value)
        if self.type in ("Boolean", "java.lang.Boolean"):
            return self.value.strip().lower() == "true"
        return self.value


@dataclass
class CnxTaskReq:
    """The ``<task-req>`` resource requirements block.

    ``retries`` is our documented extension (default 0 keeps Fig. 2
    byte-compatible): how many times the framework re-places and reruns
    the task after a failure before failing the job."""

    memory: int = DEFAULT_MEMORY
    runmodel: str = DEFAULT_RUNMODEL
    retries: int = 0


@dataclass
class CnxTask:
    """One ``<task>``: a unit of work the CN framework schedules."""

    name: str
    jar: str
    cls: str
    depends: list[str] = field(default_factory=list)
    task_req: CnxTaskReq = field(default_factory=CnxTaskReq)
    params: list[CnxParam] = field(default_factory=list)
    # Fig. 5 extension: dynamic invocation
    dynamic: bool = False
    multiplicity: str = ""
    arguments: str = ""
    # message-flow extension: declared send/receive endpoints (comma
    # lists of task names, or "*").  Purely declarative -- the static
    # analyzer pairs them across tasks to prove the protocol free of
    # unmatched or cyclic waits before the job is placed.
    sends: list[str] = field(default_factory=list)
    receives: list[str] = field(default_factory=list)

    def param_values(self) -> list:
        return [p.python_value() for p in self.params]


@dataclass
class CnxJob:
    """One ``<job>``: a DAG of tasks executed as a unit.

    ``name``/``after`` carry the client-level partial order of paper
    section 4 ("a client consisting of more than one job ... performs the
    jobs in some partial order"): a job starts only after every job named
    in ``after`` has completed; jobs with no ordering between them may run
    concurrently.  Both are omitted for single-job clients, keeping Fig. 2
    output byte-compatible."""

    tasks: list[CnxTask] = field(default_factory=list)
    name: str = ""
    after: list[str] = field(default_factory=list)

    def find(self, task_name: str) -> CnxTask:
        for task in self.tasks:
            if task.name == task_name:
                return task
        raise KeyError(f"no task named {task_name!r}")

    def task_names(self) -> list[str]:
        return [t.name for t in self.tasks]

    def roots(self) -> list[CnxTask]:
        """Tasks with no dependencies (started first)."""
        return [t for t in self.tasks if not t.depends]

    def dependents_of(self, task_name: str) -> list[CnxTask]:
        return [t for t in self.tasks if task_name in t.depends]

    def topological(self) -> list[CnxTask]:
        """Tasks in dependency order; raises ``ValueError`` on a cycle."""
        order: list[CnxTask] = []
        done: set[str] = set()
        visiting: set[str] = set()

        def visit(task: CnxTask) -> None:
            if task.name in done:
                return
            if task.name in visiting:
                raise ValueError(f"dependency cycle through task {task.name!r}")
            visiting.add(task.name)
            for dep in task.depends:
                visit(self.find(dep))
            visiting.discard(task.name)
            done.add(task.name)
            order.append(task)

        for task in self.tasks:
            visit(task)
        return order


@dataclass
class CnxClient:
    """The ``<client>``: one client program composed of jobs."""

    cls: str
    log: str = ""
    port: int = DEFAULT_PORT
    jobs: list[CnxJob] = field(default_factory=list)

    def all_tasks(self) -> Iterator[CnxTask]:
        for job in self.jobs:
            yield from job.tasks


@dataclass
class CnxDocument:
    """The ``<cn2>`` document root."""

    client: CnxClient

    @property
    def jobs(self) -> list[CnxJob]:
        return self.client.jobs
