"""CNX: the CN compositional language (paper Fig. 2) -- model, parser,
emitter, validator."""

from .emitter import emit, to_element
from .parser import CnxParseError, parse, parse_element
from .schema import (
    DEFAULT_MEMORY,
    DEFAULT_PORT,
    DEFAULT_RUNMODEL,
    CnxClient,
    CnxDocument,
    CnxJob,
    CnxParam,
    CnxTask,
    CnxTaskReq,
)
from .validate import CnxValidationError, collect_problems, validate

__all__ = [
    "CnxDocument",
    "CnxClient",
    "CnxJob",
    "CnxTask",
    "CnxTaskReq",
    "CnxParam",
    "DEFAULT_MEMORY",
    "DEFAULT_PORT",
    "DEFAULT_RUNMODEL",
    "emit",
    "to_element",
    "parse",
    "parse_element",
    "CnxParseError",
    "validate",
    "collect_problems",
    "CnxValidationError",
]
