"""Parse CNX XML into the document model.

Inverse of :mod:`repro.core.cnx.emitter`.  Tolerates both element orders
seen in paper Fig. 2 (``task-req`` before or after ``param``) and
missing optional attributes, but raises :class:`CnxParseError` on
structural problems so malformed descriptors never reach the runtime.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from .schema import (
    DEFAULT_MEMORY,
    DEFAULT_PORT,
    DEFAULT_RUNMODEL,
    CnxClient,
    CnxDocument,
    CnxJob,
    CnxParam,
    CnxTask,
    CnxTaskReq,
)

__all__ = ["CnxParseError", "parse", "parse_element"]


class CnxParseError(ValueError):
    """Raised on malformed CNX documents."""


def parse(text: str) -> CnxDocument:
    """Parse a CNX descriptor string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CnxParseError(f"not well-formed XML: {exc}") from exc
    return parse_element(root)


def parse_element(root: ET.Element) -> CnxDocument:
    if root.tag != "cn2":
        raise CnxParseError(f"expected <cn2> root, found <{root.tag}>")
    client_elems = root.findall("client")
    if len(client_elems) != 1:
        raise CnxParseError(f"expected exactly one <client>, found {len(client_elems)}")
    client_elem = client_elems[0]
    cls = client_elem.get("class")
    if not cls:
        raise CnxParseError("<client> missing class attribute")
    port_text = client_elem.get("port", str(DEFAULT_PORT))
    try:
        port = int(port_text)
    except ValueError:
        raise CnxParseError(f"<client> port is not an integer: {port_text!r}") from None
    client = CnxClient(cls=cls, log=client_elem.get("log", ""), port=port)
    for job_elem in client_elem.findall("job"):
        client.jobs.append(_parse_job(job_elem))
    if not client.jobs:
        raise CnxParseError("<client> contains no <job>")
    return CnxDocument(client)


def _parse_job(job_elem: ET.Element) -> CnxJob:
    after_text = job_elem.get("after", "")
    job = CnxJob(
        name=job_elem.get("name", ""),
        after=[a.strip() for a in after_text.split(",") if a.strip()],
    )
    for task_elem in job_elem.findall("task"):
        job.tasks.append(_parse_task(task_elem))
    if not job.tasks:
        raise CnxParseError("<job> contains no <task>")
    return job


def _parse_task(task_elem: ET.Element) -> CnxTask:
    name = task_elem.get("name")
    jar = task_elem.get("jar")
    cls = task_elem.get("class")
    if not name:
        raise CnxParseError("<task> missing name attribute")
    if not jar:
        raise CnxParseError(f"task {name!r} missing jar attribute")
    if not cls:
        raise CnxParseError(f"task {name!r} missing class attribute")
    def name_list(attr: str) -> list[str]:
        text = task_elem.get(attr, "")
        return [part.strip() for part in text.split(",") if part.strip()]

    task = CnxTask(
        name=name,
        jar=jar,
        cls=cls,
        depends=name_list("depends"),
        dynamic=task_elem.get("dynamic", "false") == "true",
        multiplicity=task_elem.get("multiplicity", ""),
        arguments=task_elem.get("arguments", ""),
        sends=name_list("sends"),
        receives=name_list("receives"),
    )
    req_elems = task_elem.findall("task-req")
    if len(req_elems) > 1:
        raise CnxParseError(f"task {name!r} has {len(req_elems)} <task-req> blocks")
    if req_elems:
        task.task_req = _parse_task_req(name, req_elems[0])
    for param_elem in task_elem.findall("param"):
        ptype = param_elem.get("type", "String")
        task.params.append(CnxParam(type=ptype, value=param_elem.text or ""))
    return task


def _parse_task_req(task_name: str, req_elem: ET.Element) -> CnxTaskReq:
    memory = DEFAULT_MEMORY
    runmodel = DEFAULT_RUNMODEL
    memory_elem = req_elem.find("memory")
    if memory_elem is not None and memory_elem.text:
        try:
            memory = int(memory_elem.text.strip())
        except ValueError:
            raise CnxParseError(
                f"task {task_name!r} has non-integer memory {memory_elem.text!r}"
            ) from None
    runmodel_elem = req_elem.find("runmodel")
    if runmodel_elem is not None and runmodel_elem.text:
        runmodel = runmodel_elem.text.strip()
    retries = 0
    retries_elem = req_elem.find("retries")
    if retries_elem is not None and retries_elem.text:
        try:
            retries = int(retries_elem.text.strip())
        except ValueError:
            raise CnxParseError(
                f"task {task_name!r} has non-integer retries "
                f"{retries_elem.text!r}"
            ) from None
    return CnxTaskReq(memory=memory, runmodel=runmodel, retries=retries)
