"""Command-line front end for the transformation chain.

``cn-pipeline`` mirrors the paper's tool usage: feed it an XMI export
(or ask for a built-in example model), get the CNX descriptor, the
generated client program, or a full execution.

Examples::

    cn-pipeline cnx model.xmi                 # XMI -> CNX on stdout
    cn-pipeline python model.xmi              # XMI -> generated client
    cn-pipeline java model.xmi                # XMI -> CNX2Java output
    cn-pipeline run model.xmi --workers 4     # full Fig. 6 execution
    cn-pipeline example-xmi --workers 5       # emit the Fig. 3 model's XMI
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cn-pipeline",
        description="Model-driven CN job composition (XMI -> CNX -> client)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("cnx", "transform XMI to a CNX client descriptor"),
        ("python", "transform XMI to the generated Python client"),
        ("java", "transform XMI to the generated Java client"),
        ("run", "run the whole pipeline and execute on a simulated cluster"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("xmi", type=Path, help="XMI document (UML 1.x activity graph)")
        cmd.add_argument(
            "--transform",
            choices=("xslt", "native"),
            default="xslt",
            help="XMI->CNX implementation (default: the XSLT stylesheet)",
        )
        if name == "run":
            cmd.add_argument("--nodes", type=int, default=4, help="cluster size")
            cmd.add_argument(
                "--runtime-args",
                default="{}",
                help="JSON dict bound to dynamic-invocation expressions",
            )
            cmd.add_argument("--timeout", type=float, default=120.0)

    example = sub.add_parser(
        "example-xmi", help="emit the guiding example's XMI (paper Fig. 3 model)"
    )
    example.add_argument("--workers", type=int, default=5)
    example.add_argument("--matrix", default="matrix.txt")

    render = sub.add_parser(
        "render", help="render the activity diagram(s) in an XMI document"
    )
    render.add_argument("xmi", type=Path)
    render.add_argument(
        "--format", choices=("ascii", "dot"), default="ascii", dest="fmt"
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    options = build_parser().parse_args(argv)

    if options.command == "example-xmi":
        from repro.apps.floyd.model import build_fig3_model
        from repro.core.xmi.writer import write_graph

        graph = build_fig3_model(
            n_workers=options.workers, matrix_source=options.matrix
        )
        sys.stdout.write(write_graph(graph))
        return 0

    xmi_text = options.xmi.read_text()

    if options.command == "render":
        from repro.core.uml.render import to_ascii, to_dot
        from repro.core.xmi.reader import read_graphs

        renderer = to_ascii if options.fmt == "ascii" else to_dot
        for graph in read_graphs(xmi_text):
            sys.stdout.write(renderer(graph))
            sys.stdout.write("\n")
        return 0

    from .cnx2code import cnx_to_java, cnx_to_python
    from .xmi2cnx import xmi_to_cnx, xmi_to_cnx_native

    to_cnx = xmi_to_cnx if options.transform == "xslt" else xmi_to_cnx_native
    doc = to_cnx(xmi_text)

    if options.command == "cnx":
        from ..cnx.emitter import emit

        sys.stdout.write(emit(doc))
        return 0
    if options.command == "python":
        sys.stdout.write(cnx_to_python(doc))
        return 0
    if options.command == "java":
        sys.stdout.write(cnx_to_java(doc))
        return 0

    # run
    from repro.apps.floyd import register_floyd_tasks
    from repro.apps.montecarlo import register_pi_tasks
    from repro.apps.wordcount import register_wordcount_tasks
    from repro.cn.cluster import Cluster
    from repro.cn.registry import TaskRegistry
    from .cnx2code import GeneratedClient

    registry = TaskRegistry()
    register_floyd_tasks(registry)
    register_pi_tasks(registry)
    register_wordcount_tasks(registry)
    registry.add_search_dir(options.xmi.parent)
    client = GeneratedClient(cnx_to_python(doc))
    runtime_args = json.loads(options.runtime_args)
    with Cluster(options.nodes, registry=registry) as cluster:
        job_results = client.run(cluster, runtime_args, options.timeout)
    for index, results in enumerate(job_results, start=1):
        print(f"# job {index}")
        for task_name in sorted(results):
            print(f"{task_name}: {_render(results[task_name])}")
    return 0


def _render(value) -> str:
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
