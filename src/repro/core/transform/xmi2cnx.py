"""XMI -> CNX transformation (paper section 5, step 3).

Two interchangeable implementations are provided:

* :func:`xmi_to_cnx` -- runs the real ``xmi2cnx.xsl`` stylesheet on the
  in-repo XSLT engine, faithful to the paper's XSLT-based tool;
* :func:`xmi_to_cnx_native` -- a direct Python transformer over the
  parsed UML model, used as a differential-testing oracle and as the
  fast path for big models.

Both must agree document-for-document; the test suite and the transform
benchmark enforce and measure that.

:func:`graph_to_cnx` converts an in-memory activity graph straight to a
CNX document (skipping the XMI detour) -- the convenience entry point
library users reach for when their model never leaves Python.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.xslt import Stylesheet, Transformer

from ..cnx.parser import parse as parse_cnx
from ..cnx.schema import (
    DEFAULT_PORT,
    CnxClient,
    CnxDocument,
    CnxJob,
    CnxParam,
    CnxTask,
    CnxTaskReq,
)
from ..uml.activity import ActivityGraph
from ..uml.model import Model
from ..uml.tags import CN_TAG_RECEIVES, CN_TAG_SENDS, CNProfile
from ..xmi.reader import read_model

__all__ = [
    "STYLESHEET_DIR",
    "xmi_to_cnx",
    "xmi_to_cnx_text",
    "xmi_to_cnx_native",
    "graph_to_cnx",
    "model_to_cnx",
    "load_stylesheet",
]

STYLESHEET_DIR = Path(__file__).parent / "stylesheets"

_sheet_cache: dict[str, Stylesheet] = {}


def load_stylesheet(name: str) -> Stylesheet:
    """Load (and cache) a packaged stylesheet by file name."""
    sheet = _sheet_cache.get(name)
    if sheet is None:
        sheet = Stylesheet.from_file(STYLESHEET_DIR / name)
        _sheet_cache[name] = sheet
    return sheet


def xmi_to_cnx_text(
    xmi_text: str, *, log: str = "CN_Client.log", port: int = DEFAULT_PORT
) -> str:
    """Run the XMI2CNX stylesheet; returns the CNX descriptor XML text."""
    sheet = load_stylesheet("xmi2cnx.xsl")
    transformer = Transformer(sheet)
    return transformer.transform(
        _prefixed_to_parseable(xmi_text),
        params={"log": log, "port": str(port)},
        restore_prefixes=True,
    )


def xmi_to_cnx(
    xmi_text: str, *, log: str = "CN_Client.log", port: int = DEFAULT_PORT
) -> CnxDocument:
    """XSLT path: XMI text -> parsed CNX document model."""
    return parse_cnx(xmi_to_cnx_text(xmi_text, log=log, port=port))


def _prefixed_to_parseable(xmi_text: str):
    from repro.util.xmlutil import parse_prefixed

    return parse_prefixed(xmi_text)


def xmi_to_cnx_native(
    xmi_text: str, *, log: str = "CN_Client.log", port: int = DEFAULT_PORT
) -> CnxDocument:
    """Native path: parse the XMI into the UML model and convert directly."""
    model = read_model(xmi_text)
    return model_to_cnx(model, log=log, port=port)


def model_to_cnx(
    model: Model, *, log: str = "CN_Client.log", port: int = DEFAULT_PORT
) -> CnxDocument:
    """Convert every activity graph of *model* into one CNX client.

    When a package declares a job partial order (paper section 4), the
    participating jobs are emitted with ``name``/``after`` attributes;
    otherwise jobs stay anonymous (Fig. 2 byte-compatibility)."""
    graphs = model.all_graphs()
    if not graphs:
        raise ValueError(f"model {model.name!r} contains no activity graphs")
    client = CnxClient(cls=graphs[0].name, log=log, port=port)
    ordered_names: set[str] = set()
    after_map: dict[str, list[str]] = {}
    for package in model.packages:
        for before, after in package.job_order:
            ordered_names.update((before, after))
            after_map.setdefault(after, []).append(before)
    for graph in graphs:
        job = _graph_to_job(graph)
        if graph.name in ordered_names:
            job.name = graph.name
            job.after = list(after_map.get(graph.name, []))
        client.jobs.append(job)
    return CnxDocument(client)


def graph_to_cnx(
    graph: ActivityGraph, *, log: str = "CN_Client.log", port: int = DEFAULT_PORT
) -> CnxDocument:
    """Convert a single job graph into a one-job CNX client."""
    client = CnxClient(cls=graph.name, log=log, port=port)
    client.jobs.append(_graph_to_job(graph))
    return CnxDocument(client)


def _name_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _graph_to_job(graph: ActivityGraph) -> CnxJob:
    deps = graph.action_dependencies()
    # paper Fig. 2 shows a bare <job> element: jobs are positional, so the
    # converted job carries no name (keeps XSLT and native output identical)
    job = CnxJob(name="")
    for action in graph.action_states():
        params = [
            CnxParam(type=ptype, value=value)
            for ptype, value in CNProfile.params(action)
        ]
        task = CnxTask(
            name=action.name,
            jar=action.get_tag("jar", "") or "",
            cls=action.get_tag("class", "") or "",
            depends=list(deps[action.name]),
            task_req=CnxTaskReq(
                memory=int(action.get_tag("memory", "1000") or "1000"),
                runmodel=action.get_tag("runmodel", "RUN_AS_THREAD_IN_TM")
                or "RUN_AS_THREAD_IN_TM",
                retries=int(action.get_tag("retries", "0") or "0"),
            ),
            params=params,
            dynamic=action.is_dynamic,
            multiplicity=action.dynamic_multiplicity if action.is_dynamic else "",
            arguments=action.dynamic_arguments if action.is_dynamic else "",
            # message-flow extension tags; the XSLT path predates them and
            # models carrying them should convert natively
            sends=_name_list(action.get_tag(CN_TAG_SENDS, "") or ""),
            receives=_name_list(action.get_tag(CN_TAG_RECEIVES, "") or ""),
        )
        job.tasks.append(task)
    return job
