"""The model-driven transformation chain (paper section 5): XMI2CNX,
CNX2Py/CNX2Java, and the Fig. 6 pipeline."""

from .cnx2code import (
    GeneratedClient,
    cnx_to_java,
    cnx_to_java_xslt,
    cnx_to_python,
    cnx_to_python_xslt,
)
from .pipeline import Pipeline, PipelineResult, run_pipeline
from .xmi2cnx import (
    STYLESHEET_DIR,
    graph_to_cnx,
    load_stylesheet,
    model_to_cnx,
    xmi_to_cnx,
    xmi_to_cnx_native,
    xmi_to_cnx_text,
)

__all__ = [
    "Pipeline",
    "PipelineResult",
    "run_pipeline",
    "GeneratedClient",
    "cnx_to_python",
    "cnx_to_java",
    "cnx_to_python_xslt",
    "cnx_to_java_xslt",
    "xmi_to_cnx",
    "xmi_to_cnx_text",
    "xmi_to_cnx_native",
    "graph_to_cnx",
    "model_to_cnx",
    "load_stylesheet",
    "STYLESHEET_DIR",
]
