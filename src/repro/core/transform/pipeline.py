"""The model-to-execution pipeline (paper Fig. 6).

One call runs all six steps the paper describes:

1. the UML model for the CN computation (an activity diagram),
2. export as an XMI document,
3. XMI -> CNX client descriptor (XSL transformation),
4. CNX -> client program in the target language (Python here),
5. deployment of the client program + task archives to a CN server,
6. execution of the client computation by the CN server.

Every intermediate artifact is kept on the :class:`PipelineResult` so
tests, benchmarks and the web portal can inspect or export them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.cn.cluster import Cluster
from repro.cn.registry import TaskRegistry

from ..cnx.emitter import emit as emit_cnx
from ..cnx.schema import CnxDocument
from ..cnx.validate import validate as validate_cnx
from ..uml.activity import ActivityGraph
from ..uml.model import Model
from ..uml.validate import validate_graph
from ..xmi.writer import write_model
from .cnx2code import (
    GeneratedClient,
    cnx_to_java,
    cnx_to_java_xslt,
    cnx_to_python,
    cnx_to_python_xslt,
)
from .xmi2cnx import xmi_to_cnx, xmi_to_cnx_native

__all__ = ["Pipeline", "PipelineResult", "run_pipeline"]


@dataclass
class PipelineResult:
    """All artifacts of one pipeline run, in production order."""

    model: Model
    xmi_text: str
    cnx_doc: CnxDocument
    cnx_text: str
    python_source: str
    java_source: str
    job_results: list[dict[str, Any]] = field(default_factory=list)
    step_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def results(self) -> dict[str, Any]:
        """Task results of the first job (the common single-job case)."""
        return self.job_results[0] if self.job_results else {}


class Pipeline:
    """Configurable Fig. 6 pipeline.

    ``transform`` picks the XMI->CNX implementation and ``codegen`` the
    CNX->client implementation: ``"xslt"`` (the paper-faithful stylesheet
    run on the in-repo engine, the default for the transform) or
    ``"native"`` (the Python generators).
    """

    def __init__(
        self,
        *,
        transform: str = "xslt",
        codegen: str = "native",
        log: str = "CN_Client.log",
        port: int = 5666,
    ) -> None:
        if transform not in ("xslt", "native"):
            raise ValueError(f"unknown transform {transform!r}")
        if codegen not in ("xslt", "native"):
            raise ValueError(f"unknown codegen {codegen!r}")
        self.transform = transform
        self.codegen = codegen
        self.log = log
        self.port = port

    # -- individual steps ---------------------------------------------------
    def to_model(self, source: Union[Model, ActivityGraph]) -> Model:
        """Step 1: accept/validate the UML model."""
        if isinstance(source, ActivityGraph):
            model = Model(source.name)
            model.new_package("cn").add_graph(source)
        else:
            model = source
        for graph in model.all_graphs():
            validate_graph(graph)
        return model

    def export_xmi(self, model: Model) -> str:
        """Step 2: export the model as XMI."""
        return write_model(model)

    def to_cnx(self, xmi_text: str) -> CnxDocument:
        """Step 3: XMI -> CNX (XSLT or native)."""
        if self.transform == "xslt":
            doc = xmi_to_cnx(xmi_text, log=self.log, port=self.port)
        else:
            doc = xmi_to_cnx_native(xmi_text, log=self.log, port=self.port)
        return validate_cnx(doc)

    def to_client(self, doc: CnxDocument) -> str:
        """Step 4: CNX -> Python client program source."""
        if self.codegen == "xslt":
            return cnx_to_python_xslt(doc)
        return cnx_to_python(doc)

    def to_java(self, doc: CnxDocument) -> str:
        """Step 4 (Java target): CNX -> Java client source."""
        if self.codegen == "xslt":
            return cnx_to_java_xslt(doc)
        return cnx_to_java(doc)

    def deploy(self, python_source: str) -> GeneratedClient:
        """Step 5: 'deploy' the client (compile it against the CN API)."""
        return GeneratedClient(python_source)

    # -- whole pipeline ---------------------------------------------------------
    def run(
        self,
        source: Union[Model, ActivityGraph],
        cluster: Optional[Cluster] = None,
        *,
        registry: Optional[TaskRegistry] = None,
        runtime_args: Optional[Mapping[str, Any]] = None,
        timeout: float = 60.0,
        execute: bool = True,
    ) -> PipelineResult:
        """Run steps 1-6; with ``execute=False`` stop after generation."""
        timings: dict[str, float] = {}

        def timed(step: str, fn, *args):
            start = time.perf_counter()
            value = fn(*args)
            timings[step] = time.perf_counter() - start
            return value

        model = timed("1-model", self.to_model, source)
        xmi_text = timed("2-xmi", self.export_xmi, model)
        cnx_doc = timed("3-cnx", self.to_cnx, xmi_text)
        cnx_text = emit_cnx(cnx_doc)
        python_source = timed("4-codegen", self.to_client, cnx_doc)
        java_source = self.to_java(cnx_doc)
        result = PipelineResult(
            model=model,
            xmi_text=xmi_text,
            cnx_doc=cnx_doc,
            cnx_text=cnx_text,
            python_source=python_source,
            java_source=java_source,
            step_seconds=timings,
        )
        if not execute:
            return result
        client = timed("5-deploy", self.deploy, python_source)
        owns_cluster = cluster is None
        if owns_cluster:
            cluster = Cluster(4, registry=registry)
        try:
            start = time.perf_counter()
            result.job_results = client.run(cluster, runtime_args, timeout)
            timings["6-execute"] = time.perf_counter() - start
        finally:
            if owns_cluster:
                cluster.shutdown()
        return result


def run_pipeline(
    source: Union[Model, ActivityGraph],
    cluster: Optional[Cluster] = None,
    **kwargs: Any,
) -> PipelineResult:
    """Convenience wrapper: default :class:`Pipeline` with keyword options
    split between constructor (transform/log/port) and run()."""
    ctor_keys = {"transform", "codegen", "log", "port"}
    ctor = {k: v for k, v in kwargs.items() if k in ctor_keys}
    run_kwargs = {k: v for k, v in kwargs.items() if k not in ctor_keys}
    return Pipeline(**ctor).run(source, cluster, **run_kwargs)
