<?xml version="1.0"?>
<!--
  XMI2CNX: transform a UML 1.x activity-graph XMI export into a CNX
  client descriptor (the paper's section 5, step 3).

  Mapping:
    UML:ActivityGraph                -> <job>
    UML:ActionState                  -> <task>
    tagged values (jar/class/memory/runmodel/ptypeN/pvalueN)
                                     -> task attributes, <task-req>, <param>
    transitions (through pseudostates) -> depends="..."
    isDynamic / dynamicMultiplicity / UML:ArgListsExpression
                                     -> dynamic="true" multiplicity/arguments

  The depends computation walks incoming transitions recursively,
  treating initial/fork/join pseudostates as transparent, so the nearest
  preceding ActionStates become the dependency list - exactly the
  relation Fig. 2 encodes.

  Stylesheet parameters:
    log   - value for client/@log   (default CN_Client.log)
    port  - value for client/@port  (default 5666)
-->
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="xml" indent="yes"/>
  <xsl:strip-space elements="*"/>

  <xsl:param name="log" select="'CN_Client.log'"/>
  <xsl:param name="port" select="'5666'"/>

  <!-- hash joins for the id/idref references (linear-time transform) -->
  <xsl:key name="tagdef-by-id" match="UML:TagDefinition" use="@xmi.id"/>
  <xsl:key name="vertex-by-id" match="*" use="@xmi.id"/>
  <xsl:key name="transition-by-target"
           match="UML:Transition"
           use="UML:Transition.target/*/@xmi.idref"/>
  <xsl:key name="dependency-by-client"
           match="UML:Dependency"
           use="UML:Dependency.client/*/@xmi.idref"/>

  <xsl:template match="/">
    <cn2>
      <client log="{$log}" port="{$port}">
        <xsl:attribute name="class">
          <xsl:value-of select="(//UML:ActivityGraph[not(@xmi.idref)])[1]/@name"/>
        </xsl:attribute>
        <xsl:apply-templates select="//UML:ActivityGraph[not(@xmi.idref)]"/>
      </client>
    </cn2>
  </xsl:template>

  <xsl:template match="UML:ActivityGraph">
    <xsl:variable name="gid" select="@xmi.id"/>
    <job>
      <!-- client-level partial order (paper section 4): graphs referenced
           by a UML:Dependency carry name/after attributes -->
      <xsl:if test="//UML:Dependency[UML:Dependency.client/*/@xmi.idref = $gid
                    or UML:Dependency.supplier/*/@xmi.idref = $gid]">
        <xsl:attribute name="name"><xsl:value-of select="@name"/></xsl:attribute>
        <xsl:variable name="afters">
          <xsl:for-each select="key('dependency-by-client', $gid)">
            <xsl:variable name="sid"
                          select="UML:Dependency.supplier/*/@xmi.idref"/>
            <xsl:value-of select="key('vertex-by-id', $sid)/@name"/>
            <xsl:text>,</xsl:text>
          </xsl:for-each>
        </xsl:variable>
        <xsl:if test="string-length($afters) &gt; 0">
          <xsl:attribute name="after">
            <xsl:value-of
                select="substring($afters, 1, string-length($afters) - 1)"/>
          </xsl:attribute>
        </xsl:if>
      </xsl:if>
      <xsl:apply-templates select=".//UML:ActionState[not(@xmi.idref)]"/>
    </job>
  </xsl:template>

  <!-- Resolve a tagged value on the current ActionState by tag name. -->
  <xsl:template name="tag-value">
    <xsl:param name="tag"/>
    <xsl:param name="state" select="."/>
    <xsl:for-each select="$state/UML:ModelElement.taggedValue/UML:TaggedValue">
      <xsl:variable name="defid"
                    select="UML:TaggedValue.type/UML:TagDefinition/@xmi.idref"/>
      <xsl:if test="key('tagdef-by-id', $defid)/@name = $tag">
        <xsl:value-of select="@dataValue"/>
      </xsl:if>
    </xsl:for-each>
  </xsl:template>

  <xsl:template match="UML:ActionState">
    <xsl:variable name="vid" select="@xmi.id"/>
    <xsl:variable name="rawdeps">
      <xsl:call-template name="collect-deps">
        <xsl:with-param name="vid" select="$vid"/>
      </xsl:call-template>
    </xsl:variable>
    <task name="{@name}">
      <xsl:attribute name="jar">
        <xsl:call-template name="tag-value">
          <xsl:with-param name="tag" select="'jar'"/>
        </xsl:call-template>
      </xsl:attribute>
      <xsl:attribute name="class">
        <xsl:call-template name="tag-value">
          <xsl:with-param name="tag" select="'class'"/>
        </xsl:call-template>
      </xsl:attribute>
      <xsl:attribute name="depends">
        <xsl:choose>
          <xsl:when test="string-length($rawdeps) &gt; 0">
            <!-- drop the trailing comma the collector appends -->
            <xsl:value-of
                select="substring($rawdeps, 1, string-length($rawdeps) - 1)"/>
          </xsl:when>
          <xsl:otherwise/>
        </xsl:choose>
      </xsl:attribute>
      <xsl:if test="@isDynamic = 'true'">
        <xsl:attribute name="dynamic">true</xsl:attribute>
        <xsl:attribute name="multiplicity">
          <xsl:choose>
            <xsl:when test="@dynamicMultiplicity">
              <xsl:value-of select="@dynamicMultiplicity"/>
            </xsl:when>
            <xsl:otherwise>0..*</xsl:otherwise>
          </xsl:choose>
        </xsl:attribute>
        <xsl:if test="UML:ActionState.dynamicArguments/UML:ArgListsExpression/@body">
          <xsl:attribute name="arguments">
            <xsl:value-of
                select="UML:ActionState.dynamicArguments/UML:ArgListsExpression/@body"/>
          </xsl:attribute>
        </xsl:if>
      </xsl:if>
      <task-req>
        <memory>
          <xsl:call-template name="tag-value">
            <xsl:with-param name="tag" select="'memory'"/>
          </xsl:call-template>
        </memory>
        <runmodel>
          <xsl:call-template name="tag-value">
            <xsl:with-param name="tag" select="'runmodel'"/>
          </xsl:call-template>
        </runmodel>
        <xsl:variable name="retries">
          <xsl:call-template name="tag-value">
            <xsl:with-param name="tag" select="'retries'"/>
          </xsl:call-template>
        </xsl:variable>
        <xsl:if test="string-length($retries) &gt; 0">
          <retries><xsl:value-of select="$retries"/></retries>
        </xsl:if>
      </task-req>
      <!-- ordered ptypeN/pvalueN pairs become <param> children -->
      <xsl:for-each select="UML:ModelElement.taggedValue/UML:TaggedValue">
        <xsl:sort data-type="number"
                  select="substring-after(key('tagdef-by-id',
                          current()/UML:TaggedValue.type/UML:TagDefinition/@xmi.idref)
                          /@name, 'ptype')"/>
        <xsl:variable name="defname"
                      select="key('tagdef-by-id',
                              UML:TaggedValue.type/UML:TagDefinition/@xmi.idref)/@name"/>
        <xsl:if test="starts-with($defname, 'ptype')">
          <xsl:variable name="index" select="substring-after($defname, 'ptype')"/>
          <param type="{@dataValue}">
            <xsl:call-template name="tag-value">
              <xsl:with-param name="tag" select="concat('pvalue', $index)"/>
              <xsl:with-param name="state" select="../.."/>
            </xsl:call-template>
          </param>
        </xsl:if>
      </xsl:for-each>
    </task>
  </xsl:template>

  <!-- Emit "<name>," for every nearest preceding ActionState, walking
       backwards through pseudostates. -->
  <xsl:template name="collect-deps">
    <xsl:param name="vid"/>
    <xsl:for-each select="key('transition-by-target', $vid)[not(@xmi.idref)]">
      <xsl:variable name="srcid" select="UML:Transition.source/*/@xmi.idref"/>
      <xsl:variable name="src" select="key('vertex-by-id', $srcid)"/>
      <xsl:choose>
        <xsl:when test="name($src) = 'UML:ActionState'">
          <xsl:value-of select="$src/@name"/>
          <xsl:text>,</xsl:text>
        </xsl:when>
        <xsl:otherwise>
          <xsl:call-template name="collect-deps">
            <xsl:with-param name="vid" select="$srcid"/>
          </xsl:call-template>
        </xsl:otherwise>
      </xsl:choose>
    </xsl:for-each>
  </xsl:template>
</xsl:stylesheet>
