"""XMI 1.2 / UML 1.x export of activity-graph models.

Produces documents structurally matching the paper's Fig. 7 fragment:
``UML:ActionState`` elements with ``isSpecification``/``isDynamic``
attributes, nested ``UML:TaggedValue`` elements whose type is a
``UML:TagDefinition`` reference by ``xmi.idref``, and
``UML:StateVertex.outgoing``/``.incoming`` transition reference lists.
Transitions are serialized once, under ``UML:StateMachine.transitions``,
with source/target references -- the layout early-2000s XMI exporters
(Poseidon, ArgoUML) produced and the paper's XMI2CNX tool consumed.

The generated vocabulary uses the undeclared ``UML:`` prefix exactly as
the paper's documents do; see :mod:`repro.util.xmlutil` for how that is
kept well-formed internally (dotted tags) and restored on serialization.

Ids are deterministic (``a1, a2, ...`` in emission order) so repeated
exports of the same model are byte-identical.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.util.idgen import SequentialIds
from repro.util.xmlutil import serialize_prefixed

from ..uml.activity import (
    ActionState,
    ActivityGraph,
    FinalState,
    Pseudostate,
    StateVertex,
    Transition,
)
from ..uml.model import Model, Package
from ..uml.tags import TaggedElement

__all__ = ["XmiWriter", "write_model", "write_graph"]

_FALSE = "false"


class XmiWriter:
    """Stateful writer: one instance per exported document."""

    def __init__(self) -> None:
        self._ids = SequentialIds("a")
        self._tagdef_ids: dict[str, str] = {}
        self._vertex_ids: dict[int, str] = {}
        self._transition_ids: dict[int, str] = {}

    # -- public API ---------------------------------------------------------
    def write(self, model: Model) -> str:
        """Serialize *model* to an XMI document string."""
        return serialize_prefixed(self.to_element(model))

    def to_element(self, model: Model) -> ET.Element:
        root = ET.Element("XMI", {"xmi.version": "1.2"})
        header = ET.SubElement(root, "XMI.header")
        doc = ET.SubElement(header, "XMI.documentation")
        exporter = ET.SubElement(doc, "XMI.exporter")
        exporter.text = "repro.core.xmi"
        content = ET.SubElement(root, "XMI.content")
        model_elem = ET.SubElement(
            content,
            "UML.Model",
            {
                "xmi.id": self._ids.next(),
                "name": model.name,
                "isSpecification": _FALSE,
            },
        )
        owned = ET.SubElement(model_elem, "UML.Namespace.ownedElement")
        for package in model.packages:
            self._write_package(owned, package)
        return root

    # -- structure ------------------------------------------------------------
    def _write_package(self, parent: ET.Element, package: Package) -> None:
        pkg_elem = ET.SubElement(
            parent,
            "UML.Package",
            {
                "xmi.id": self._ids.next(),
                "name": package.name,
                "isSpecification": _FALSE,
            },
        )
        owned = ET.SubElement(pkg_elem, "UML.Namespace.ownedElement")
        # Tag definitions first, in first-use order, so TaggedValue idrefs
        # are forward-resolvable and ids stay stable (Fig. 7 has the
        # definitions at low ids: a7, a10, a13, a16).
        for graph in package.graphs:
            for action in graph.action_states():
                for tv in action.tagged_values:
                    self._tagdef_id(owned, tv.name)
        graph_ids: dict[str, str] = {}
        for graph in package.graphs:
            graph_ids[graph.name] = self._write_graph(owned, graph)
        # client-level partial order (paper section 4): each (before, after)
        # pair becomes a UML:Dependency whose client is the dependent graph
        # and whose supplier is its prerequisite
        for before, after in package.job_order:
            dep = ET.SubElement(
                owned,
                "UML.Dependency",
                {
                    "xmi.id": self._ids.next(),
                    "name": f"{after}-after-{before}",
                    "isSpecification": _FALSE,
                },
            )
            client = ET.SubElement(dep, "UML.Dependency.client")
            ET.SubElement(
                client, "UML.ActivityGraph", {"xmi.idref": graph_ids[after]}
            )
            supplier = ET.SubElement(dep, "UML.Dependency.supplier")
            ET.SubElement(
                supplier, "UML.ActivityGraph", {"xmi.idref": graph_ids[before]}
            )

    def _tagdef_id(self, owned: ET.Element, name: str) -> str:
        existing = self._tagdef_ids.get(name)
        if existing is not None:
            return existing
        tid = self._ids.next()
        self._tagdef_ids[name] = tid
        ET.SubElement(
            owned,
            "UML.TagDefinition",
            {
                "xmi.id": tid,
                "name": name,
                "isSpecification": _FALSE,
                "tagType": "String",
            },
        )
        return tid

    def _write_graph(self, parent: ET.Element, graph: ActivityGraph) -> str:
        graph_id = self._ids.next()
        graph_elem = ET.SubElement(
            parent,
            "UML.ActivityGraph",
            {
                "xmi.id": graph_id,
                "name": graph.name,
                "isSpecification": _FALSE,
            },
        )
        top = ET.SubElement(graph_elem, "UML.StateMachine.top")
        composite = ET.SubElement(
            top,
            "UML.CompositeState",
            {
                "xmi.id": self._ids.next(),
                "name": "top",
                "isSpecification": _FALSE,
                "isConcurrent": _FALSE,
            },
        )
        subvertex = ET.SubElement(composite, "UML.CompositeState.subvertex")

        # Allocate ids: vertices in insertion order, then transitions, so
        # reference lists can be emitted in one pass.
        for vertex in graph.vertices:
            self._vertex_ids[id(vertex)] = self._ids.next()
        for transition in graph.transitions:
            self._transition_ids[id(transition)] = self._ids.next()

        for vertex in graph.vertices:
            self._write_vertex(subvertex, vertex)

        transitions_elem = ET.SubElement(graph_elem, "UML.StateMachine.transitions")
        for transition in graph.transitions:
            self._write_transition(transitions_elem, transition)
        return graph_id

    def _vertex_tag(self, vertex: StateVertex) -> str:
        if isinstance(vertex, ActionState):
            return "UML.ActionState"
        if isinstance(vertex, FinalState):
            return "UML.FinalState"
        assert isinstance(vertex, Pseudostate)
        return "UML.Pseudostate"

    def _write_vertex(self, parent: ET.Element, vertex: StateVertex) -> None:
        attrs = {
            "xmi.id": self._vertex_ids[id(vertex)],
            "name": vertex.name,
            "isSpecification": _FALSE,
        }
        if isinstance(vertex, ActionState):
            attrs["isDynamic"] = "true" if vertex.is_dynamic else "false"
            if vertex.is_dynamic and vertex.dynamic_multiplicity:
                attrs["dynamicMultiplicity"] = vertex.dynamic_multiplicity
        if isinstance(vertex, Pseudostate):
            attrs["kind"] = vertex.pseudo_kind
        elem = ET.SubElement(parent, self._vertex_tag(vertex), attrs)
        if isinstance(vertex, ActionState):
            if vertex.is_dynamic and vertex.dynamic_arguments:
                dyn = ET.SubElement(elem, "UML.ActionState.dynamicArguments")
                ET.SubElement(
                    dyn,
                    "UML.ArgListsExpression",
                    {
                        "xmi.id": self._ids.next(),
                        "language": "CN",
                        "body": vertex.dynamic_arguments,
                    },
                )
            self._write_tagged_values(elem, vertex)
        self._write_transition_refs(elem, vertex)

    def _write_tagged_values(self, elem: ET.Element, element: TaggedElement) -> None:
        if not element.tagged_values:
            return
        container = ET.SubElement(elem, "UML.ModelElement.taggedValue")
        for tv in element.tagged_values:
            tv_elem = ET.SubElement(
                container,
                "UML.TaggedValue",
                {
                    "xmi.id": self._ids.next(),
                    "isSpecification": _FALSE,
                    "dataValue": tv.value,
                },
            )
            type_elem = ET.SubElement(tv_elem, "UML.TaggedValue.type")
            ET.SubElement(
                type_elem,
                "UML.TagDefinition",
                {"xmi.idref": self._tagdef_ids[tv.name]},
            )

    def _write_transition_refs(self, elem: ET.Element, vertex: StateVertex) -> None:
        if vertex.outgoing:
            out = ET.SubElement(elem, "UML.StateVertex.outgoing")
            for transition in vertex.outgoing:
                ET.SubElement(
                    out,
                    "UML.Transition",
                    {"xmi.idref": self._transition_ids[id(transition)]},
                )
        if vertex.incoming:
            inc = ET.SubElement(elem, "UML.StateVertex.incoming")
            for transition in vertex.incoming:
                ET.SubElement(
                    inc,
                    "UML.Transition",
                    {"xmi.idref": self._transition_ids[id(transition)]},
                )

    def _write_transition(self, parent: ET.Element, transition: Transition) -> None:
        attrs = {
            "xmi.id": self._transition_ids[id(transition)],
            "isSpecification": _FALSE,
        }
        elem = ET.SubElement(parent, "UML.Transition", attrs)
        source = ET.SubElement(elem, "UML.Transition.source")
        ET.SubElement(
            source,
            self._vertex_tag(transition.source),
            {"xmi.idref": self._vertex_ids[id(transition.source)]},
        )
        target = ET.SubElement(elem, "UML.Transition.target")
        ET.SubElement(
            target,
            self._vertex_tag(transition.target),
            {"xmi.idref": self._vertex_ids[id(transition.target)]},
        )


def write_model(model: Model) -> str:
    """Export *model* as an XMI document string."""
    return XmiWriter().write(model)


def write_graph(graph: ActivityGraph, *, package: str = "cn", model_name: str = "model") -> str:
    """Convenience: wrap a single job graph in a model/package and export."""
    model = Model(model_name)
    pkg = model.new_package(package)
    pkg.add_graph(graph)
    return write_model(model)
