"""XMI 1.2 / UML 1.x export and import (paper Fig. 7 vocabulary)."""

from .reader import XmiReadError, read_graphs, read_model
from .writer import XmiWriter, write_graph, write_model

__all__ = [
    "XmiWriter",
    "write_model",
    "write_graph",
    "read_model",
    "read_graphs",
    "XmiReadError",
]
