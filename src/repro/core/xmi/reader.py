"""XMI 1.2 / UML 1.x import: parse an XMI document back into the model.

The reader accepts documents produced by :mod:`repro.core.xmi.writer` as
well as "foreign" exports with the same UML 1.x vocabulary (the paper's
toolchain targeted tools like Poseidon).  It is deliberately tolerant of
extra elements it does not understand -- real exporters embed diagram
geometry, stereotypes, and vendor extensions -- and strict about the
things the transform depends on: id/idref integrity, tagged-value types,
and transition endpoints.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.util.xmlutil import parse_prefixed

from ..uml.activity import (
    ActionState,
    ActivityGraph,
    FinalState,
    Pseudostate,
    StateVertex,
)
from ..uml.model import Model, Package

__all__ = ["XmiReadError", "read_model", "read_graphs"]


class XmiReadError(ValueError):
    """Raised on structurally broken XMI (dangling idrefs, bad kinds)."""


def _findall(elem: ET.Element, dotted: str) -> list[ET.Element]:
    return elem.findall(f".//{dotted}")


def _children(elem: ET.Element, dotted: str) -> list[ET.Element]:
    return [c for c in elem if c.tag == dotted]


def read_model(text: str | ET.Element) -> Model:
    """Parse an XMI document string (undeclared ``UML:`` prefixes allowed)
    into a :class:`~repro.core.uml.model.Model`."""
    root = parse_prefixed(text) if isinstance(text, str) else text
    if root.tag != "XMI":
        raise XmiReadError(f"not an XMI document (root {root.tag!r})")
    model_elems = _findall(root, "UML.Model")
    if not model_elems:
        raise XmiReadError("no UML:Model in document")
    model_elem = model_elems[0]
    model = Model(model_elem.get("name", "model"))

    tagdefs = _read_tagdefs(root)

    packages = _findall(model_elem, "UML.Package")
    if not packages:
        # Some exporters put graphs directly under the model.
        package = model.new_package("default")
        for graph_elem in _findall(model_elem, "UML.ActivityGraph"):
            package.add_graph(_read_graph(graph_elem, tagdefs))
        return model
    for pkg_elem in packages:
        package = model.new_package(pkg_elem.get("name", "package"))
        graph_names: dict[str, str] = {}
        for graph_elem in _findall(pkg_elem, "UML.ActivityGraph"):
            if graph_elem.get("xmi.idref") is not None:
                continue  # dependency reference, not a declaration
            package.add_graph(_read_graph(graph_elem, tagdefs))
            if graph_elem.get("xmi.id"):
                graph_names[graph_elem.get("xmi.id")] = graph_elem.get("name", "job")
        _read_job_order(pkg_elem, package, graph_names)
    return model


def _read_job_order(pkg_elem: ET.Element, package: Package, graph_names: dict[str, str]) -> None:
    """Rebuild the client-level partial order from UML:Dependency elements."""
    for dep in _findall(pkg_elem, "UML.Dependency"):
        client_refs = [
            e.get("xmi.idref")
            for container in _children(dep, "UML.Dependency.client")
            for e in container
        ]
        supplier_refs = [
            e.get("xmi.idref")
            for container in _children(dep, "UML.Dependency.supplier")
            for e in container
        ]
        for supplier in supplier_refs:
            for client in client_refs:
                if supplier in graph_names and client in graph_names:
                    package.order_jobs(graph_names[supplier], graph_names[client])


def read_graphs(text: str | ET.Element) -> list[ActivityGraph]:
    """All activity graphs in the document, flattened across packages."""
    return read_model(text).all_graphs()


def _read_tagdefs(root: ET.Element) -> dict[str, str]:
    """Map ``xmi.id`` -> tag name for every TagDefinition declaration
    (an element carrying a name; pure idref references carry none)."""
    mapping: dict[str, str] = {}
    for elem in _findall(root, "UML.TagDefinition"):
        xmi_id = elem.get("xmi.id")
        name = elem.get("name")
        if xmi_id and name:
            mapping[xmi_id] = name
    return mapping


_VERTEX_TAGS = {
    "UML.ActionState": "action",
    "UML.Pseudostate": "pseudo",
    "UML.FinalState": "final",
    "UML.StateVertex": "any",
    "UML.CallState": "action",  # some tools export CallState for actions
}


def _read_graph(graph_elem: ET.Element, tagdefs: dict[str, str]) -> ActivityGraph:
    graph = ActivityGraph(graph_elem.get("name", "job"))
    by_id: dict[str, StateVertex] = {}

    # Walk vertex declarations in document order so a re-export of the
    # parsed model is byte-identical to the original document.
    for elem in graph_elem.iter():
        kind = _VERTEX_TAGS.get(elem.tag)
        if kind is None or kind == "any":
            continue
        if elem.get("xmi.idref") is not None:
            continue  # a reference, not a declaration
        vertex = _make_vertex(graph, elem, kind, tagdefs)
        xmi_id = elem.get("xmi.id")
        if xmi_id:
            by_id[xmi_id] = vertex

    for trans_elem in _findall(graph_elem, "UML.Transition"):
        if trans_elem.get("xmi.idref") is not None:
            continue
        source = _endpoint(trans_elem, "UML.Transition.source", by_id, graph)
        target = _endpoint(trans_elem, "UML.Transition.target", by_id, graph)
        graph.add_transition(source, target)
    return graph


def _make_vertex(
    graph: ActivityGraph, elem: ET.Element, kind: str, tagdefs: dict[str, str]
) -> StateVertex:
    name = elem.get("name", "")
    if kind == "action":
        is_dynamic = elem.get("isDynamic", "false") == "true"
        dynamic_args = ""
        for arg_elem in _findall(elem, "UML.ArgListsExpression"):
            dynamic_args = arg_elem.get("body", "")
        vertex: StateVertex = graph.add_action(
            name,
            is_dynamic=is_dynamic,
            dynamic_multiplicity=elem.get("dynamicMultiplicity", ""),
            dynamic_arguments=dynamic_args,
        )
        _read_tagged_values(vertex, elem, tagdefs)
        return vertex
    if kind == "final":
        return graph.add_final(name or "final")
    pseudo_kind = elem.get("kind", "initial")
    if pseudo_kind == "initial":
        return graph.add_initial(name or "initial")
    if pseudo_kind == "fork":
        return graph.add_fork(name or "fork")
    if pseudo_kind == "join":
        return graph.add_join(name or "join")
    raise XmiReadError(f"unsupported pseudostate kind {pseudo_kind!r}")


def _read_tagged_values(
    vertex: StateVertex, elem: ET.Element, tagdefs: dict[str, str]
) -> None:
    for tv_elem in _findall(elem, "UML.TaggedValue"):
        value = tv_elem.get("dataValue")
        if value is None:
            # Some exporters use a child <UML:TaggedValue.dataValue> text node.
            data_elems = _findall(tv_elem, "UML.TaggedValue.dataValue")
            value = data_elems[0].text or "" if data_elems else ""
        name: Optional[str] = None
        for ref in _findall(tv_elem, "UML.TagDefinition"):
            idref = ref.get("xmi.idref")
            if idref is not None:
                name = tagdefs.get(idref)
                if name is None:
                    raise XmiReadError(f"TaggedValue references unknown TagDefinition {idref!r}")
            elif ref.get("name"):
                name = ref.get("name")
        if name is None:
            raise XmiReadError(f"TaggedValue on {vertex.name!r} lacks a tag definition")
        vertex.set_tag(name, value)


def _endpoint(
    trans_elem: ET.Element,
    container_tag: str,
    by_id: dict[str, StateVertex],
    graph: ActivityGraph,
) -> StateVertex:
    containers = _children(trans_elem, container_tag)
    if not containers:
        raise XmiReadError(f"transition missing {container_tag}")
    for ref in containers[0]:
        idref = ref.get("xmi.idref")
        if idref is not None:
            vertex = by_id.get(idref)
            if vertex is None:
                raise XmiReadError(f"transition references unknown vertex {idref!r}")
            return vertex
    raise XmiReadError(f"no idref inside {container_tag}")
