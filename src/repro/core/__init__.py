"""The paper's primary contribution: UML modeling, XMI interchange, CNX
descriptors, and the generative transformation pipeline."""
