"""UML model and package containers.

The paper attaches the activity diagram for a client to the package
holding the rest of that client's model (section 4).  A :class:`Model`
holds packages; a :class:`Package` holds activity graphs plus the tag
definitions its tagged values reference.  A client consisting of several
jobs is a package with several graphs plus an ordering relation over
them (``job_order``: pairs meaning "left must finish before right"),
allowing the mix of sequential and concurrent job execution described in
the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .activity import ActivityGraph
from .tags import TaggedElement

__all__ = ["Model", "Package"]


class Package(TaggedElement):
    """A UML package: owns activity graphs (jobs) for one client."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.graphs: list[ActivityGraph] = []
        # partial order over job names: (before, after) pairs
        self.job_order: list[tuple[str, str]] = []

    def add_graph(self, graph: ActivityGraph) -> ActivityGraph:
        if any(g.name == graph.name for g in self.graphs):
            raise ValueError(f"duplicate graph {graph.name!r} in package {self.name!r}")
        self.graphs.append(graph)
        return graph

    def new_graph(self, name: str) -> ActivityGraph:
        return self.add_graph(ActivityGraph(name))

    def find_graph(self, name: str) -> ActivityGraph:
        for graph in self.graphs:
            if graph.name == name:
                return graph
        raise KeyError(f"no graph named {name!r} in package {self.name!r}")

    def order_jobs(self, before: str, after: str) -> None:
        """Record that job *before* must complete before *after* starts."""
        self.find_graph(before)
        self.find_graph(after)
        self.job_order.append((before, after))

    def job_batches(self) -> list[list[ActivityGraph]]:
        """Jobs grouped into sequential batches; jobs in the same batch may
        run concurrently (the client-level partial order of section 4)."""
        remaining = {g.name: g for g in self.graphs}
        deps: dict[str, set[str]] = {name: set() for name in remaining}
        for before, after in self.job_order:
            deps[after].add(before)
        batches: list[list[ActivityGraph]] = []
        while remaining:
            ready = [name for name, need in deps.items() if name in remaining and not need]
            if not ready:
                raise ValueError(f"cyclic job order among {sorted(remaining)}")
            batches.append([remaining.pop(name) for name in sorted(ready)])
            for need in deps.values():
                need.difference_update(ready)
        return batches


class Model:
    """A UML model: top-level container exported to XMI."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.packages: list[Package] = []

    def add_package(self, package: Package) -> Package:
        if any(p.name == package.name for p in self.packages):
            raise ValueError(f"duplicate package {package.name!r}")
        self.packages.append(package)
        return package

    def new_package(self, name: str) -> Package:
        return self.add_package(Package(name))

    def find_package(self, name: str) -> Package:
        for package in self.packages:
            if package.name == name:
                return package
        raise KeyError(f"no package named {name!r}")

    def all_graphs(self) -> list[ActivityGraph]:
        return [g for p in self.packages for g in p.graphs]

    def __repr__(self) -> str:
        return f"<Model {self.name!r}: {len(self.packages)} package(s)>"
