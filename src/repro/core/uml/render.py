"""Rendering of activity diagrams (paper Figs. 3 and 5).

The paper shows the diagrams visually; we regenerate them as Graphviz DOT
(for documentation) and as a deterministic ASCII layout (for terminals
and golden tests).  The ASCII renderer arranges vertices in dependency
levels, which for the guiding example reproduces the split / concurrent
workers / join shape of Fig. 3.
"""

from __future__ import annotations

import io
from collections import defaultdict

from .activity import (
    ActionState,
    ActivityGraph,
    FinalState,
    Pseudostate,
    StateVertex,
)

__all__ = ["to_dot", "to_ascii", "level_layout"]


def _dot_shape(vertex: StateVertex) -> str:
    if isinstance(vertex, ActionState):
        # UML action states draw as rounded rectangles; dynamic invocation
        # is marked with the multiplicity in the label (Fig. 5).
        label = vertex.name
        if vertex.is_dynamic:
            label += f"\\n{vertex.dynamic_multiplicity or '*'}"
        return f'[shape=box, style=rounded, label="{label}"]'
    if isinstance(vertex, FinalState):
        return '[shape=doublecircle, label="", width=0.2]'
    assert isinstance(vertex, Pseudostate)
    if vertex.pseudo_kind == "initial":
        return '[shape=circle, style=filled, fillcolor=black, label="", width=0.15]'
    # fork / join draw as synchronization bars
    return '[shape=box, style=filled, fillcolor=black, label="", height=0.06, width=1.2]'


def to_dot(graph: ActivityGraph) -> str:
    """Render *graph* as a Graphviz digraph."""
    buf = io.StringIO()
    buf.write(f'digraph "{graph.name}" {{\n')
    buf.write("  rankdir=TB;\n")
    ids = {id(v): f"n{i}" for i, v in enumerate(graph.vertices)}
    for vertex in graph.vertices:
        buf.write(f"  {ids[id(vertex)]} {_dot_shape(vertex)};\n")
    for transition in graph.transitions:
        label = f' [label="{transition.guard}"]' if transition.guard else ""
        buf.write(
            f"  {ids[id(transition.source)]} -> {ids[id(transition.target)]}{label};\n"
        )
    buf.write("}\n")
    return buf.getvalue()


def level_layout(graph: ActivityGraph) -> list[list[StateVertex]]:
    """Group vertices into longest-path levels from the initial state."""
    level: dict[int, int] = {}
    order: list[StateVertex] = []

    # Kahn-style labeling over the (acyclic) transition graph.
    indegree = {id(v): len(v.incoming) for v in graph.vertices}
    ready = [v for v in graph.vertices if indegree[id(v)] == 0]
    for v in ready:
        level[id(v)] = 0
    while ready:
        vertex = ready.pop(0)
        order.append(vertex)
        for succ in vertex.successors():
            candidate = level[id(vertex)] + 1
            if candidate > level.get(id(succ), -1):
                level[id(succ)] = candidate
            indegree[id(succ)] -= 1
            if indegree[id(succ)] == 0:
                ready.append(succ)
    depth = max(level.values(), default=0)
    rows: list[list[StateVertex]] = [[] for _ in range(depth + 1)]
    for vertex in graph.vertices:
        rows[level.get(id(vertex), depth)].append(vertex)
    for row in rows:
        row.sort(key=lambda v: v.name)
    return [row for row in rows if row]


def _ascii_label(vertex: StateVertex) -> str:
    if isinstance(vertex, ActionState):
        name = vertex.name
        if vertex.is_dynamic:
            name += f" x{vertex.dynamic_multiplicity or '*'}"
        return f"[{name}]"
    if isinstance(vertex, FinalState):
        return "((final))"
    assert isinstance(vertex, Pseudostate)
    if vertex.pseudo_kind == "initial":
        return "(initial)"
    return f"=={vertex.pseudo_kind}=="


def to_ascii(graph: ActivityGraph) -> str:
    """Deterministic ASCII rendering, one dependency level per line."""
    buf = io.StringIO()
    buf.write(f"activity {graph.name}\n")
    rows = level_layout(graph)
    for i, row in enumerate(rows):
        buf.write("   " + "   ".join(_ascii_label(v) for v in row) + "\n")
        if i < len(rows) - 1:
            buf.write("      |\n")
    return buf.getvalue()
