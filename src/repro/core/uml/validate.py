"""Well-formedness validation for CN job activity graphs.

Catching modeling mistakes before the transform runs is most of the value
of the model-driven approach, so the checks are strict:

* exactly one initial pseudostate, at least one final state,
* every vertex reachable from the initial state,
* transitions respect vertex arity (initial has no incoming, final no
  outgoing, forks have one incoming/many outgoing, joins the reverse),
* the induced task dependency relation is acyclic (a CN job is a DAG of
  tasks, paper section 4),
* every action state carries the required CN tags and well-formed
  parameter tags; dynamic states declare a multiplicity.

Violations raise :class:`GraphValidationError` listing *all* problems at
once, which is kinder to modelers than stop-at-first.
"""

from __future__ import annotations

from .activity import (
    PSEUDO_FORK,
    PSEUDO_INITIAL,
    PSEUDO_JOIN,
    ActionState,
    ActivityGraph,
    FinalState,
    Pseudostate,
    StateVertex,
)
from .tags import CNProfile

__all__ = ["GraphValidationError", "validate_graph", "collect_problems"]


class GraphValidationError(ValueError):
    """Raised when a graph fails validation; ``problems`` lists messages."""

    def __init__(self, graph_name: str, problems: list[str]) -> None:
        self.graph_name = graph_name
        self.problems = problems
        joined = "\n  - ".join(problems)
        super().__init__(f"activity graph {graph_name!r} is not well-formed:\n  - {joined}")


def collect_problems(graph: ActivityGraph) -> list[str]:
    """All validation problems of *graph* (empty list = valid)."""
    problems: list[str] = []
    problems.extend(_check_shape(graph))
    problems.extend(_check_reachability(graph))
    problems.extend(_check_arity(graph))
    problems.extend(_check_acyclic(graph))
    problems.extend(_check_tags(graph))
    return problems


def validate_graph(graph: ActivityGraph) -> ActivityGraph:
    """Validate *graph*, raising :class:`GraphValidationError` on problems."""
    problems = collect_problems(graph)
    if problems:
        raise GraphValidationError(graph.name, problems)
    return graph


def _check_shape(graph: ActivityGraph) -> list[str]:
    problems = []
    initials = graph.initial_states()
    if len(initials) != 1:
        problems.append(f"expected exactly one initial state, found {len(initials)}")
    if not graph.final_states():
        problems.append("no final state")
    if not graph.action_states():
        problems.append("no action states (a job needs at least one task)")
    return problems


def _check_reachability(graph: ActivityGraph) -> list[str]:
    initials = graph.initial_states()
    if not initials:
        return []  # shape check already reported it
    reached: set[int] = set()
    stack: list[StateVertex] = list(initials)
    while stack:
        vertex = stack.pop()
        if id(vertex) in reached:
            continue
        reached.add(id(vertex))
        stack.extend(vertex.successors())
    unreachable = [v.name for v in graph.vertices if id(v) not in reached]
    if unreachable:
        return [f"unreachable vertices: {', '.join(sorted(unreachable))}"]
    return []


def _check_arity(graph: ActivityGraph) -> list[str]:
    problems = []
    for vertex in graph.vertices:
        n_in, n_out = len(vertex.incoming), len(vertex.outgoing)
        if isinstance(vertex, Pseudostate):
            if vertex.pseudo_kind == PSEUDO_INITIAL:
                if n_in:
                    problems.append(f"initial state {vertex.name!r} has incoming transitions")
                if n_out != 1:
                    problems.append(
                        f"initial state {vertex.name!r} must have exactly one outgoing "
                        f"transition, has {n_out}"
                    )
            elif vertex.pseudo_kind == PSEUDO_FORK:
                if n_in != 1:
                    problems.append(f"fork {vertex.name!r} must have one incoming, has {n_in}")
                if n_out < 2:
                    problems.append(f"fork {vertex.name!r} must have >=2 outgoing, has {n_out}")
            elif vertex.pseudo_kind == PSEUDO_JOIN:
                if n_out != 1:
                    problems.append(f"join {vertex.name!r} must have one outgoing, has {n_out}")
                if n_in < 2:
                    problems.append(f"join {vertex.name!r} must have >=2 incoming, has {n_in}")
        elif isinstance(vertex, FinalState):
            if n_out:
                problems.append(f"final state {vertex.name!r} has outgoing transitions")
            if not n_in:
                problems.append(f"final state {vertex.name!r} has no incoming transitions")
        elif isinstance(vertex, ActionState):
            if not n_in:
                problems.append(f"action state {vertex.name!r} has no incoming transition")
            if not n_out:
                problems.append(f"action state {vertex.name!r} has no outgoing transition")
    return problems


def _check_acyclic(graph: ActivityGraph) -> list[str]:
    try:
        graph.topological_actions()
    except ValueError as exc:
        return [str(exc)]
    # Also check the raw vertex graph (a cycle entirely through
    # pseudostates would otherwise slip by).
    colors: dict[int, int] = {}

    def dfs(vertex: StateVertex) -> bool:
        colors[id(vertex)] = 1
        for succ in vertex.successors():
            state = colors.get(id(succ), 0)
            if state == 1:
                return True
            if state == 0 and dfs(succ):
                return True
        colors[id(vertex)] = 2
        return False

    for vertex in graph.vertices:
        if colors.get(id(vertex), 0) == 0 and dfs(vertex):
            return ["transition graph contains a cycle"]
    return []


def _check_tags(graph: ActivityGraph) -> list[str]:
    problems = []
    for action in graph.action_states():
        for required in CNProfile.REQUIRED:
            if not action.get_tag(required):
                problems.append(f"task {action.name!r} missing required tag {required!r}")
        memory = action.get_tag("memory")
        if memory is not None:
            try:
                if int(memory) <= 0:
                    problems.append(f"task {action.name!r} has non-positive memory {memory!r}")
            except ValueError:
                problems.append(f"task {action.name!r} has non-integer memory {memory!r}")
        retries_tag = action.get_tag("retries")
        if retries_tag is not None:
            try:
                if int(retries_tag) < 0:
                    problems.append(
                        f"task {action.name!r} has negative retries {retries_tag!r}"
                    )
            except ValueError:
                problems.append(
                    f"task {action.name!r} has non-integer retries {retries_tag!r}"
                )
        runmodel = action.get_tag("runmodel")
        if runmodel is not None and runmodel not in CNProfile.KNOWN_RUNMODELS:
            problems.append(
                f"task {action.name!r} has unknown runmodel {runmodel!r} "
                f"(known: {', '.join(CNProfile.KNOWN_RUNMODELS)})"
            )
        try:
            CNProfile.params(action)
        except ValueError as exc:
            problems.append(f"task {action.name!r}: {exc}")
        if action.is_dynamic and not action.dynamic_multiplicity:
            problems.append(f"dynamic task {action.name!r} lacks a multiplicity")
    return problems
