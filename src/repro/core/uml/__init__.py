"""UML 1.x activity-graph metamodel, builder, validation and rendering.

This is the modeling layer of the pipeline: jobs are activity graphs,
tasks are action states with CN tagged values, dependencies are
transitions (paper section 4).
"""

from .activity import (
    PSEUDO_FORK,
    PSEUDO_INITIAL,
    PSEUDO_JOIN,
    ActionState,
    ActivityGraph,
    FinalState,
    Pseudostate,
    StateVertex,
    Transition,
)
from .builder import ActivityBuilder
from .model import Model, Package
from .render import level_layout, to_ascii, to_dot
from .tags import (
    CN_TAG_CLASS,
    CN_TAG_JAR,
    CN_TAG_MEMORY,
    CN_TAG_RUNMODEL,
    CNProfile,
    TagDefinition,
    TaggedElement,
    TaggedValue,
    param_tag_names,
)
from .validate import GraphValidationError, collect_problems, validate_graph

__all__ = [
    "ActivityGraph",
    "ActionState",
    "Pseudostate",
    "FinalState",
    "StateVertex",
    "Transition",
    "PSEUDO_INITIAL",
    "PSEUDO_FORK",
    "PSEUDO_JOIN",
    "ActivityBuilder",
    "Model",
    "Package",
    "TagDefinition",
    "TaggedValue",
    "TaggedElement",
    "CNProfile",
    "CN_TAG_JAR",
    "CN_TAG_CLASS",
    "CN_TAG_MEMORY",
    "CN_TAG_RUNMODEL",
    "param_tag_names",
    "GraphValidationError",
    "validate_graph",
    "collect_problems",
    "to_dot",
    "to_ascii",
    "level_layout",
]
