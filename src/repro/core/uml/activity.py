"""UML 1.x activity graphs (the subset the paper models jobs with).

An activity graph is a state machine whose states are actions (tasks) or
pseudostates (initial, fork, join) and whose transitions fire on action
completion (paper section 4).  In the CN mapping:

* each **job** is an activity graph,
* each **task** is an :class:`ActionState` carrying CN tagged values,
* **dependencies** are :class:`Transition` edges,
* explicit concurrency (Fig. 3) uses fork/join pseudostates,
* **dynamic invocation** (Fig. 5) is an action state with ``isDynamic``
  and a multiplicity plus run-time argument expression.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .tags import TaggedElement

__all__ = [
    "StateVertex",
    "ActionState",
    "Pseudostate",
    "FinalState",
    "Transition",
    "ActivityGraph",
    "PSEUDO_INITIAL",
    "PSEUDO_FORK",
    "PSEUDO_JOIN",
]

PSEUDO_INITIAL = "initial"
PSEUDO_FORK = "fork"
PSEUDO_JOIN = "join"


class StateVertex(TaggedElement):
    """Common base for all nodes of the graph."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.outgoing: list["Transition"] = []
        self.incoming: list["Transition"] = []

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def successors(self) -> list["StateVertex"]:
        return [t.target for t in self.outgoing]

    def predecessors(self) -> list["StateVertex"]:
        return [t.source for t in self.incoming]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ActionState(StateVertex):
    """A task.  ``is_dynamic`` marks dynamic invocation: the number of
    concurrent invocations is left open until run time and determined by
    evaluating ``dynamic_arguments`` (an expression yielding a set of
    argument lists, per UML's dynamicArguments)."""

    def __init__(
        self,
        name: str,
        *,
        is_dynamic: bool = False,
        dynamic_multiplicity: str = "",
        dynamic_arguments: str = "",
    ) -> None:
        super().__init__(name)
        self.is_dynamic = is_dynamic
        self.dynamic_multiplicity = dynamic_multiplicity or ("0..*" if is_dynamic else "")
        self.dynamic_arguments = dynamic_arguments

    @property
    def kind(self) -> str:
        return "action"


class Pseudostate(StateVertex):
    def __init__(self, name: str, pseudo_kind: str) -> None:
        if pseudo_kind not in (PSEUDO_INITIAL, PSEUDO_FORK, PSEUDO_JOIN):
            raise ValueError(f"unknown pseudostate kind {pseudo_kind!r}")
        super().__init__(name)
        self.pseudo_kind = pseudo_kind

    @property
    def kind(self) -> str:
        return self.pseudo_kind


class FinalState(StateVertex):
    @property
    def kind(self) -> str:
        return "final"


class Transition:
    """A completion transition between two vertices."""

    def __init__(self, source: StateVertex, target: StateVertex, guard: str = "") -> None:
        self.source = source
        self.target = target
        self.guard = guard

    def __repr__(self) -> str:
        return f"<Transition {self.source.name!r} -> {self.target.name!r}>"


class ActivityGraph:
    """A job: named activity graph with vertices and transitions.

    The graph owns its vertices; helper constructors keep the incoming/
    outgoing lists consistent, so user code never wires them by hand.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.vertices: list[StateVertex] = []
        self.transitions: list[Transition] = []

    # -- construction -----------------------------------------------------
    def _add_vertex(self, vertex: StateVertex) -> StateVertex:
        if any(v.name == vertex.name for v in self.vertices):
            raise ValueError(f"duplicate vertex name {vertex.name!r} in {self.name!r}")
        self.vertices.append(vertex)
        return vertex

    def add_action(self, name: str, **kwargs) -> ActionState:
        state = ActionState(name, **kwargs)
        self._add_vertex(state)
        return state

    def add_initial(self, name: str = "initial") -> Pseudostate:
        return self._add_vertex(Pseudostate(name, PSEUDO_INITIAL))  # type: ignore[return-value]

    def add_fork(self, name: str) -> Pseudostate:
        return self._add_vertex(Pseudostate(name, PSEUDO_FORK))  # type: ignore[return-value]

    def add_join(self, name: str) -> Pseudostate:
        return self._add_vertex(Pseudostate(name, PSEUDO_JOIN))  # type: ignore[return-value]

    def add_final(self, name: str = "final") -> FinalState:
        return self._add_vertex(FinalState(name))  # type: ignore[return-value]

    def add_transition(
        self, source: StateVertex, target: StateVertex, guard: str = ""
    ) -> Transition:
        if source not in self.vertices or target not in self.vertices:
            raise ValueError("transition endpoints must belong to this graph")
        transition = Transition(source, target, guard)
        self.transitions.append(transition)
        source.outgoing.append(transition)
        target.incoming.append(transition)
        return transition

    # -- queries ------------------------------------------------------------
    def find(self, name: str) -> StateVertex:
        for vertex in self.vertices:
            if vertex.name == name:
                return vertex
        raise KeyError(f"no vertex named {name!r} in graph {self.name!r}")

    def action_states(self) -> list[ActionState]:
        return [v for v in self.vertices if isinstance(v, ActionState)]

    def initial_states(self) -> list[Pseudostate]:
        return [
            v
            for v in self.vertices
            if isinstance(v, Pseudostate) and v.pseudo_kind == PSEUDO_INITIAL
        ]

    def final_states(self) -> list[FinalState]:
        return [v for v in self.vertices if isinstance(v, FinalState)]

    def action_dependencies(self) -> dict[str, list[str]]:
        """Map each action state to the names of the action states it
        depends on, skipping over pseudostates.

        This is the relation the CNX ``depends`` attribute encodes: the
        nearest preceding *action* states along incoming transitions,
        treating fork/join/initial as transparent routing nodes."""
        result: dict[str, list[str]] = {}
        for action in self.action_states():
            deps: list[str] = []
            seen: set[int] = set()
            stack: list[StateVertex] = list(action.predecessors())
            while stack:
                vertex = stack.pop()
                if id(vertex) in seen:
                    continue
                seen.add(id(vertex))
                if isinstance(vertex, ActionState):
                    if vertex.name not in deps:
                        deps.append(vertex.name)
                    continue  # stop at the nearest action
                stack.extend(vertex.predecessors())
            result[action.name] = sorted(deps)
        return result

    def topological_actions(self) -> list[ActionState]:
        """Action states in a dependency-respecting order.

        Raises ``ValueError`` if the dependency relation contains a
        cycle."""
        deps = self.action_dependencies()
        order: list[ActionState] = []
        done: set[str] = set()
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise ValueError(f"dependency cycle through {name!r}")
            visiting.add(name)
            for dep in deps.get(name, ()):
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(self.find(name))  # type: ignore[arg-type]

        for action in self.action_states():
            visit(action.name)
        return order

    def __iter__(self) -> Iterator[StateVertex]:
        return iter(self.vertices)

    def __repr__(self) -> str:
        return (
            f"<ActivityGraph {self.name!r}: {len(self.vertices)} vertices, "
            f"{len(self.transitions)} transitions>"
        )
