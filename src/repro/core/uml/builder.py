"""Fluent builder for CN job activity diagrams.

This is the programmatic stand-in for the paper's "CN Intelligent Object
Editor" / external UML tool: a small API that makes the common shapes --
split -> fork -> workers -> join -> joiner -- one-liners, while still
producing a full, valid :class:`~repro.core.uml.activity.ActivityGraph`.

Example (the Fig. 3 transitive-closure diagram)::

    b = ActivityBuilder("TransClosure")
    split = b.task("tctask0", jar="tasksplit.jar",
                   cls="org.jhpc.cn2.transcloser.TaskSplit",
                   params=[("String", "matrix.txt")])
    workers = [b.task(f"tctask{i}", jar="tctask.jar",
                      cls="org.jhpc.cn2.trnsclsrtask.TCTask",
                      params=[("Integer", str(i))])
               for i in range(1, 6)]
    join = b.task("tctask999", jar="taskjoin.jar",
                  cls="org.jhpc.cn2.transcloser.TaskJoin",
                  params=[("String", "matrix.txt")])
    b.chain(b.initial(), split)
    b.fan_out_in(split, workers, join)
    b.chain(join, b.final())
    graph = b.build()
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .activity import ActionState, ActivityGraph, FinalState, Pseudostate, StateVertex
from .tags import CN_TAG_RECEIVES, CN_TAG_SENDS, CNProfile
from .validate import validate_graph

__all__ = ["ActivityBuilder"]


class ActivityBuilder:
    """Incrementally builds (and on :meth:`build`, validates) a job graph."""

    def __init__(self, name: str) -> None:
        self.graph = ActivityGraph(name)
        self._fork_count = 0
        self._join_count = 0

    # -- vertices -----------------------------------------------------------
    def initial(self) -> Pseudostate:
        existing = self.graph.initial_states()
        if existing:
            return existing[0]
        return self.graph.add_initial()

    def final(self) -> FinalState:
        existing = self.graph.final_states()
        if existing:
            return existing[0]
        return self.graph.add_final()

    def task(
        self,
        name: str,
        *,
        jar: str,
        cls: str,
        memory: int = 1000,
        runmodel: str = "RUN_AS_THREAD_IN_TM",
        params: Iterable[tuple[str, str]] = (),
        retries: int = 0,
        sends: Iterable[str] = (),
        receives: Iterable[str] = (),
    ) -> ActionState:
        """An action state with the full CN tagged-value profile.

        *retries* (extension) adds a ``retries`` tagged value carried
        through to the CNX ``<task-req><retries>`` element.  *sends* /
        *receives* (extension) declare the task's message peers as
        ``sends``/``receives`` tagged values, carried into the CNX task
        attributes and checked by the static analyzer's message-flow
        pass."""
        state = self.graph.add_action(name)
        CNProfile.apply(
            state, jar=jar, cls=cls, memory=memory, runmodel=runmodel, params=params
        )
        if retries:
            state.set_tag("retries", str(retries))
        sends = list(sends)
        receives = list(receives)
        if sends:
            state.set_tag(CN_TAG_SENDS, ",".join(sends))
        if receives:
            state.set_tag(CN_TAG_RECEIVES, ",".join(receives))
        return state

    def dynamic_task(
        self,
        name: str,
        *,
        jar: str,
        cls: str,
        memory: int = 1000,
        runmodel: str = "RUN_AS_THREAD_IN_TM",
        multiplicity: str = "0..*",
        argument_expr: str = "",
        retries: int = 0,
    ) -> ActionState:
        """A dynamic-invocation action state (paper Fig. 5): worker count
        determined at run time by *argument_expr*, one invocation per
        argument list the expression yields.  *retries* as in
        :meth:`task` (every instance inherits the budget)."""
        state = self.graph.add_action(
            name,
            is_dynamic=True,
            dynamic_multiplicity=multiplicity,
            dynamic_arguments=argument_expr,
        )
        CNProfile.apply(state, jar=jar, cls=cls, memory=memory, runmodel=runmodel)
        if retries:
            state.set_tag("retries", str(retries))
        return state

    def fork(self, name: Optional[str] = None) -> Pseudostate:
        self._fork_count += 1
        return self.graph.add_fork(name or f"fork{self._fork_count}")

    def join(self, name: Optional[str] = None) -> Pseudostate:
        self._join_count += 1
        return self.graph.add_join(name or f"join{self._join_count}")

    # -- wiring ---------------------------------------------------------------
    def chain(self, *vertices: StateVertex) -> StateVertex:
        """Connect vertices sequentially; returns the last one."""
        for source, target in zip(vertices, vertices[1:]):
            self.graph.add_transition(source, target)
        return vertices[-1]

    def fan_out_in(
        self,
        source: StateVertex,
        branches: Sequence[StateVertex],
        sink: StateVertex,
    ) -> tuple[Optional[Pseudostate], Optional[Pseudostate]]:
        """source -> fork -> each branch -> join -> sink (Fig. 3 shape).

        With a single branch there is no concurrency to model, so the
        degenerate fork/join pair is omitted (UML forbids 1-way forks)."""
        if not branches:
            raise ValueError("fan_out_in needs at least one branch")
        if len(branches) == 1:
            self.chain(source, branches[0], sink)
            return None, None
        fork = self.fork()
        join = self.join()
        self.graph.add_transition(source, fork)
        for branch in branches:
            self.graph.add_transition(fork, branch)
            self.graph.add_transition(branch, join)
        self.graph.add_transition(join, sink)
        return fork, join

    def pipeline(self, source: StateVertex, *stages: StateVertex) -> StateVertex:
        """Alias of :meth:`chain` starting from *source*."""
        return self.chain(source, *stages)

    # -- result ------------------------------------------------------------------
    def build(self, *, validate: bool = True) -> ActivityGraph:
        if validate:
            validate_graph(self.graph)
        return self.graph
