"""UML tagged values and tag definitions (UML 1.x extension mechanism).

The paper configures each task through tagged values on its action state
(Fig. 4): the archive (``jar``), the implementation ``class``, a
``memory`` requirement, the ``runmodel``, and indexed task parameters
``ptype0``/``pvalue0``, ``ptype1``/``pvalue1``, ...  This module models
tag definitions and values generically, plus helpers for the CN profile.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = [
    "TagDefinition",
    "TaggedValue",
    "TaggedElement",
    "CNProfile",
    "CN_TAG_JAR",
    "CN_TAG_CLASS",
    "CN_TAG_MEMORY",
    "CN_TAG_RUNMODEL",
    "CN_TAG_SENDS",
    "CN_TAG_RECEIVES",
    "param_tag_names",
]

CN_TAG_JAR = "jar"
CN_TAG_CLASS = "class"
CN_TAG_MEMORY = "memory"
CN_TAG_RUNMODEL = "runmodel"
# message-flow extension: declared send/receive peers (comma lists of
# task names, or "*"), checked statically by repro.analysis
CN_TAG_SENDS = "sends"
CN_TAG_RECEIVES = "receives"

_PTYPE_RE = re.compile(r"^ptype(\d+)$")
_PVALUE_RE = re.compile(r"^pvalue(\d+)$")


@dataclass(frozen=True)
class TagDefinition:
    """A named tag (``UML:TagDefinition``).  ``xmi_id`` is assigned by the
    XMI writer; model-level code identifies definitions by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class TaggedValue:
    """A (definition, value) pair attached to a model element."""

    definition: TagDefinition
    value: str

    @property
    def name(self) -> str:
        return self.definition.name


class TaggedElement:
    """Mixin for model elements that carry tagged values."""

    def __init__(self) -> None:
        self.tagged_values: list[TaggedValue] = []

    def set_tag(self, name: str, value: str) -> TaggedValue:
        """Set (or replace) the tagged value *name*."""
        for tv in self.tagged_values:
            if tv.name == name:
                tv.value = value
                return tv
        tv = TaggedValue(TagDefinition(name), str(value))
        self.tagged_values.append(tv)
        return tv

    def get_tag(self, name: str, default: Optional[str] = None) -> Optional[str]:
        for tv in self.tagged_values:
            if tv.name == name:
                return tv.value
        return default

    def has_tag(self, name: str) -> bool:
        return any(tv.name == name for tv in self.tagged_values)

    def tags_dict(self) -> dict[str, str]:
        return {tv.name: tv.value for tv in self.tagged_values}


def param_tag_names(index: int) -> tuple[str, str]:
    """The (ptype, pvalue) tag names for parameter *index*."""
    return f"ptype{index}", f"pvalue{index}"


class CNProfile:
    """Helpers for the CN tagged-value profile on action states."""

    REQUIRED = (CN_TAG_JAR, CN_TAG_CLASS)
    KNOWN_RUNMODELS = (
        "RUN_AS_THREAD_IN_TM",
        "RUN_AS_PROCESS",
        "RUN_IN_JOBMANAGER",
    )

    @staticmethod
    def apply(
        element: TaggedElement,
        *,
        jar: str,
        cls: str,
        memory: int = 1000,
        runmodel: str = "RUN_AS_THREAD_IN_TM",
        params: Iterable[tuple[str, str]] = (),
    ) -> None:
        """Attach the full CN tag set for one task to *element*.

        *params* is an ordered iterable of ``(type_name, value)`` pairs,
        emitted as ``ptypeN``/``pvalueN`` with N counting from zero
        (matching paper Fig. 4, where TCTask2 has ``ptype0 =
        java.lang.Integer`` and ``pvalue0 = 2``)."""
        element.set_tag(CN_TAG_JAR, jar)
        element.set_tag(CN_TAG_CLASS, cls)
        element.set_tag(CN_TAG_MEMORY, str(memory))
        element.set_tag(CN_TAG_RUNMODEL, runmodel)
        for index, (ptype, pvalue) in enumerate(params):
            tname, vname = param_tag_names(index)
            element.set_tag(tname, ptype)
            element.set_tag(vname, str(pvalue))

    @staticmethod
    def params(element: TaggedElement) -> list[tuple[str, str]]:
        """Extract the ordered ``(type, value)`` parameter list from the
        indexed ptype/pvalue tags.  Raises ``ValueError`` on gaps or a
        type without a value."""
        types: dict[int, str] = {}
        values: dict[int, str] = {}
        for tv in element.tagged_values:
            m = _PTYPE_RE.match(tv.name)
            if m:
                types[int(m.group(1))] = tv.value
                continue
            m = _PVALUE_RE.match(tv.name)
            if m:
                values[int(m.group(1))] = tv.value
        if set(types) != set(values):
            missing = sorted(set(types) ^ set(values))
            raise ValueError(f"unpaired ptype/pvalue indices: {missing}")
        if types and sorted(types) != list(range(len(types))):
            raise ValueError(f"parameter indices not contiguous: {sorted(types)}")
        return [(types[i], values[i]) for i in sorted(types)]

    @staticmethod
    def iter_cn_tags(element: TaggedElement) -> Iterator[TaggedValue]:
        for tv in element.tagged_values:
            if tv.name in (CN_TAG_JAR, CN_TAG_CLASS, CN_TAG_MEMORY, CN_TAG_RUNMODEL):
                yield tv
            elif _PTYPE_RE.match(tv.name) or _PVALUE_RE.match(tv.name):
                yield tv
