"""Structured diagnostics: the output vocabulary of every analysis pass.

A :class:`Diagnostic` is one finding: a stable error code (``CNxxx``
from cnlint, the model analyzer, or ``CCxxx`` from conclint, the
concurrency analyzer), a severity, a human message (phrased to match the
historical validator strings, which :mod:`repro.core.cnx.validate` still
exposes), a :class:`SourceLocation` pointing into the originating
XMI/CNX element or Python source line, and an optional fix hint.  A
:class:`Report` is the ordered collection a full analysis produces, with
filtering, baseline-suppression, and rendering helpers shared by the
CLIs, the portal, and the client runner.  Both analyzers share this one
model, so the portal diagnostics artifact and ``--json`` output use a
single schema regardless of which tool produced a finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

__all__ = ["Severity", "SourceLocation", "Diagnostic", "Report", "tool_for_code"]


def tool_for_code(code: str) -> str:
    """Which analyzer owns a diagnostic code (``CN###`` -> cnlint, the
    model passes; ``CC###`` -> conclint, the concurrency passes)."""
    return "conclint" if code.startswith("CC") else "cnlint"


class Severity(enum.Enum):
    """Finding severity.  ERROR findings make submission refuse the
    composition; WARNING findings pass through with a notice."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding anchors in the originating document.

    ``source`` names the representation the composition was extracted
    from (``cnx`` | ``xmi`` | ``model``, or a file path for source-level
    findings); ``path`` is an XPath-flavored pointer into that document
    (e.g. ``client/job[1]/task[@name='tctask1']/@depends``) or a
    ``Class.method`` qualifier for Python source.  ``line`` is the
    1-based source line for findings that anchor to one (0 = no line
    information; model-level findings keep the historical two-part
    rendering)."""

    source: str = ""
    path: str = ""
    line: int = 0

    def __str__(self) -> str:
        suffix = f":{self.line}" if self.line else ""
        if not self.path:
            return (self.source or "<unknown>") + suffix
        joined = f"{self.source}:{self.path}" if self.source else self.path
        return joined + suffix


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    hint: str = ""
    pass_name: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def tool(self) -> str:
        """The analyzer that produced this finding (from the code family)."""
        return tool_for_code(self.code)

    def render(self, *, with_hint: bool = True) -> str:
        line = f"{self.code} {self.severity.value:<7} {self.location}  {self.message}"
        if with_hint and self.hint:
            line += f"\n      hint: {self.hint}"
        return line

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": str(self.location),
            "hint": self.hint,
            "pass": self.pass_name,
            "tool": self.tool,
            "line": self.location.line,
        }


class Report:
    """The diagnostics of one analysis run, in pass order."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection ----------------------------------------------------------
    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- filtering ---------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors()

    # -- rendering ---------------------------------------------------------
    def summary(self) -> str:
        return f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"

    def render(self, *, title: str = "", with_hints: bool = True) -> str:
        head = f"{title}: {self.summary()}" if title else self.summary()
        if not self.diagnostics:
            return head
        body = "\n".join(
            "  " + d.render(with_hint=with_hints) for d in self.diagnostics
        )
        return f"{head}\n{body}"

    def to_json(self) -> list[dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]

    def legacy_problems(self) -> list[str]:
        """Error messages in the historical ``collect_problems`` string
        format (the messages themselves are phrased compatibly)."""
        return [d.message for d in self.errors()]

    def __repr__(self) -> str:
        return f"<Report {self.summary()}>"
