"""``python -m repro.analysis conc`` -- the conclint command line.

Runs the CC passes over Python source trees (default ``src/repro``) and
prints one combined report.  Exit status matches cnlint: 0 clean, 1
error-severity findings (or warnings under ``--werror``), 2 unreadable
input.

Baselines: ``--write-baseline FILE`` records the current findings as
line-number-independent fingerprints; ``--baseline FILE`` suppresses
exactly those, so CI gates on *new* CC findings without requiring the
historical ones to be fixed first.  ``--runtime-report`` additionally
boots a small instrumented cluster, runs a toy workload, and prints the
observed lock-order graph and held-time stats.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from ..diagnostics import Report
from .static import CC_CODES, analyze_paths, fingerprint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis conc",
        description="conclint: concurrency correctness analysis of the CN "
        "runtime (lock discipline, blocking-under-lock, exception hygiene, "
        "transport readiness)",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="emit diagnostics as JSON")
    parser.add_argument(
        "--werror", action="store_true", help="exit non-zero on warnings too"
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from the report"
    )
    parser.add_argument(
        "--codes", action="store_true", help="list every CC code and exit"
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings whose fingerprints appear in FILE",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings' fingerprints to FILE and exit 0",
    )
    parser.add_argument(
        "--runtime-report", action="store_true",
        help="also run an instrumented toy workload and print the observed "
        "lock-order graph",
    )
    return parser


def _fingerprint(diag) -> str:
    return fingerprint(diag.location.source, diag.code, diag.location.path, "")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.codes:
        for code, description in sorted(CC_CODES.items()):
            print(f"{code}  {description}")
        return 0

    paths = args.paths or ["src/repro"]
    report = analyze_paths(paths)

    if args.write_baseline:
        fingerprints = sorted({_fingerprint(d) for d in report})
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            json.dump({"conclint_baseline": fingerprints}, fh, indent=2)
            fh.write("\n")
        print(f"wrote {len(fingerprints)} fingerprint(s) to {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                suppressed = set(json.load(fh).get("conclint_baseline", []))
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")
        report = Report(
            d for d in report if _fingerprint(d) not in suppressed
        )

    status = 0
    if args.json:
        print(json.dumps({"conclint": report.to_json()}, indent=2))
    else:
        print(report.render(title="conclint", with_hints=not args.no_hints))
    if report.by_code("CC001"):
        status = 2
    elif report.errors() or (args.werror and report.warnings()):
        status = 1

    if args.runtime_report:
        print()
        print(_runtime_report())
    return status


def _runtime_report() -> str:
    """Boot a small ``verify_locking=True`` cluster, run a toy dependent
    two-task job, and render the lock-order graph it produced."""
    from repro.cn import CNAPI, Cluster, Task, TaskRegistry, TaskSpec

    class _Probe(Task):
        def __init__(self, *params):
            self.params = params

        def run(self, ctx):  # pragma: no cover - exercised via the CLI only
            return tuple(self.params)

    registry = TaskRegistry()
    registry.register_class("probe.jar", "conclint.Probe", _Probe)
    with Cluster(2, registry=registry, verify_locking=True) as cluster:
        api = CNAPI.initialize(cluster)
        handle = api.create_job("conclint-probe")
        api.create_task(handle, TaskSpec(name="a", jar="probe.jar", cls="conclint.Probe"))
        api.create_task(
            handle,
            TaskSpec(name="b", jar="probe.jar", cls="conclint.Probe", depends=("a",)),
        )
        api.start_job(handle)
        api.wait(handle, timeout=30)
        verifier = cluster.lock_verifier
        data = verifier.report() if verifier is not None else {}
    lines = ["runtime lock-order report (toy fan-out workload):"]
    for edge in data.get("edges", []):
        lines.append(f"  {edge['holder']} -> {edge['acquired']}  [{edge['thread']}]")
    if not data.get("edges"):
        lines.append("  (no nested acquisitions observed)")
    cycles = data.get("cycles", [])
    lines.append(f"  cycles: {len(cycles)}")
    lines.append("  held-time (class-level):")
    for name, stats in data.get("held", {}).items():
        lines.append(
            f"    {name}: n={stats['acquisitions']} "
            f"total={stats['total_held_s']}s max={stats['max_held_s']}s"
        )
    return "\n".join(lines)
