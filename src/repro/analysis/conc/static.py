"""conclint static passes: AST analysis of the runtime's lock discipline.

Four code families, one tree walk per file:

====== ========= ===========================================================
code   severity  finding
====== ========= ===========================================================
CC001  error     file does not parse
CC002  warning   waiver comment without a ``-- reason`` justification
CC101  warning   attribute written both under and outside a lock
CC102  warning   attribute written under two different locks
CC103  error     write violates a declared guarded-by fact
CC201  warning   blocking call (bus/queue/journal/wait/join) under a lock
CC202  warning   second lock acquired while one is held
CC203  warning   user callback invoked while a lock is held
CC301  error     bare ``except:``
CC302  warning   over-broad ``except Exception/BaseException``
CC303  warning   ``ShutdownError`` swallowed (handler body is ``pass``)
CC401  warning   unpicklable payload (lambda) handed to a message call
CC402  warning   private attribute reached across the node/bus interface
CC403  warning   fan-out payload mutated after being shared by reference
CC404  warning   payload crossing ``Endpoint.send`` the codec cannot serialize
====== ========= ===========================================================

Lock knowledge is *syntactic*: a class's lock attributes are the ones
assigned ``threading.Lock/RLock/Condition`` or the runtime's
``make_lock/make_condition`` factories, and "under the lock" means
lexically inside ``with self.<lockattr>:``.  ``__init__`` writes are
exempt from CC10x — construction happens-before publication.  Declared
facts come from :data:`repro.analysis.conc.annotations.GUARDED_BY`;
known-safe sites carry inline waivers (see :mod:`.annotations`).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..diagnostics import Diagnostic, Report, Severity, SourceLocation
from .annotations import (
    CALLBACK_ATTRS,
    GUARDED_BY,
    LOCK_ORDER_EXEMPT,
    parse_waivers,
)

__all__ = ["CC_CODES", "analyze_source", "analyze_paths", "fingerprint"]

CC_CODES: dict[str, str] = {
    "CC001": "file does not parse",
    "CC002": "waiver without justification",
    "CC101": "attribute written both under and outside a lock",
    "CC102": "attribute written under two different locks",
    "CC103": "write violates a declared guarded-by fact",
    "CC201": "blocking call under a lock",
    "CC202": "second lock acquired while one is held",
    "CC203": "callback invoked while a lock is held",
    "CC301": "bare except",
    "CC302": "over-broad except clause",
    "CC303": "ShutdownError swallowed",
    "CC401": "unpicklable payload in message call",
    "CC402": "private attribute access across the node/bus interface",
    "CC403": "fan-out payload mutated after sharing by reference",
    "CC404": "unserializable payload crossing an endpoint send",
}

_ERROR_CODES = {"CC001", "CC103", "CC301"}

# (method name, receiver-name substrings that make it a blocking hazard;
# empty tuple = any receiver).  Receiver matching keeps dict.get() and
# list-ish .append() from drowning the real bus/queue/journal sites.
_BLOCKING: dict[str, tuple[str, tuple[str, ...]]] = {
    "publish": ("bus publish fans out to subscriber callbacks", ("bus",)),
    "solicit": ("bus solicit blocks on subscriber replies", ("bus",)),
    "put": ("queue put may block on capacity/backpressure", ("queue", "inbox")),
    "get": ("queue get blocks until a message arrives", ("queue", "inbox")),
    "append": ("journal append does write-ahead I/O and replication", ("journal", "backend")),
    "wait": ("wait parks the thread while the lock is held", ()),
    "join": ("thread join blocks until the target exits", ()),
}

_FAN_OUT_CALLS = {"route_many", "multicast", "send_many", "broadcast"}
_MESSAGE_CALLS = {"put", "publish", "send", "route", "route_many", "send_many", "Message"}

# CC404: constructions the wire codec (pickle protocol 5) cannot
# serialize when they appear inside a payload handed to Endpoint.send.
_UNPICKLABLE_CTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread", "open", "socket", "socketpair",
}
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "pop", "remove",
    "discard", "clear", "setdefault", "popitem", "sort", "reverse",
}


def _severity(code: str) -> Severity:
    return Severity.ERROR if code in _ERROR_CODES else Severity.WARNING


@dataclass
class _Finding:
    code: str
    message: str
    lineno: int
    scope: str  # "Class.method" | "<module>"
    detail: str  # stable fingerprint key (attr/call name), line-independent
    hint: str = ""


def fingerprint(relpath: str, finding_code: str, scope: str, detail: str) -> str:
    """Line-number-independent identity used for baseline suppression."""
    return f"{finding_code}|{relpath}|{scope}|{detail}"


def _is_lock_ctor(node: ast.expr) -> Optional[str]:
    """'lock' | 'cond' if *node* constructs a lock-ish object, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name in {"Lock", "RLock", "make_lock"}:
        return "lock"
    if name in {"Condition", "make_condition"}:
        return "cond"
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """The X of a ``self.X`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _receiver_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # noqa: BLE001  # conclint: waive CC302 -- unparse is best-effort labelling only
        return "<expr>"


class _ClassInfo:
    """What the lock passes need to know about one class."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock_attrs: set[str] = set()
        self.cond_to_lock: dict[str, str] = {}  # cond attr -> backing lock attr
        # attr -> {frozenset of canonical lock attrs held at a write}
        self.write_guards: dict[str, set[frozenset[str]]] = {}
        # attr -> [(lineno, method, held) ...]
        self.writes: dict[str, list[tuple[int, str, frozenset[str]]]] = {}


class _FileAnalysis:
    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.in_cn = "/cn/" in relpath.replace(os.sep, "/") or relpath.replace(
            os.sep, "/"
        ).endswith("/cn")
        self.findings: list[_Finding] = []

    # -- entry ----------------------------------------------------------------
    def run(self) -> list[_Finding]:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as exc:
            self.findings.append(
                _Finding("CC001", f"file does not parse: {exc.msg}", exc.lineno or 1,
                         "<module>", "parse")
            )
            return self.findings
        self._exception_hygiene(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._analyze_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._transport_function(node)
        if self.in_cn:
            self._private_access(tree)
        return self.findings

    def _emit(self, code: str, message: str, lineno: int, scope: str,
              detail: str, hint: str = "") -> None:
        self.findings.append(_Finding(code, message, lineno, scope, detail, hint))

    # -- CC3xx: exception hygiene ---------------------------------------------
    def _exception_hygiene(self, tree: ast.Module) -> None:
        scope_of: dict[int, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    scope_of.setdefault(id(child), node.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            scope = scope_of.get(id(node), "<module>")
            caught = node.type
            if caught is None:
                self._emit(
                    "CC301", "bare `except:` catches SystemExit/KeyboardInterrupt",
                    node.lineno, scope, "bare-except",
                    hint="catch a concrete exception type, or Exception at the very least",
                )
                continue
            names = self._exc_names(caught)
            if names & {"Exception", "BaseException"}:
                self._emit(
                    "CC302",
                    f"over-broad `except {' | '.join(sorted(names))}` hides "
                    "unrelated failures",
                    node.lineno, scope, "broad-except",
                    hint="narrow to the failure actually expected here, or waive "
                    "with a rationale if any exception genuinely must be contained",
                )
            if "ShutdownError" in names and self._body_swallows(node.body):
                self._emit(
                    "CC303",
                    "ShutdownError swallowed: a closed endpoint is silently "
                    "dropped outside the delivery ledger",
                    node.lineno, scope, "swallowed-shutdown",
                    hint="record the drop via trace.note_undeliverable(...) so the "
                    "delivery ledger stays truthful",
                )

    @staticmethod
    def _exc_names(node: ast.expr) -> set[str]:
        names: set[str] = set()
        parts = node.elts if isinstance(node, ast.Tuple) else [node]
        for part in parts:
            if isinstance(part, ast.Name):
                names.add(part.id)
            elif isinstance(part, ast.Attribute):
                names.add(part.attr)
        return names

    @staticmethod
    def _body_swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    # -- CC1xx / CC2xx: lock discipline ---------------------------------------
    def _analyze_class(self, cls: ast.ClassDef) -> None:
        info = _ClassInfo(cls.name)
        # pass 1: find the lock attributes (anywhere in the class)
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is None:
                    continue
                kind = _is_lock_ctor(node.value)
                if kind == "lock":
                    info.lock_attrs.add(attr)
                elif kind == "cond":
                    info.lock_attrs.add(attr)
                    backing = None
                    call = node.value
                    if isinstance(call, ast.Call):
                        for arg in list(call.args) + [k.value for k in call.keywords]:
                            backing = _self_attr(arg) or backing
                    info.cond_to_lock[attr] = backing or attr
        if not info.lock_attrs:
            return
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _MethodWalker(self, info, node).walk()
        self._lock_consistency(info)

    def _lock_consistency(self, info: _ClassInfo) -> None:
        for attr, writes in sorted(info.writes.items()):
            guards = info.write_guards.get(attr, set())
            locked = {g for g in guards if g}
            unlocked_writes = [
                (lineno, method) for lineno, method, held in writes if not held
            ]
            declared = GUARDED_BY.get(f"{info.name}.{attr}")
            if declared is not None:
                lock_attr = declared.split(".", 1)[1]
                for lineno, method, held in writes:
                    if lock_attr not in held:
                        self._emit(
                            "CC103",
                            f"write to {info.name}.{attr} without holding "
                            f"declared guard {declared}",
                            lineno, f"{info.name}.{method}", attr,
                            hint=f"wrap the write in `with self.{lock_attr}:` or "
                            "move it to a @guarded_by helper",
                        )
                continue  # declared facts subsume the inferred checks
            if locked and unlocked_writes:
                guard_names = sorted({a for g in locked for a in g})
                for lineno, method in unlocked_writes:
                    self._emit(
                        "CC101",
                        f"{info.name}.{attr} is written under "
                        f"self.{'/'.join(guard_names)} elsewhere but without a "
                        f"lock in {method}()",
                        lineno, f"{info.name}.{method}", attr,
                        hint="take the same lock, or document why this write is "
                        "single-threaded and waive",
                    )
            if len(locked) > 1:
                first = sorted(writes)[0]
                self._emit(
                    "CC102",
                    f"{info.name}.{attr} is written under different locks "
                    f"({', '.join(sorted('+'.join(sorted(g)) for g in locked))})",
                    first[0], f"{info.name}.{first[1]}", attr,
                    hint="pick one guarding lock per attribute",
                )

    # -- CC4xx: transport readiness -------------------------------------------
    def _transport_function(self, func: ast.FunctionDef) -> None:
        shared: list[tuple[str, int]] = []  # (name, lineno shared)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            callee_name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else ""
            )
            if callee_name in _MESSAGE_CALLS:
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        self._emit(
                            "CC401",
                            f"lambda passed to {callee_name}() cannot cross a "
                            "pickle boundary",
                            arg.lineno, f"?.{func.name}", callee_name,
                            hint="pass a registry task name or a module-level "
                            "callable instead",
                        )
            if callee_name == "send" and self._endpoint_receiver(callee):
                self._check_endpoint_payload(node, func.name)
            if callee_name in _FAN_OUT_CALLS and self.in_cn:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        shared.append((arg.id, node.lineno))
        if not shared:
            return
        shared_names = {name: lineno for name, lineno in shared}
        for node in ast.walk(func):
            target_name: Optional[str] = None
            if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                target_name = node.target.id
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript) and isinstance(tgt.value, ast.Name):
                        target_name = tgt.value.id
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _MUTATING_METHODS
            ):
                target_name = node.func.value.id
            if target_name in shared_names and node.lineno > shared_names[target_name]:
                self._emit(
                    "CC403",
                    f"`{target_name}` was fanned out by reference at line "
                    f"{shared_names[target_name]} and is mutated afterwards — "
                    "receivers alias it in-process but would hold a stale copy "
                    "across a real transport",
                    node.lineno, f"?.{func.name}", target_name,
                    hint="treat fanned-out payloads as frozen (copy before mutating)",
                )

    @staticmethod
    def _endpoint_receiver(callee: ast.expr) -> bool:
        """True when ``<recv>.send(...)`` targets a transport endpoint:
        the receiver expression names an endpoint (``self.endpoint``,
        ``worker._endpoint``, ...) or is the conventional ``ep`` local."""
        if not isinstance(callee, ast.Attribute):
            return False
        receiver = _receiver_text(callee.value).lower()
        if "endpoint" in receiver:
            return True
        leaf = receiver.rsplit(".", 1)[-1]
        return leaf in {"ep", "_ep"}

    def _check_endpoint_payload(self, call: ast.Call, scope: str) -> None:
        """CC404: anything inside an Endpoint.send payload the frame
        codec (pickle protocol 5) cannot serialize.  Top-level lambdas
        are CC401's finding; this pass catches nested lambdas, generator
        expressions, and live runtime handles (locks, threads, files,
        sockets) constructed inside the payload."""
        receiver = _receiver_text(call.func.value)  # type: ignore[attr-defined]
        for arg in list(call.args) + [k.value for k in call.keywords]:
            for sub in ast.walk(arg):
                what: Optional[str] = None
                token = ""
                if isinstance(sub, ast.GeneratorExp):
                    what, token = "a generator expression", "genexp"
                elif isinstance(sub, ast.Lambda) and sub is not arg:
                    what, token = "a lambda", "lambda"
                elif isinstance(sub, ast.Call):
                    ctor = sub.func
                    name = ctor.attr if isinstance(ctor, ast.Attribute) else (
                        ctor.id if isinstance(ctor, ast.Name) else ""
                    )
                    if name in _UNPICKLABLE_CTORS:
                        what, token = f"a live {name}() handle", name
                if what is not None:
                    self._emit(
                        "CC404",
                        f"payload handed to {receiver}.send() contains {what} "
                        "the frame codec cannot serialize",
                        sub.lineno, f"?.{scope}", f"send:{token}",
                        hint="ship plain data (lists, dicts, arrays, bytes); "
                        "materialize generators and keep runtime handles on "
                        "the owning side of the wire",
                    )

    def _private_access(self, tree: ast.Module) -> None:
        func_of: dict[int, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    func_of.setdefault(id(child), node.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                continue
            if isinstance(base, ast.Name):
                # another object's privates: the classic transport-hostile
                # shortcut (works in-process, impossible across processes)
                scope = func_of.get(id(node), "<module>")
                self._emit(
                    "CC402",
                    f"access to {base.id}.{attr} reaches into another "
                    "object's private state across the node/bus interface",
                    node.lineno, f"?.{scope}", f"{base.id}.{attr}",
                    hint="add a public accessor, or waive if both objects are "
                    "node-local by design",
                )


class _MethodWalker:
    """Walks one method tracking which of the class's locks are lexically
    held, recording writes and flagging CC2xx hazards."""

    def __init__(self, analysis: _FileAnalysis, info: _ClassInfo,
                 func: ast.FunctionDef) -> None:
        self.analysis = analysis
        self.info = info
        self.func = func
        self.held: list[str] = []  # canonical lock attr names, outermost first

    def walk(self) -> None:
        for stmt in self.func.body:
            self._visit(stmt)

    # -- traversal ------------------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs execute later, under their own discipline
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._note_writes(node)
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.info.lock_attrs:
                canonical = self.info.cond_to_lock.get(attr, attr)
                if (
                    self.held
                    and canonical not in self.held
                    and canonical not in LOCK_ORDER_EXEMPT
                    and self.held[-1] not in LOCK_ORDER_EXEMPT
                ):
                    self.analysis._emit(
                        "CC202",
                        f"acquiring self.{canonical} while holding "
                        f"self.{self.held[-1]} nests two locks",
                        item.context_expr.lineno, self._scope(), canonical,
                        hint="establish (and document) a fixed order, or restructure "
                        "to release the outer lock first; the runtime verifier "
                        "checks the order globally",
                    )
                if canonical not in self.held:
                    self.held.append(canonical)
                    acquired.append(canonical)
            else:
                # `with` over a non-lock (a file, a span): still visit the
                # context expression for calls under the current locks.
                self._visit(item.context_expr)
        for stmt in node.body:
            self._visit(stmt)
        for canonical in reversed(acquired):
            self.held.remove(canonical)

    def _scope(self) -> str:
        return f"{self.info.name}.{self.func.name}"

    # -- writes ---------------------------------------------------------------
    def _note_writes(self, node: ast.stmt) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]  # type: ignore[list-item]
        for target in targets:
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
            if attr is None or attr in self.info.lock_attrs:
                continue
            self._record_write(attr, node.lineno)

    def _record_write(self, attr: str, lineno: int) -> None:
        if self.func.name == "__init__":
            return  # construction happens-before publication
        held = frozenset(self.held)
        self.info.write_guards.setdefault(attr, set()).add(held)
        self.info.writes.setdefault(attr, []).append(
            (lineno, self.func.name, held)
        )

    # -- calls under lock -----------------------------------------------------
    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        # container-mutation on self.X counts as a write to X
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _self_attr(func.value)
            if attr is not None and attr not in self.info.lock_attrs:
                self._record_write(attr, node.lineno)
        if not self.held:
            return
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver_attr = _self_attr(func.value)
            if receiver_attr is not None and receiver_attr in self.info.lock_attrs:
                return  # wait/notify on the very condition being held
            entry = _BLOCKING.get(method)
            if entry is not None:
                reason, hints = entry
                receiver = _receiver_text(func.value)
                if not hints or any(h in receiver.lower() for h in hints):
                    self.analysis._emit(
                        "CC201",
                        f"{receiver}.{method}() under self.{self.held[-1]}: {reason}",
                        node.lineno, self._scope(), f"{method}",
                        hint="move the call outside the `with` block (snapshot "
                        "state under the lock, act after releasing), or waive "
                        "with the invariant that makes it safe",
                    )
            if method in CALLBACK_ATTRS or (
                receiver_attr in CALLBACK_ATTRS if receiver_attr else False
            ):
                self._callback_finding(node)
        elif isinstance(func, ast.Name) and func.id in {"callback", "handler"}:
            self._callback_finding(node)

    def _callback_finding(self, node: ast.Call) -> None:
        self.analysis._emit(
            "CC203",
            f"user callback invoked while holding self.{self.held[-1]} — "
            "re-entrant user code can deadlock or recurse into the runtime",
            node.lineno, self._scope(), "callback",
            hint="collect callbacks under the lock, invoke after releasing",
        )


# -- drivers ------------------------------------------------------------------


def analyze_source(source: str, relpath: str) -> list[Diagnostic]:
    """Analyze one file's text; waivers already applied."""
    waivers, bare = parse_waivers(source)
    findings = _FileAnalysis(relpath, source).run()
    diags: list[Diagnostic] = []
    for lineno in bare:
        diags.append(
            Diagnostic(
                code="CC002",
                severity=Severity.WARNING,
                message="waiver without justification (add `-- reason`)",
                location=SourceLocation(relpath, "<module>", lineno),
                hint="waivers must say why the site is safe",
                pass_name="conc-waivers",
            )
        )
    for f in findings:
        if f.code in waivers.get(f.lineno, ()):
            continue
        diags.append(
            Diagnostic(
                code=f.code,
                severity=_severity(f.code),
                message=f.message,
                location=SourceLocation(relpath, f.scope, f.lineno),
                hint=f.hint,
                pass_name=f"conc-{f.code[:4].lower()}xx",
            )
        )
    diags.sort(key=lambda d: (d.location.line, d.code))
    return diags


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in sorted(dirnames) if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def analyze_paths(paths: Sequence[str], *, root: str = ".") -> Report:
    """Run every pass over the .py files under *paths*."""
    report = Report()
    for filepath in _iter_py_files(paths):
        relpath = os.path.relpath(filepath, root).replace(os.sep, "/")
        try:
            with open(filepath, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.extend([
                Diagnostic(
                    code="CC001",
                    severity=Severity.ERROR,
                    message=f"cannot read {relpath}: {exc}",
                    location=SourceLocation(relpath, "<module>"),
                    pass_name="conc-io",
                )
            ])
            continue
        report.extend(analyze_source(source, relpath))
    return report
