"""Runtime lock-order / deadlock verifier (lockdep for the CN runtime).

Enabled with ``Cluster(verify_locking=True)`` (or ``CN_VERIFY_LOCKING=1``)
and free when off: :func:`make_lock` returns a *plain*
``threading.Lock``/``RLock`` unless a verifier is installed, so the
disabled hot path pays nothing — not even an attribute indirection.

With a verifier installed, every lock the runtime creates through
:func:`make_lock` is an :class:`InstrumentedLock` that

* keeps a per-thread stack of currently-held locks,
* records a directed edge ``A -> B`` into a global **lock-order graph**
  whenever a thread acquires B while holding A, tagged with a *witness*
  (the acquisition call sites of both locks and the thread name),
* distinguishes RLock *reentrancy* (same instance, refcounted — no
  edge) from *cross-instance* nesting of the same lock class (an
  ``A -> A`` self-edge: two threads doing it in opposite instance
  order deadlock),
* measures held time per lock class.

Nodes are **class-level** names (``"Job._lock"``), not instances, so the
graph stays bounded no matter how many Jobs a run creates and a cycle
means "some interleaving of this program can deadlock", which is exactly
the invariant a transport refactor must preserve.  At teardown
:meth:`LockVerifier.check` runs cycle detection and raises
:class:`LockOrderError` listing every cycle with both witness stacks.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "LockOrderError",
    "Witness",
    "InstrumentedLock",
    "LockVerifier",
    "install_verifier",
    "uninstall_verifier",
    "current_verifier",
    "make_lock",
    "make_condition",
]


class LockOrderError(RuntimeError):
    """A lock-order cycle, guarded-by violation, or assert-held failure."""


def _call_site(skip: int = 2, depth: int = 3) -> str:
    """A compact ``file:line in func`` trail of the acquisition site,
    skipping frames inside this module."""
    frames = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # shallower stack than requested
        return "<unknown>"
    while frame is not None and len(frames) < depth:
        filename = frame.f_code.co_filename
        if not filename.endswith(("conc/runtime.py", "conc/annotations.py")):
            short = "/".join(filename.split("/")[-2:])
            frames.append(f"{short}:{frame.f_lineno} in {frame.f_code.co_name}")
        frame = frame.f_back
    return " <- ".join(frames) if frames else "<unknown>"


@dataclass(frozen=True)
class Witness:
    """Evidence for one lock-order edge: where the already-held lock was
    taken, where the new one was, and on which thread."""

    holder: str
    acquired: str
    holder_site: str
    acquired_site: str
    thread: str

    def render(self) -> str:
        return (
            f"{self.holder} -> {self.acquired} [thread {self.thread}]\n"
            f"      held   {self.holder} from {self.holder_site}\n"
            f"      taking {self.acquired} at   {self.acquired_site}"
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "holder": self.holder,
            "acquired": self.acquired,
            "holder_site": self.holder_site,
            "acquired_site": self.acquired_site,
            "thread": self.thread,
        }


@dataclass
class _Held:
    """One entry on a thread's held-lock stack."""

    name: str
    lock_id: int
    site: str
    t0: float
    count: int = 1


@dataclass
class _HeldStats:
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def observe(self, dt: float) -> None:
        self.count += 1
        self.total += dt
        if dt > self.max:
            self.max = dt


class LockVerifier:
    """The global lock-order graph and per-thread held-lock stacks."""

    def __init__(self, *, clock=None) -> None:
        import time

        self._clock = clock or time.perf_counter
        self._tls = threading.local()
        # A raw lock (never instrumented — the verifier must not verify
        # itself) guarding the shared tables below.
        self._meta = threading.Lock()
        self._edges: dict[tuple[str, str], Witness] = {}
        self._violations: list[str] = []
        self._held_stats: dict[str, _HeldStats] = {}
        self._metrics = None  # optional telemetry MetricsRegistry

    # -- wiring ---------------------------------------------------------------
    def attach_metrics(self, registry: Any) -> None:
        """Export held-time observations into a PR 4 telemetry
        ``MetricsRegistry`` as ``cn_lock_held_seconds{lock=<name>}``."""
        self._metrics = registry

    # -- per-thread stack -----------------------------------------------------
    def _stack(self) -> list[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def note_acquired(self, name: str, lock_id: int) -> None:
        stack = self._stack()
        if stack and stack[-1].lock_id == lock_id:
            stack[-1].count += 1  # RLock reentrancy: no new edge
            return
        for held in stack:
            if held.lock_id == lock_id:
                # Reentrant re-acquire with other locks taken in between
                # (with A: with B: with A again) — legal for an RLock,
                # no new edge, but keep the refcount on the original.
                held.count += 1
                return
        site = _call_site()
        for held in stack:
            self._record_edge(held, name, site)
        stack.append(_Held(name, lock_id, site, self._clock()))

    def note_released(self, name: str, lock_id: int) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock_id == lock_id:
                held = stack[index]
                held.count -= 1
                if held.count == 0:
                    del stack[index]
                    self._observe_held(name, self._clock() - held.t0)
                return
        with self._meta:
            self._violations.append(
                f"release of {name} not held by thread "
                f"{threading.current_thread().name} at {_call_site()}"
            )

    def detach_for_wait(self, lock_id: int) -> Optional[_Held]:
        """Pop the full stack entry for a condition wait (the lock is
        released however many times it was reentrantly held)."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock_id == lock_id:
                held = stack[index]
                del stack[index]
                self._observe_held(held.name, self._clock() - held.t0)
                return held
        return None

    def reattach_after_wait(self, held: Optional[_Held]) -> None:
        if held is None:
            return
        # Re-acquisition after a wait re-establishes the hold but adds no
        # edges: the blocking order was already recorded at first acquire,
        # and a woken waiter conventionally holds nothing else.
        held.t0 = self._clock()
        self._stack().append(held)

    def holds(self, lock_id: int) -> bool:
        return any(h.lock_id == lock_id for h in self._stack())

    def held_names(self) -> list[str]:
        return [h.name for h in self._stack()]

    # -- the graph ------------------------------------------------------------
    def _record_edge(self, held: _Held, acquired: str, site: str) -> None:
        # held.name == acquired means same lock class, different
        # instance: two threads nesting in opposite instance order
        # deadlock.  It lands as a self-edge, which cycle detection
        # reports like any other cycle.
        key = (held.name, acquired)
        with self._meta:
            if key not in self._edges:
                self._edges[key] = Witness(
                    holder=held.name,
                    acquired=acquired,
                    holder_site=held.site,
                    acquired_site=site,
                    thread=threading.current_thread().name,
                )

    def _observe_held(self, name: str, dt: float) -> None:
        with self._meta:
            self._held_stats.setdefault(name, _HeldStats()).observe(dt)
        if self._metrics is not None:
            try:
                self._metrics.histogram("cn_lock_held_seconds", lock=name).observe(dt)
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- telemetry must never break the runtime
                pass

    def edges(self) -> dict[tuple[str, str], Witness]:
        with self._meta:
            return dict(self._edges)

    def find_cycles(self) -> list[list[Witness]]:
        """Elementary cycles in the lock-order graph (one per strongly
        connected component, plus self-loops), as witness chains."""
        edges = self.edges()
        graph: dict[str, set[str]] = {}
        for holder, acquired in edges:
            graph.setdefault(holder, set()).add(acquired)
            graph.setdefault(acquired, set())

        cycles: list[list[Witness]] = []
        for holder, acquired in edges:
            if holder == acquired:
                cycles.append([edges[(holder, acquired)]])

        # Tarjan's SCC: any component of size > 1 contains a cycle.
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(v: str) -> None:
            work = [(v, iter(sorted(graph[v])))]
            index_of[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index_of:
                        index_of[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(graph[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index_of[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    if len(component) > 1:
                        sccs.append(component)

        for vertex in sorted(graph):
            if vertex not in index_of:
                strongconnect(vertex)

        for component in sccs:
            members = set(component)
            # Walk one cycle inside the component: follow in-component
            # successors from the smallest member until it repeats.
            start = min(component)
            path = [start]
            seen = {start}
            node = start
            while True:
                successors = sorted(graph[node] & members)
                if not successors:
                    break
                node = successors[0]
                if node in seen:
                    tail = path[path.index(node):] + [node]
                    cycles.append(
                        [edges[(a, b)] for a, b in zip(tail, tail[1:])]
                    )
                    break
                path.append(node)
                seen.add(node)
        return cycles

    # -- verdicts -------------------------------------------------------------
    def violations(self) -> list[str]:
        with self._meta:
            return list(self._violations)

    def note_violation(self, message: str) -> None:
        with self._meta:
            self._violations.append(message)

    def check(self) -> None:
        """Raise :class:`LockOrderError` on any cycle or recorded
        violation; silent when the graph is a DAG and discipline held."""
        problems: list[str] = []
        for cycle in self.find_cycles():
            names = " -> ".join(w.holder for w in cycle) + f" -> {cycle[0].holder}"
            block = "\n    ".join(w.render() for w in cycle)
            problems.append(f"lock-order cycle: {names}\n    {block}")
        problems.extend(self.violations())
        if problems:
            raise LockOrderError(
                "lock verifier found "
                f"{len(problems)} problem(s):\n" + "\n".join(problems)
            )

    def report(self) -> dict[str, Any]:
        """The graph and held-time stats as a JSON-friendly dict."""
        with self._meta:
            held = {
                name: {
                    "acquisitions": s.count,
                    "total_held_s": round(s.total, 6),
                    "max_held_s": round(s.max, 6),
                }
                for name, s in sorted(self._held_stats.items())
            }
        return {
            "edges": [w.to_dict() for _, w in sorted(self.edges().items())],
            "cycles": [
                [w.to_dict() for w in cycle] for cycle in self.find_cycles()
            ],
            "violations": self.violations(),
            "held": held,
        }


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` stand-in that reports acquisitions
    to a :class:`LockVerifier`.

    Supports the full ``Condition``-backing protocol
    (``_release_save`` / ``_acquire_restore`` / ``_is_owned``), so
    ``threading.Condition(instrumented_lock)`` behaves correctly: a wait
    detaches the hold from the verifier's per-thread stack and a wakeup
    reattaches it without inventing new order edges.
    """

    __slots__ = ("name", "_inner", "_verifier", "_reentrant")

    def __init__(self, name: str, verifier: LockVerifier, *, reentrant: bool = True) -> None:
        self.name = name
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._verifier = verifier

    # -- the lock protocol ---------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._verifier.note_acquired(self.name, id(self))
        return got

    def release(self) -> None:
        self._verifier.note_released(self.name, id(self))
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        # RLock has no .locked() before 3.12; fall back to a probe.
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return probe()
        if self._inner.acquire(blocking=False):  # conclint: waive CC202 -- probe, released immediately
            self._inner.release()
            return False
        return True

    # -- Condition backing ---------------------------------------------------
    def _release_save(self):
        held = self._verifier.detach_for_wait(id(self))
        saver = getattr(self._inner, "_release_save", None)
        state = saver() if saver is not None else self._inner.release()
        return (state, held)

    def _acquire_restore(self, saved) -> None:
        state, held = saved
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None:
            restorer(state)
        else:
            self._inner.acquire()
        self._verifier.reattach_after_wait(held)

    def _is_owned(self) -> bool:
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None:
            return owned()
        return self._verifier.holds(id(self))

    # -- discipline checks ---------------------------------------------------
    def assert_held_by_me(self, context: str = "") -> None:
        """Raise unless the calling thread currently holds this lock."""
        if not self._verifier.holds(id(self)):
            message = (
                f"guarded-by violation: {self.name} not held by thread "
                f"{threading.current_thread().name}"
                + (f" ({context})" if context else "")
                + f" at {_call_site()}"
            )
            self._verifier.note_violation(message)
            raise LockOrderError(message)

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name}>"


# -- the installed-verifier global -------------------------------------------
#
# Installed by ``Cluster(verify_locking=True)`` before it constructs any
# lock-holding component, so locks created deep inside Job/MessageQueue
# constructors come out instrumented.  Refcounted: nested clusters in one
# process share one graph (which is what you want — cross-cluster edges
# are real edges).

_installed: Optional[LockVerifier] = None
_install_count = 0
_install_lock = threading.Lock()


def install_verifier(verifier: Optional[LockVerifier] = None) -> LockVerifier:
    """Install (or join) the process-wide verifier; returns the active one."""
    global _installed, _install_count
    with _install_lock:
        if _installed is None:
            _installed = verifier or LockVerifier()
        _install_count += 1
        return _installed


def uninstall_verifier() -> None:
    """Release one installation; the graph is dropped at refcount zero.
    Locks already created stay instrumented and keep reporting into the
    (now detached) verifier they were built with — harmless."""
    global _installed, _install_count
    with _install_lock:
        if _install_count > 0:
            _install_count -= 1
        if _install_count == 0:
            _installed = None


def current_verifier() -> Optional[LockVerifier]:
    return _installed


# -- factories ----------------------------------------------------------------


def make_lock(name: str, *, reentrant: bool = True):
    """The runtime's lock constructor.  Plain ``threading.RLock``/
    ``Lock`` when no verifier is installed (zero verification cost);
    an :class:`InstrumentedLock` named *name* (``"Class._lock"``) when
    one is."""
    verifier = _installed
    if verifier is None:
        return threading.RLock() if reentrant else threading.Lock()
    return InstrumentedLock(name, verifier, reentrant=reentrant)


def make_condition(name: str, lock=None):
    """A condition over a :func:`make_lock` lock (shares the verifier
    behaviour of its backing lock)."""
    if lock is None:
        lock = make_lock(name, reentrant=True)
    return threading.Condition(lock)
