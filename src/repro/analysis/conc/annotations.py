"""Concurrency annotations: the facts conclint checks.

This is the single registry both halves of conclint consult:

* the **static** passes (:mod:`.static`) use :data:`GUARDED_BY` to know
  which attributes must only be written under which lock, and
  :data:`BLOCKING_CALLS` to know which calls may block or re-enter;
* the **runtime** verifier (:mod:`.runtime`) uses :func:`guarded_by`
  declarations to check, at call time, that the declared lock is
  actually held by the current thread.

Facts are keyed by *class-level* names (``"Job._lock"``), not instances:
the lock-order graph must stay bounded no matter how many Jobs a run
creates, and a documented ordering between two *classes* of lock is what
a future transport refactor needs to preserve.

Waivers
-------
A known-safe site that would otherwise trip a static pass carries an
inline waiver comment::

    self._bus.publish(...)  # conclint: waive CC201 -- replicas must see appends in order

The justification after ``--`` is mandatory; a bare waiver is itself
reported (CC002) so waivers cannot silently accumulate.
"""

from __future__ import annotations

import re
from typing import Callable, Optional, TypeVar

__all__ = [
    "GUARDED_BY",
    "BLOCKING_CALLS",
    "LOCK_ORDER_EXEMPT",
    "WAIVER_RE",
    "parse_waivers",
    "guarded_by",
]

# -- guarded-by facts ---------------------------------------------------------
#
# "Class.attr" -> "Class._lockname".  The static CC103 pass flags writes
# to these attributes outside a ``with self.<lockname>`` block; the
# runtime verifier's ``assert_held`` checks the same facts dynamically
# at the caller-must-hold helper sites that declare them with
# ``@guarded_by``.
GUARDED_BY: dict[str, str] = {
    # Job: pending/running/completed bookkeeping and the route ledger
    # all mutate under the job's reentrant lock.
    "Job._pending": "Job._lock",
    "Job._running": "Job._lock",
    "Job._completed": "Job._lock",
    "Job._failed": "Job._lock",
    # TupleSpace: the backing list is only touched under the condition's
    # lock; ``_take`` relies on its caller holding it.
    "TupleSpace._tuples": "TupleSpace._lock",
    # Journals: the in-memory entry list / file handle are persisted by
    # ``_persist`` which documents "the lock is held".
    "MemoryJournal._entries": "MemoryJournal._lock",
    "FileJournal._entries": "FileJournal._lock",
    # TaskManager slot accounting.
    "TaskManager._running": "TaskManager._lock",
    # Bid scheduler state: the archive-locality cache mutates with the
    # hosting tables; rule sequence numbers under the manager lock.
    "TaskManager._archive_cache": "TaskManager._lock",
    "JobManager._rule_counter": "JobManager._lock",
    # ProcTransport worker-side telemetry coalescing buffer.
    "WorkerRuntime._frame_buffer": "WorkerRuntime._lock",
    # MulticastBus subscriber table.
    "MulticastBus._subscribers": "MulticastBus._lock",
    # AdmissionController: per-tenant token buckets, in-flight quotas,
    # and the decision counters all mutate under the admission lock.
    "AdmissionController._buckets": "AdmissionController._lock",
    "AdmissionController._in_flight": "AdmissionController._lock",
    "AdmissionController.counts": "AdmissionController._lock",
    # Transport-robustness slice: dead-letter bookkeeping mutates under
    # the job lock; the queue's poison counter under the queue condition;
    # the chaos fault log only ever grows under its dedicated lock.
    "Job.dead_letters": "Job._lock",
    "Job.messages_poisoned": "Job._lock",
    "MessageQueue.poisoned": "MessageQueue._cond",
    "ChaosPolicy.log": "ChaosPolicy._log_lock",
}

# -- blocking / re-entrancy hazard table --------------------------------------
#
# Method names whose invocation under a held lock is a CC201 hazard:
# they may block indefinitely (queue handoff, journal fsync), re-enter
# arbitrary user code (bus callbacks), or acquire another lock.  Matched
# on the attribute name of a Call node (``anything.publish(...)``), so
# the table errs toward high-signal names that are unambiguous in this
# codebase.
BLOCKING_CALLS: dict[str, str] = {
    "publish": "bus publish fans out to subscriber callbacks",
    "solicit": "bus solicit blocks on subscriber replies",
    "put": "queue put may block on capacity/backpressure",
    "get": "queue get blocks until a message arrives",
    "append": "journal append does write-ahead I/O and replication",
    "wait": "condition/event wait parks the thread",
    "join": "thread join blocks until the target exits",
}

# Callback-bearing attribute names: calling through one of these while
# holding a lock runs arbitrary user code under that lock (CC203).
CALLBACK_ATTRS = {"_callback", "_on_event", "_handler", "callback", "handler"}

# -- lock-order exemptions ----------------------------------------------------
#
# Module-level locks created at import time, before any verifier can be
# installed, and never nested with runtime locks.  The runtime verifier
# never sees them (they stay plain ``threading.Lock``); listing them here
# documents why and lets the static CC202 pass skip them.
LOCK_ORDER_EXEMPT: frozenset[str] = frozenset(
    {
        "_serial_lock",  # repro.cn.messages: module-scope id counter
        "_undeliverable_lock",  # repro.cn.trace: module-scope drop ledger
    }
)

# -- waiver parsing -----------------------------------------------------------

WAIVER_RE = re.compile(
    r"#\s*conclint:\s*waive\s+(?P<codes>CC\d{3}(?:\s*,\s*CC\d{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


def parse_waivers(source: str) -> tuple[dict[int, set[str]], list[int]]:
    """Extract waiver comments from *source*.

    Returns ``(waivers, bare)`` where *waivers* maps line number (1-based)
    to the set of waived CC codes effective on that line — a waiver on a
    comment-only line also covers the following line — and *bare* lists
    lines whose waiver carries no ``-- reason`` justification (CC002).
    """
    waivers: dict[int, set[str]] = {}
    bare: list[int] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = WAIVER_RE.search(text)
        if not match:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        if not match.group("reason"):
            bare.append(lineno)
        waivers.setdefault(lineno, set()).update(codes)
        if text.lstrip().startswith("#"):
            # comment-only line: the waiver targets the next line
            waivers.setdefault(lineno + 1, set()).update(codes)
    return waivers, bare


# -- the @guarded_by runtime declaration --------------------------------------

F = TypeVar("F", bound=Callable)


def guarded_by(lock_attr: str) -> Callable[[F], F]:
    """Declare that the decorated method requires ``self.<lock_attr>`` to
    be held by the calling thread.

    With no verifier installed this is free (the wrapper checks one
    module global and falls through); with ``verify_locking=True`` the
    lock must be an :class:`~.runtime.InstrumentedLock` and the call
    raises :class:`~.runtime.LockOrderError` if the current thread does
    not hold it.  The declaration is also machine-readable: the static
    CC103 pass cross-checks it against :data:`GUARDED_BY`.
    """

    def decorate(func: F) -> F:
        import functools

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            from . import runtime

            verifier = runtime.current_verifier()
            if verifier is not None:
                lock = getattr(self, lock_attr, None)
                if isinstance(lock, runtime.InstrumentedLock):
                    lock.assert_held_by_me(
                        f"{type(self).__name__}.{func.__name__} requires {lock_attr}"
                    )
            return func(self, *args, **kwargs)

        wrapper.__conclint_guarded_by__ = lock_attr  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def declared_guard(func: Callable) -> Optional[str]:
    """The ``@guarded_by`` lock attribute of *func*, if declared."""
    return getattr(func, "__conclint_guarded_by__", None)
