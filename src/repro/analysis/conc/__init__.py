"""conclint: the concurrency correctness layer.

Two halves share one vocabulary:

* :mod:`~repro.analysis.conc.static` -- AST passes over ``src/repro``
  emitting ``CCxxx`` :class:`~repro.analysis.diagnostics.Diagnostic`
  findings (lock discipline, blocking-call-under-lock, exception
  hygiene, transport readiness).
* :mod:`~repro.analysis.conc.runtime` -- the opt-in lock-order /
  deadlock verifier (:class:`InstrumentedLock`, :class:`LockVerifier`)
  enabled with ``Cluster(verify_locking=True)``.

The shared vocabulary is :mod:`~repro.analysis.conc.annotations`: the
guarded-by facts and lock-hierarchy declarations that the static passes
check syntactically and the runtime verifier checks dynamically.
"""

from .annotations import GUARDED_BY, LOCK_ORDER_EXEMPT, guarded_by
from .runtime import (
    InstrumentedLock,
    LockOrderError,
    LockVerifier,
    current_verifier,
    install_verifier,
    make_condition,
    make_lock,
    uninstall_verifier,
)
from .static import CC_CODES, analyze_paths, analyze_source

__all__ = [
    "GUARDED_BY",
    "LOCK_ORDER_EXEMPT",
    "guarded_by",
    "CC_CODES",
    "analyze_paths",
    "analyze_source",
    "InstrumentedLock",
    "LockOrderError",
    "LockVerifier",
    "current_verifier",
    "install_verifier",
    "uninstall_verifier",
    "make_lock",
    "make_condition",
]
