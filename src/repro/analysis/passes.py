"""The analysis passes ("cnlint") and the driver that runs them.

Each pass walks the :class:`~repro.analysis.ir.Composition` IR and emits
:class:`~repro.analysis.diagnostics.Diagnostic` records with stable
``CNxxx`` codes:

======  ====================================================================
code    finding
======  ====================================================================
CN001   UML activity graph not well-formed (wraps the model validator)
CN101   duplicate task name within a job
CN102   ``depends`` references an unknown task
CN103   task depends on itself (the paper's Fig. 2 erratum)
CN104   dependency cycle among tasks
CN105   orphan task (disconnected from an otherwise wired job)
CN201   task has no archive (jar) reference
CN202   task has no entry class
CN203   memory requirement not a positive integer
CN204   unknown runmodel
CN205   retries not a non-negative integer
CN206   parameter value does not parse as its declared type
CN207   client port out of range
CN208   client has empty class name
CN209   unrecognized parameter type (warning; treated as String)
CN210   broken ptype/pvalue tagged-value pairing
CN301   dynamic task lacks a multiplicity
CN302   static task carries dynamic attributes
CN303   malformed multiplicity specification
CN304   impossible multiplicity bounds (lower > upper)
CN305   dynamic argument expression is not valid Python syntax
CN401   splitter fan-out / joiner fan-in mismatch (warning)
CN501   declared message is never received (warning)
CN502   task waits for a message that is never sent
CN503   message endpoint references an unknown task
CN504   message deadlock: cyclic wait among tasks
CN505   task waits for a message from a downstream task
CN601   more tasks than the cluster's TaskManagers can host
CN602   aggregate memory demand exceeds cluster capacity
CN603   single task exceeds every TaskManager's memory
CN701   duplicate job name
CN702   job ordered after an unknown job
CN703   job ordered after itself
CN704   cyclic job ordering
CN705   unnamed job carries an ``after`` ordering
CN801   archive/class reference unresolvable against the task registry
======  ====================================================================

Messages keep the historical :mod:`repro.core.cnx.validate` phrasing so
that module's ``collect_problems`` can delegate here verbatim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from .diagnostics import Diagnostic, Report, Severity, SourceLocation
from .ir import (
    ANY,
    ClusterSpec,
    Composition,
    JobGraph,
    TaskNode,
    from_cnx,
    from_model,
    from_xmi,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cnx.schema import CnxDocument
    from repro.core.uml.model import Model

__all__ = [
    "CODES",
    "AnalysisContext",
    "AnalysisPass",
    "default_passes",
    "analyze",
    "analyze_cnx",
    "analyze_model",
    "analyze_source",
    "parse_multiplicity",
]

#: code -> one-line description (the table above, machine-readable)
CODES: dict[str, str] = {
    "CN001": "UML activity graph not well-formed",
    "CN101": "duplicate task name within a job",
    "CN102": "depends references an unknown task",
    "CN103": "task depends on itself (Fig. 2 erratum)",
    "CN104": "dependency cycle among tasks",
    "CN105": "orphan task disconnected from the job",
    "CN201": "task has no archive (jar) reference",
    "CN202": "task has no entry class",
    "CN203": "memory requirement not a positive integer",
    "CN204": "unknown runmodel",
    "CN205": "retries not a non-negative integer",
    "CN206": "parameter value does not parse as its declared type",
    "CN207": "client port out of range",
    "CN208": "client has empty class name",
    "CN209": "unrecognized parameter type",
    "CN210": "broken ptype/pvalue tagged-value pairing",
    "CN301": "dynamic task lacks a multiplicity",
    "CN302": "static task carries dynamic attributes",
    "CN303": "malformed multiplicity specification",
    "CN304": "impossible multiplicity bounds",
    "CN305": "dynamic argument expression is not valid Python",
    "CN401": "splitter fan-out / joiner fan-in mismatch",
    "CN501": "declared message is never received",
    "CN502": "task waits for a message that is never sent",
    "CN503": "message endpoint references an unknown task",
    "CN504": "message deadlock: cyclic wait among tasks",
    "CN505": "task waits for a message from a downstream task",
    "CN601": "more tasks than the cluster's TaskManagers can host",
    "CN602": "aggregate memory demand exceeds cluster capacity",
    "CN603": "single task exceeds every TaskManager's memory",
    "CN701": "duplicate job name",
    "CN702": "job ordered after an unknown job",
    "CN703": "job ordered after itself",
    "CN704": "cyclic job ordering",
    "CN705": "unnamed job carries an 'after' ordering",
    "CN801": "archive/class reference unresolvable against the registry",
}


@dataclass
class AnalysisContext:
    """Optional environment the context-sensitive passes check against.

    ``cluster`` enables the placement-feasibility pass; ``task_resolver``
    (e.g. a bound :meth:`repro.cn.registry.TaskRegistry.resolve` wrapped
    to return a bool) enables the archive-reference pass."""

    cluster: Optional[ClusterSpec] = None
    task_resolver: Optional[Callable[[str, str], bool]] = None


class AnalysisPass:
    """Base class: one focused battery of checks over the IR."""

    name: str = "base"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        code: str,
        severity: Severity,
        message: str,
        location: SourceLocation,
        hint: str = "",
    ) -> Diagnostic:
        return Diagnostic(code, severity, message, location, hint, self.name)

    def error(self, code: str, message: str, location: SourceLocation, hint: str = "") -> Diagnostic:
        return self.diag(code, Severity.ERROR, message, location, hint)

    def warning(self, code: str, message: str, location: SourceLocation, hint: str = "") -> Diagnostic:
        return self.diag(code, Severity.WARNING, message, location, hint)


# ---------------------------------------------------------------------------
# CN1xx -- dependency-graph structure
# ---------------------------------------------------------------------------

class StructurePass(AnalysisPass):
    """Duplicate ids, dangling/self dependencies, cycles, orphans."""

    name = "structure"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for job in comp.jobs:
            label = job.label
            names = job.task_names()
            seen: set[str] = set()
            for task in job.tasks:
                if task.name in seen:
                    yield self.error(
                        "CN101",
                        f"{label}: duplicate task name {task.name!r}",
                        task.location,
                        "rename one of the tasks; task names identify DAG nodes",
                    )
                seen.add(task.name)
            known = set(names)
            for task in job.tasks:
                for dep in task.depends:
                    if dep == task.name:
                        yield self.error(
                            "CN103",
                            f"{label}: task {task.name!r} depends on itself",
                            task.location,
                            self._self_dep_hint(job, task),
                        )
                    elif dep not in known:
                        yield self.error(
                            "CN102",
                            f"{label}: task {task.name!r} depends on unknown task {dep!r}",
                            task.location,
                            f"declare a task named {dep!r} or fix the reference",
                        )
            cycle_task = job.cycle_member() if self._cycle_checkable(job) else None
            if cycle_task is not None:
                yield self.error(
                    "CN104",
                    f"{label}: dependency cycle through task {cycle_task!r}",
                    job.location,
                    "a CN job is a DAG; break the cycle so every task can start",
                )
            yield from self._orphans(job)

    @staticmethod
    def _cycle_checkable(job: JobGraph) -> bool:
        """Cycle detection over resolvable, non-self edges only (self and
        dangling edges already have their own diagnostics)."""
        known = {t.name for t in job.tasks}
        for task in job.tasks:
            task.depends = list(task.depends)  # defensive copy semantics
        return all(
            dep in known and dep != task.name
            for task in job.tasks
            for dep in task.depends
        )

    @staticmethod
    def _self_dep_hint(job: JobGraph, task: TaskNode) -> str:
        """Suggest the dependency the task's siblings use (the Fig. 2
        erratum: the paper lists tctask1 depends="tctask1" where every
        sibling worker depends on tctask0)."""
        sibling_deps = {
            dep
            for sibling in job.tasks
            if sibling.name != task.name
            and (sibling.jar, sibling.cls) == (task.jar, task.cls)
            for dep in sibling.depends
            if dep != sibling.name
        }
        if len(sibling_deps) == 1:
            intended = next(iter(sibling_deps))
            return (
                f'likely meant depends="{intended}" (the paper\'s Fig. 2 listing '
                "contains exactly this typo for tctask1)"
            )
        return "a task cannot wait for its own completion"

    def _orphans(self, job: JobGraph) -> Iterator[Diagnostic]:
        if len(job.tasks) < 2 or not any(t.depends for t in job.tasks):
            return  # single-task jobs and fully-independent batches are fine
        dependents = job.dependents()
        for task in job.tasks:
            if not task.depends and not dependents.get(task.name):
                yield self.error(
                    "CN105",
                    f"{job.label}: orphan task {task.name!r} is disconnected "
                    "from the rest of the job",
                    task.location,
                    "wire it into the DAG with depends= or remove it",
                )


# ---------------------------------------------------------------------------
# CN2xx -- configuration / tagged-value schema
# ---------------------------------------------------------------------------

_INT_TYPES = ("Integer", "int", "java.lang.Integer", "Long", "java.lang.Long")
_FLOAT_TYPES = ("Double", "Float", "java.lang.Double")
_BOOL_TYPES = ("Boolean", "java.lang.Boolean")
_STRING_TYPES = ("String", "java.lang.String")
_KNOWN_PARAM_TYPES = _INT_TYPES + _FLOAT_TYPES + _BOOL_TYPES + _STRING_TYPES


class ConfigPass(AnalysisPass):
    """Client attributes, task-req values, parameter typing."""

    name = "config"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        from repro.core.uml.tags import CNProfile

        if not comp.client_cls:
            yield self.error(
                "CN208", "client has empty class name", comp.location,
                "set the client class attribute",
            )
        if not (0 < comp.port < 65536):
            yield self.error(
                "CN207",
                f"client port {comp.port} out of range",
                comp.location,
                "ports are 1..65535",
            )
        for job in comp.jobs:
            label = job.label
            for task in job.tasks:
                loc = task.location
                if not task.jar:
                    yield self.error(
                        "CN201",
                        f"{label}: task {task.name!r} has no archive (jar) reference",
                        loc,
                        "every task names the archive that packages its class",
                    )
                if not task.cls:
                    yield self.error(
                        "CN202",
                        f"{label}: task {task.name!r} has no entry class",
                        loc,
                        "name the Task-interface class inside the archive",
                    )
                memory = task.memory
                if memory is None:
                    yield self.error(
                        "CN203",
                        f"{label}: task {task.name!r} has non-integer memory "
                        f"{task.memory_raw!r}",
                        loc,
                    )
                elif memory <= 0:
                    yield self.error(
                        "CN203",
                        f"{label}: task {task.name!r} has non-positive memory {memory}",
                        loc,
                    )
                retries = task.retries
                if retries is None:
                    yield self.error(
                        "CN205",
                        f"{label}: task {task.name!r} has non-integer retries "
                        f"{task.retries_raw!r}",
                        loc,
                    )
                elif retries < 0:
                    yield self.error(
                        "CN205",
                        f"{label}: task {task.name!r} has negative retries {retries}",
                        loc,
                    )
                if task.runmodel not in CNProfile.KNOWN_RUNMODELS:
                    yield self.error(
                        "CN204",
                        f"{label}: task {task.name!r} has unknown runmodel "
                        f"{task.runmodel!r}",
                        loc,
                        f"known: {', '.join(CNProfile.KNOWN_RUNMODELS)}",
                    )
                if task.param_problem:
                    yield self.error(
                        "CN210",
                        f"{label}: task {task.name!r}: {task.param_problem}",
                        loc,
                    )
                yield from self._check_params(label, task)

    def _check_params(self, label: str, task: TaskNode) -> Iterator[Diagnostic]:
        for i, (ptype, value) in enumerate(task.params):
            if ptype not in _KNOWN_PARAM_TYPES:
                yield self.warning(
                    "CN209",
                    f"{label}: task {task.name!r} param {i} has unrecognized "
                    f"type {ptype!r} (treated as String)",
                    task.location,
                    f"known types: {', '.join(sorted(set(_KNOWN_PARAM_TYPES)))}",
                )
                continue
            problem = _param_type_problem(ptype, value)
            if problem:
                yield self.error(
                    "CN206",
                    f"{label}: task {task.name!r} param {i} value {value!r} "
                    f"{problem} {ptype}",
                    task.location,
                    "the generated client coerces params at start-up; "
                    "this one would crash or silently change value",
                )


def _param_type_problem(ptype: str, value: str) -> str:
    """Why *value* does not parse as *ptype* ('' when it does)."""
    if ptype in _INT_TYPES:
        try:
            int(value)
        except ValueError:
            return "is not a valid"
    elif ptype in _FLOAT_TYPES:
        try:
            float(value)
        except ValueError:
            return "is not a valid"
    elif ptype in _BOOL_TYPES:
        if value.strip().lower() not in ("true", "false"):
            return "is not a valid"
    return ""


# ---------------------------------------------------------------------------
# CN3xx -- dynamic invocation
# ---------------------------------------------------------------------------

_MULT_RE = re.compile(r"^(\*|\d+|\d+\.\.(\d+|\*))$")


def parse_multiplicity(spec: str) -> Optional[tuple[int, Optional[int]]]:
    """``(low, high)`` bounds of a multiplicity spec (high=None means
    unbounded); None when the spec is malformed."""
    spec = spec.strip()
    if not spec or spec == "*":
        return (0, None)
    if not _MULT_RE.match(spec):
        return None
    if ".." in spec:
        low_text, _, high_text = spec.partition("..")
        return (int(low_text), None if high_text == "*" else int(high_text))
    return (int(spec), int(spec))


class DynamicsPass(AnalysisPass):
    """Multiplicity presence, syntax, bounds; argument expressions."""

    name = "dynamics"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for job in comp.jobs:
            label = job.label
            for task in job.tasks:
                if task.dynamic and not task.multiplicity:
                    yield self.error(
                        "CN301",
                        f"{label}: dynamic task {task.name!r} lacks multiplicity",
                        task.location,
                        'declare a range such as "0..*" (paper Fig. 5)',
                    )
                if not task.dynamic and (task.multiplicity or task.arguments):
                    yield self.error(
                        "CN302",
                        f"{label}: task {task.name!r} has dynamic attributes but "
                        "is not marked dynamic",
                        task.location,
                        'set dynamic="true" or drop multiplicity/arguments',
                    )
                if task.multiplicity:
                    bounds = parse_multiplicity(task.multiplicity)
                    if bounds is None:
                        yield self.error(
                            "CN303",
                            f"{label}: task {task.name!r} has malformed "
                            f"multiplicity {task.multiplicity!r}",
                            task.location,
                            'use "n", "n..m", "n..*" or "*"',
                        )
                    elif bounds[1] is not None and bounds[0] > bounds[1]:
                        yield self.error(
                            "CN304",
                            f"{label}: task {task.name!r} multiplicity "
                            f"{task.multiplicity!r} has lower bound above upper bound",
                            task.location,
                        )
                if task.dynamic and task.arguments:
                    try:
                        compile(task.arguments, "<arguments>", "eval")
                    except SyntaxError as exc:
                        yield self.error(
                            "CN305",
                            f"{label}: dynamic task {task.name!r} argument "
                            f"expression {task.arguments!r} is not valid Python: "
                            f"{exc.msg}",
                            task.location,
                            "the expression is evaluated at run time to yield "
                            "one argument list per invocation",
                        )


# ---------------------------------------------------------------------------
# CN4xx -- concurrency shape
# ---------------------------------------------------------------------------

class FanShapePass(AnalysisPass):
    """Splitter fan-out vs joiner fan-in (warning: a branch that bypasses
    the join is usually a forgotten transition, not a design)."""

    name = "fan-shape"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for job in comp.jobs:
            dependents = job.dependents()
            for joiner in job.tasks:
                branch_names = [d for d in joiner.depends if job.find(d)]
                if len(branch_names) < 2:
                    continue
                branches = [job.find(d) for d in branch_names]
                splitters = {
                    tuple(b.depends) for b in branches if b is not None
                }
                if len(splitters) != 1:
                    continue
                common = next(iter(splitters))
                if len(common) != 1:
                    continue
                splitter = common[0]
                fan_out = [
                    d for d in dependents.get(splitter, []) if d != joiner.name
                ]
                missing = sorted(set(fan_out) - set(branch_names))
                if missing:
                    yield self.warning(
                        "CN401",
                        f"{job.label}: joiner {joiner.name!r} joins "
                        f"{len(branch_names)} of splitter {splitter!r}'s "
                        f"{len(fan_out)} branches (missing: {', '.join(missing)})",
                        joiner.location,
                        "either add the missing branches to depends= or they "
                        "will run outside the fan-in barrier",
                    )


# ---------------------------------------------------------------------------
# CN5xx -- message-flow deadlock
# ---------------------------------------------------------------------------

class MessageFlowPass(AnalysisPass):
    """Pairs declared ``sends``/``receives`` endpoints across tasks.

    Declarations are a protocol contract: ``receives="a"`` means the task
    blocks for a message from ``a`` before finishing, ``sends="b"`` means
    it delivers one to ``b`` while running.  The pass flags endpoints
    naming unknown tasks (CN503), receives with no matching send (CN502,
    a guaranteed hang), sends with no matching receive (CN501, a dropped
    message -- warning), cyclic waits (CN504, the classic
    receive-before-send deadlock) and receives from a task that only
    starts after the receiver completes (CN505)."""

    name = "message-flow"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for job in comp.jobs:
            if not any(t.sends or t.receives for t in job.tasks):
                continue
            yield from self._check_job(job)

    def _check_job(self, job: JobGraph) -> Iterator[Diagnostic]:
        label = job.label
        known = {t.name for t in job.tasks}
        by_name = {t.name: t for t in job.tasks}

        # CN503: endpoints must exist
        for task in job.tasks:
            for kind, endpoints in (("sends", task.sends), ("receives", task.receives)):
                for endpoint in endpoints:
                    if endpoint in (ANY, "client"):
                        continue
                    if endpoint not in known:
                        yield self.error(
                            "CN503",
                            f"{label}: task {task.name!r} {kind} messages "
                            f"{'to' if kind == 'sends' else 'from'} unknown "
                            f"task {endpoint!r}",
                            task.location,
                        )

        # CN502 / CN501: every declared receive needs a matching send and
        # vice versa (wildcards match anything)
        for task in job.tasks:
            for src in task.receives:
                if src in (ANY, "client") or src not in known:
                    continue
                sender = by_name[src]
                if task.name not in sender.sends and ANY not in sender.sends:
                    yield self.error(
                        "CN502",
                        f"{label}: task {task.name!r} waits for a message from "
                        f"{src!r} that is never sent",
                        task.location,
                        f"declare sends=\"{task.name}\" on {src!r} or drop the "
                        "receive; an unmatched receive hangs the task thread",
                    )
            for dst in task.sends:
                if dst in (ANY, "client") or dst not in known:
                    continue
                receiver = by_name[dst]
                if (
                    receiver.receives
                    and task.name not in receiver.receives
                    and ANY not in receiver.receives
                ):
                    yield self.warning(
                        "CN501",
                        f"{label}: message from {task.name!r} to {dst!r} is "
                        f"never received ({dst!r} receives only from "
                        f"{', '.join(repr(r) for r in receiver.receives)})",
                        task.location,
                    )

        # CN504: cyclic wait.  Edge T -> S when T blocks on a message
        # from S; S's own sends happen only after S's receives complete.
        waits = {
            t.name: [s for s in t.receives if s in known and s != t.name]
            for t in job.tasks
        }
        cycle = _find_cycle(waits)
        if cycle:
            yield self.error(
                "CN504",
                f"{label}: message deadlock: cyclic wait among "
                f"{' -> '.join(cycle + [cycle[0]])}",
                by_name[cycle[0]].location,
                "every task in the cycle blocks on a receive before its own "
                "send; reorder the protocol or drop one receive",
            )

        # CN505: receive from a task that cannot start until the receiver
        # completes (the dependency relation already orders them).
        downstream = _transitive_dependents(job)
        for task in job.tasks:
            for src in task.receives:
                if src in known and src in downstream.get(task.name, set()):
                    yield self.error(
                        "CN505",
                        f"{label}: task {task.name!r} waits for a message from "
                        f"{src!r}, but {src!r} only starts after {task.name!r} "
                        "completes",
                        task.location,
                        "dependency-driven starts make this receive unreachable",
                    )


def _find_cycle(edges: dict[str, list[str]]) -> list[str]:
    """Some cycle in the directed graph *edges* (name -> successors), as
    an ordered node list; empty when acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in edges}
    stack: list[str] = []

    def visit(name: str) -> Optional[list[str]]:
        color[name] = GREY
        stack.append(name)
        for succ in edges.get(name, ()):
            if color.get(succ, BLACK) == GREY:
                return stack[stack.index(succ):]
            if color.get(succ, BLACK) == WHITE:
                found = visit(succ)
                if found:
                    return found
        stack.pop()
        color[name] = BLACK
        return None

    for name in edges:
        if color[name] == WHITE:
            found = visit(name)
            if found:
                return found
    return []


def _transitive_dependents(job: JobGraph) -> dict[str, set[str]]:
    """Map task -> every task that (transitively) depends on it."""
    direct = job.dependents()
    result: dict[str, set[str]] = {}

    def expand(name: str) -> set[str]:
        if name in result:
            return result[name]
        result[name] = set()  # cycle guard; CN104 reports real cycles
        closure: set[str] = set()
        for dep in direct.get(name, ()):
            closure.add(dep)
            closure.update(expand(dep))
        result[name] = closure
        return closure

    for task in job.tasks:
        expand(task.name)
    return result


# ---------------------------------------------------------------------------
# CN6xx -- placement feasibility
# ---------------------------------------------------------------------------

class PlacementPass(AnalysisPass):
    """Checks the composition against a cluster spec: CN places every
    task of a job up-front, so the whole job must fit the willing
    TaskManagers.  Dynamic tasks count with their guaranteed lower
    bound.  Runs only when the context supplies a cluster."""

    name = "placement"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        spec = ctx.cluster
        if spec is None:
            return
        for job in comp.jobs:
            label = job.label
            count = 0
            demand = 0
            for task in job.tasks:
                instances = 1
                if task.dynamic:
                    bounds = parse_multiplicity(task.multiplicity)
                    instances = bounds[0] if bounds else 0
                count += instances
                memory = task.memory
                if memory is None or memory <= 0:
                    continue  # CN203's problem
                demand += instances * memory
                if memory > spec.memory_per_node:
                    yield self.error(
                        "CN603",
                        f"{label}: task {task.name!r} needs {memory} memory but "
                        f"no TaskManager offers more than {spec.memory_per_node}",
                        task.location,
                        "no solicitation can succeed; shrink the task or grow "
                        "the nodes",
                    )
            if count > spec.total_slots:
                yield self.error(
                    "CN601",
                    f"{label}: {count} tasks exceed the cluster's "
                    f"{spec.total_slots} task slots ({spec.nodes} TaskManager(s) "
                    f"x {spec.slots_per_node})",
                    job.location,
                    "CN places a whole job before starting it",
                )
            if demand > spec.total_memory:
                yield self.error(
                    "CN602",
                    f"{label}: tasks demand {demand} memory but the cluster "
                    f"offers {spec.total_memory}",
                    job.location,
                )


# ---------------------------------------------------------------------------
# CN7xx -- client-level job ordering
# ---------------------------------------------------------------------------

class OrderingPass(AnalysisPass):
    """The client-level partial order over jobs (paper section 4)."""

    name = "ordering"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        problems = False
        names = [j.name for j in comp.jobs if j.name]
        for dup in sorted({n for n in names if names.count(n) > 1}):
            problems = True
            yield self.error(
                "CN701", f"duplicate job name {dup!r}", comp.location
            )
        known = set(names)
        for job in comp.jobs:
            for prerequisite in job.after:
                if prerequisite not in known:
                    problems = True
                    yield self.error(
                        "CN702",
                        f"job {job.name or '<unnamed>'} is after unknown job "
                        f"{prerequisite!r}",
                        job.location,
                    )
                if job.name and prerequisite == job.name:
                    problems = True
                    yield self.error(
                        "CN703", f"job {job.name!r} is after itself", job.location
                    )
            if job.after and not job.name:
                problems = True
                yield self.error(
                    "CN705",
                    "a job with 'after' ordering must be named",
                    job.location,
                )
        if not problems and any(j.after for j in comp.jobs):
            remaining = {j.name: set(j.after) for j in comp.jobs if j.name}
            while remaining:
                ready = [n for n, deps in remaining.items() if not deps]
                if not ready:
                    yield self.error(
                        "CN704",
                        f"cyclic job ordering among {sorted(remaining)}",
                        comp.location,
                        "the partial order must be acyclic for batches to form",
                    )
                    break
                for name in ready:
                    del remaining[name]
                for deps in remaining.values():
                    deps.difference_update(ready)


# ---------------------------------------------------------------------------
# CN8xx -- archive references
# ---------------------------------------------------------------------------

class ArchivePass(AnalysisPass):
    """Resolve every (jar, class) reference against the task registry.
    Runs only when the context supplies a resolver."""

    name = "archive"

    def run(self, comp: Composition, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        resolver = ctx.task_resolver
        if resolver is None:
            return
        for job in comp.jobs:
            for task in job.tasks:
                if not task.jar or not task.cls:
                    continue  # CN201/CN202 already flag these
                try:
                    resolvable = bool(resolver(task.jar, task.cls))
                except Exception:  # noqa: BLE001  # conclint: waive CC302 -- resolver probes arbitrary archive code; any failure means unresolvable
                    resolvable = False
                if not resolvable:
                    yield self.error(
                        "CN801",
                        f"{job.label}: task {task.name!r} references archive "
                        f"{task.jar!r} class {task.cls!r} which the registry "
                        "cannot resolve",
                        task.location,
                        "register the archive/class or fix the reference; "
                        "upload would fail at placement time",
                    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def default_passes() -> tuple[AnalysisPass, ...]:
    """The standard battery, in report order."""
    return (
        StructurePass(),
        ConfigPass(),
        DynamicsPass(),
        FanShapePass(),
        MessageFlowPass(),
        OrderingPass(),
        PlacementPass(),
        ArchivePass(),
    )


def analyze(
    comp: Composition,
    context: Optional[AnalysisContext] = None,
    passes: Optional[Iterable[AnalysisPass]] = None,
) -> Report:
    """Run *passes* (default: the full battery) over the IR."""
    ctx = context or AnalysisContext()
    report = Report()
    for analysis_pass in passes if passes is not None else default_passes():
        report.extend(analysis_pass.run(comp, ctx))
    return report


def analyze_cnx(
    doc: "CnxDocument", context: Optional[AnalysisContext] = None
) -> Report:
    """Analyze a parsed CNX document."""
    return analyze(from_cnx(doc), context)


def analyze_model(
    model: "Model", context: Optional[AnalysisContext] = None
) -> Report:
    """Analyze a UML model: graph well-formedness (CN001) first, then the
    common IR battery."""
    from repro.core.uml.validate import collect_problems as graph_problems

    report = Report()
    for package in model.packages:
        for graph in package.graphs:
            for problem in graph_problems(graph):
                report.extend(
                    [
                        Diagnostic(
                            "CN001",
                            Severity.ERROR,
                            f"{graph.name}: {problem}",
                            SourceLocation(
                                "model",
                                f"UML:ActivityGraph[@name={graph.name!r}]",
                            ),
                            pass_name="model",
                        )
                    ]
                )
    report.extend(analyze(from_model(model), context))
    return report


def analyze_source(text: str, context: Optional[AnalysisContext] = None) -> Report:
    """Analyze raw XML text, sniffing XMI vs CNX by the root element.

    Raises :class:`ValueError` subclasses on documents that do not parse
    at all (callers turn those into CN000-style failures)."""
    import xml.etree.ElementTree as ET

    from repro.core.cnx.parser import parse as parse_cnx_text
    from repro.core.xmi.reader import read_model
    from repro.util.xmlutil import parse_prefixed

    try:
        root = parse_prefixed(text)
    except ET.ParseError as exc:  # ParseError subclasses SyntaxError
        raise ValueError(f"not well-formed XML: {exc}") from exc
    if root.tag == "XMI":
        return analyze_model(read_model(root), context)
    if root.tag == "cn2":
        return analyze_cnx(parse_cnx_text(text), context)
    raise ValueError(
        f"unrecognized document root <{root.tag}> (expected <XMI> or <cn2>)"
    )
