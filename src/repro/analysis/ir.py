"""The JobGraph IR: one task-graph vocabulary for all three representations.

The pipeline carries a composition through three concrete forms -- the
UML activity model, its XMI export, and the CNX descriptor.  Analysis
passes should not care which one they were handed, so this module
extracts a common IR:

* :class:`TaskNode` -- one task with its dependency edges, resource
  configuration (kept both raw, for type diagnostics, and parsed),
  dynamic-invocation attributes and declared message endpoints,
* :class:`JobGraph` -- one job: a named DAG of task nodes plus the
  client-level ``after`` ordering,
* :class:`Composition` -- the whole client (class, port, jobs).

Every node remembers a :class:`~repro.analysis.diagnostics.SourceLocation`
into the document it came from, so diagnostics point at the originating
XMI/CNX element rather than at the IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .diagnostics import SourceLocation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cnx.schema import CnxDocument
    from repro.core.uml.activity import ActivityGraph
    from repro.core.uml.model import Model

__all__ = [
    "TaskNode",
    "JobGraph",
    "Composition",
    "ClusterSpec",
    "from_cnx",
    "from_graph",
    "from_model",
    "from_xmi",
    "split_names",
]

#: wildcard endpoint in ``sends``/``receives`` declarations (broadcast /
#: receive-from-anyone)
ANY = "*"


def split_names(text: str) -> list[str]:
    """A comma-separated name list attribute/tag, stripped and filtered."""
    return [part.strip() for part in text.split(",") if part.strip()]


@dataclass
class TaskNode:
    """One task of a job, representation-independent."""

    name: str
    jar: str = ""
    cls: str = ""
    depends: list[str] = field(default_factory=list)
    # resource configuration: raw strings (as written in the source
    # document) plus the parsed value when the raw form is well-typed
    memory_raw: str = "1000"
    runmodel: str = "RUN_AS_THREAD_IN_TM"
    retries_raw: str = "0"
    params: list[tuple[str, str]] = field(default_factory=list)
    param_problem: str = ""  # extraction-time ptype/pvalue pairing error
    # dynamic invocation (paper Fig. 5)
    dynamic: bool = False
    multiplicity: str = ""
    arguments: str = ""
    # declared message endpoints (CNX/tag extension; see MessageFlowPass)
    sends: list[str] = field(default_factory=list)
    receives: list[str] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def memory(self) -> Optional[int]:
        """Parsed memory requirement, or None when not an integer."""
        try:
            return int(self.memory_raw.strip())
        except (ValueError, AttributeError):
            return None

    @property
    def retries(self) -> Optional[int]:
        try:
            return int(self.retries_raw.strip())
        except (ValueError, AttributeError):
            return None


@dataclass
class JobGraph:
    """One job: a DAG of task nodes (the IR every pass walks)."""

    tasks: list[TaskNode] = field(default_factory=list)
    name: str = ""
    after: list[str] = field(default_factory=list)
    index: int = 0  # position within the composition
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def label(self) -> str:
        """Human label matching the historical validator (`job[i]` for
        anonymous jobs)."""
        return self.name or f"job[{self.index}]"

    def task_names(self) -> list[str]:
        return [t.name for t in self.tasks]

    def find(self, name: str) -> Optional[TaskNode]:
        for task in self.tasks:
            if task.name == name:
                return task
        return None

    def dependents(self) -> dict[str, list[str]]:
        """Map task name -> names of tasks that depend on it."""
        result: dict[str, list[str]] = {t.name: [] for t in self.tasks}
        for task in self.tasks:
            for dep in task.depends:
                if dep in result:
                    result[dep].append(task.name)
        return result

    def topological_order(self) -> Optional[list[str]]:
        """Task names in dependency order, or None when the dependency
        relation (restricted to resolvable edges) contains a cycle."""
        names = {t.name for t in self.tasks}
        deps = {t.name: [d for d in t.depends if d in names] for t in self.tasks}
        order: list[str] = []
        done: set[str] = set()
        visiting: set[str] = set()

        def visit(name: str) -> bool:
            if name in done:
                return True
            if name in visiting:
                return False
            visiting.add(name)
            for dep in deps.get(name, ()):
                if not visit(dep):
                    return False
            visiting.discard(name)
            done.add(name)
            order.append(name)
            return True

        for task in self.tasks:
            if not visit(task.name):
                return None
        return order

    def cycle_member(self) -> Optional[str]:
        """The name of some task on a dependency cycle, or None."""
        names = {t.name for t in self.tasks}
        deps = {t.name: [d for d in t.depends if d in names] for t in self.tasks}
        done: set[str] = set()
        visiting: set[str] = set()

        def visit(name: str) -> Optional[str]:
            if name in done:
                return None
            if name in visiting:
                return name
            visiting.add(name)
            for dep in deps.get(name, ()):
                hit = visit(dep)
                if hit is not None:
                    return hit
            visiting.discard(name)
            done.add(name)
            return None

        for task in self.tasks:
            hit = visit(task.name)
            if hit is not None:
                return hit
        return None


@dataclass
class Composition:
    """The whole client composition: what a descriptor describes."""

    client_cls: str = ""
    port: int = 5666
    log: str = ""
    jobs: list[JobGraph] = field(default_factory=list)
    source: str = ""  # "cnx" | "xmi" | "model"
    location: SourceLocation = field(default_factory=SourceLocation)

    def all_tasks(self) -> list[TaskNode]:
        return [t for job in self.jobs for t in job.tasks]


@dataclass(frozen=True)
class ClusterSpec:
    """The deployment target the placement pass checks feasibility
    against (mirrors :class:`repro.cn.cluster.Cluster` defaults)."""

    nodes: int = 4
    memory_per_node: int = 8000
    slots_per_node: int = 64

    @property
    def total_memory(self) -> int:
        return self.nodes * self.memory_per_node

    @property
    def total_slots(self) -> int:
        return self.nodes * self.slots_per_node


# ---------------------------------------------------------------------------
# Extraction: CNX descriptor -> IR
# ---------------------------------------------------------------------------

def from_cnx(doc: "CnxDocument") -> Composition:
    """Extract the IR from a parsed CNX document."""
    comp = Composition(
        client_cls=doc.client.cls,
        port=doc.client.port,
        log=doc.client.log,
        source="cnx",
        location=SourceLocation("cnx", "client"),
    )
    for j, job in enumerate(doc.client.jobs):
        job_path = f"client/job[{j + 1}]"
        graph = JobGraph(
            name=job.name,
            after=list(job.after),
            index=j,
            location=SourceLocation("cnx", job_path),
        )
        for task in job.tasks:
            graph.tasks.append(
                TaskNode(
                    name=task.name,
                    jar=task.jar,
                    cls=task.cls,
                    depends=list(task.depends),
                    memory_raw=str(task.task_req.memory),
                    runmodel=task.task_req.runmodel,
                    retries_raw=str(task.task_req.retries),
                    params=[(p.type, p.value) for p in task.params],
                    dynamic=task.dynamic,
                    multiplicity=task.multiplicity,
                    arguments=task.arguments,
                    sends=list(task.sends),
                    receives=list(task.receives),
                    location=SourceLocation(
                        "cnx", f"{job_path}/task[@name={task.name!r}]"
                    ),
                )
            )
        comp.jobs.append(graph)
    return comp


# ---------------------------------------------------------------------------
# Extraction: UML activity model -> IR
# ---------------------------------------------------------------------------

def _node_from_action(action, deps: dict[str, list[str]], path: str, source: str) -> TaskNode:
    from repro.core.uml.tags import CNProfile

    params: list[tuple[str, str]] = []
    param_problem = ""
    try:
        params = CNProfile.params(action)
    except ValueError as exc:
        param_problem = str(exc)
    return TaskNode(
        name=action.name,
        jar=action.get_tag("jar", "") or "",
        cls=action.get_tag("class", "") or "",
        depends=list(deps.get(action.name, [])),
        memory_raw=action.get_tag("memory", "1000") or "1000",
        runmodel=action.get_tag("runmodel", "RUN_AS_THREAD_IN_TM")
        or "RUN_AS_THREAD_IN_TM",
        retries_raw=action.get_tag("retries", "0") or "0",
        params=params,
        param_problem=param_problem,
        dynamic=action.is_dynamic,
        multiplicity=action.dynamic_multiplicity if action.is_dynamic else "",
        arguments=action.dynamic_arguments if action.is_dynamic else "",
        sends=split_names(action.get_tag("sends", "") or ""),
        receives=split_names(action.get_tag("receives", "") or ""),
        location=SourceLocation(source, path),
    )


def from_graph(graph: "ActivityGraph", *, source: str = "model") -> Composition:
    """Extract the IR from a single activity graph (one-job client)."""
    comp = Composition(
        client_cls=graph.name,
        source=source,
        location=SourceLocation(source, f"ActivityGraph[@name={graph.name!r}]"),
    )
    comp.jobs.append(_job_from_graph(graph, 0, source))
    return comp


def _job_from_graph(graph: "ActivityGraph", index: int, source: str) -> JobGraph:
    deps = graph.action_dependencies()
    graph_path = f"UML:ActivityGraph[@name={graph.name!r}]"
    job = JobGraph(
        index=index,
        location=SourceLocation(source, graph_path),
    )
    for action in graph.action_states():
        path = f"{graph_path}/UML:ActionState[@name={action.name!r}]"
        job.tasks.append(_node_from_action(action, deps, path, source))
    return job


def from_model(model: "Model", *, source: str = "model") -> Composition:
    """Extract the IR from a whole UML model (multi-job client; job
    ordering comes from the packages' ``job_order`` relations)."""
    graphs = [g for p in model.packages for g in p.graphs]
    comp = Composition(
        client_cls=graphs[0].name if graphs else model.name,
        source=source,
        location=SourceLocation(source, f"UML:Model[@name={model.name!r}]"),
    )
    ordered: set[str] = set()
    after_map: dict[str, list[str]] = {}
    for package in model.packages:
        for before, after in package.job_order:
            ordered.update((before, after))
            after_map.setdefault(after, []).append(before)
    for i, graph in enumerate(graphs):
        job = _job_from_graph(graph, i, source)
        if graph.name in ordered:
            job.name = graph.name
            job.after = list(after_map.get(graph.name, []))
        comp.jobs.append(job)
    return comp


def from_xmi(xmi_text: str) -> Composition:
    """Extract the IR from an XMI document (via the XMI reader)."""
    from repro.core.xmi.reader import read_model

    return from_model(read_model(xmi_text), source="xmi")
