"""``python -m repro.analysis`` -- the analysis command line.

Default mode is **cnlint**: the full pass battery over one or more
XMI/CNX documents, printed as a per-file report.  ``python -m
repro.analysis conc ...`` dispatches to **conclint**, the concurrency
correctness passes over Python source (see
:mod:`repro.analysis.conc.cli`).  Both share the exit-status scheme:
0 when clean of error-severity findings, 1 when any file has errors (or
warnings under ``--werror``), 2 when a file cannot be read or parsed at
all.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .diagnostics import Diagnostic, Severity, SourceLocation
from .ir import ClusterSpec
from .passes import CODES, AnalysisContext, analyze_source

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="cnlint: static analysis of CN job compositions "
        "(UML/XMI models and CNX descriptors)",
    )
    parser.add_argument("files", nargs="*", help="XMI or CNX documents to analyze")
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from the report"
    )
    parser.add_argument(
        "--cluster",
        metavar="NODES[:MEMORY[:SLOTS]]",
        help="enable the placement-feasibility pass against this cluster "
        "spec (per-node memory and task slots; defaults 8000 and 64)",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="list every diagnostic code and exit",
    )
    return parser


def _parse_cluster(spec: str) -> ClusterSpec:
    parts = spec.split(":")
    if not 1 <= len(parts) <= 3:
        raise ValueError(f"bad cluster spec {spec!r}")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"bad cluster spec {spec!r}") from None
    defaults = ClusterSpec()
    return ClusterSpec(
        nodes=numbers[0],
        memory_per_node=numbers[1] if len(numbers) > 1 else defaults.memory_per_node,
        slots_per_node=numbers[2] if len(numbers) > 2 else defaults.slots_per_node,
    )


def _parse_failure(path: str, exc: Exception) -> Diagnostic:
    return Diagnostic(
        "CN000",
        Severity.ERROR,
        f"cannot analyze: {exc}",
        SourceLocation("file", path),
        pass_name="driver",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "conc":
        from .conc.cli import main as conc_main

        return conc_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.codes:
        for code, description in sorted(CODES.items()):
            print(f"{code}  {description}")
        return 0
    if not args.files:
        parser.error("no input files (pass .xmi/.cnx documents to analyze)")

    context = AnalysisContext()
    if args.cluster:
        try:
            context.cluster = _parse_cluster(args.cluster)
        except ValueError as exc:
            parser.error(str(exc))

    status = 0
    json_out: dict[str, list[dict]] = {}
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            _report_failure(args, json_out, path, exc)
            status = 2
            continue
        try:
            report = analyze_source(text, context)
        except ValueError as exc:
            _report_failure(args, json_out, path, exc)
            status = 2
            continue
        if args.json:
            json_out[path] = report.to_json()
        else:
            print(report.render(title=path, with_hints=not args.no_hints))
        if report.errors() or (args.werror and report.warnings()):
            status = max(status, 1)
    if args.json:
        print(json.dumps(json_out, indent=2))
    return status


def _report_failure(args, json_out, path: str, exc: Exception) -> None:
    diagnostic = _parse_failure(path, exc)
    if args.json:
        json_out[path] = [diagnostic.to_dict()]
    else:
        print(f"{path}: unanalyzable\n  {diagnostic.render()}", file=sys.stderr)
