"""cnlint: multi-pass static analysis of CN job compositions.

The paper's value proposition is catching composition errors *before* a
job reaches the cluster.  This package is the diagnostics engine behind
that promise: it extracts a common :class:`~repro.analysis.ir.JobGraph`
IR from any of the three pipeline representations (UML activity model,
XMI document, CNX descriptor) and runs a battery of analysis passes over
it -- structure (cycles, orphans, duplicate ids, dangling ``depends``),
configuration schema (tagged-value types, archive/class references),
dynamic-invocation multiplicity bounds, splitter/joiner fan shape,
client-level job ordering, message-flow deadlock, and placement
feasibility against a cluster spec.

Every finding is a structured :class:`Diagnostic` (stable ``CNxxx``
code, severity, source location in the originating element, fix hint).
``python -m repro.analysis`` exposes the analyzer on the command line;
:mod:`repro.core.cnx.validate`, :class:`repro.cn.client.ClientRunner`
and :class:`repro.cn.portal.Portal` all run the same engine, so a
defective descriptor is rejected with identical diagnostics no matter
where it enters the pipeline.
"""

from .diagnostics import Diagnostic, Report, Severity, SourceLocation
from .ir import (
    ClusterSpec,
    Composition,
    JobGraph,
    TaskNode,
    from_cnx,
    from_graph,
    from_model,
    from_xmi,
)
from .passes import (
    AnalysisContext,
    AnalysisPass,
    analyze,
    analyze_cnx,
    analyze_model,
    analyze_source,
    default_passes,
)

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "Report",
    "TaskNode",
    "JobGraph",
    "Composition",
    "ClusterSpec",
    "from_cnx",
    "from_graph",
    "from_model",
    "from_xmi",
    "AnalysisContext",
    "AnalysisPass",
    "analyze",
    "analyze_cnx",
    "analyze_model",
    "analyze_source",
    "default_passes",
]
