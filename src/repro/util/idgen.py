"""Deterministic identifier generation.

Both the XMI writer and the CN runtime need streams of unique short ids.
The paper's XMI exporter used ids like ``a89``; reproducing that style
keeps generated documents diff-able against Fig. 7.  Randomness is
deliberately avoided so every run of the pipeline produces byte-identical
artifacts (a property the test suite relies on).
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["IdGenerator", "SequentialIds"]


class SequentialIds:
    """Thread-safe ``prefix1, prefix2, ...`` id stream."""

    def __init__(self, prefix: str = "a", start: int = 1) -> None:
        self._prefix = prefix
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            return f"{self._prefix}{next(self._counter)}"

    def __iter__(self):
        while True:
            yield self.next()


class IdGenerator:
    """Namespaced id generator: independent sequential streams per kind.

    >>> gen = IdGenerator()
    >>> gen.next("task"), gen.next("task"), gen.next("job")
    ('task1', 'task2', 'job1')
    """

    def __init__(self) -> None:
        self._streams: dict[str, SequentialIds] = {}
        self._lock = threading.Lock()

    def next(self, kind: str) -> str:
        with self._lock:
            stream = self._streams.get(kind)
            if stream is None:
                stream = self._streams[kind] = SequentialIds(prefix=kind)
        return stream.next()
