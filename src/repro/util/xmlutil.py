"""Small XML helpers shared across the code base.

The repository deliberately avoids third-party XML stacks (no ``lxml``
offline); everything is built on :mod:`xml.etree.ElementTree`.  These
helpers add the few conveniences ElementTree lacks: pretty printing with
stable attribute order, canonical comparison of documents, and qualified
name handling for the prefixed (non-namespaced) UML/XMI vocabulary the
paper's tools consume.

The XMI documents in the paper (Fig. 7) use colon-prefixed names such as
``UML:ActionState`` *without* declaring an XML namespace -- a common trait
of early-2000s XMI exporters.  ElementTree refuses undeclared prefixes, so
:func:`parse_prefixed` and :func:`serialize_prefixed` transparently map
``UML:Foo`` to/from the safe form ``UML.Foo`` while parsing, keeping the
external representation byte-faithful to the paper.
"""

from __future__ import annotations

import io
import re
import xml.etree.ElementTree as ET
from typing import Iterator

__all__ = [
    "escape_attr",
    "escape_text",
    "pretty_print",
    "canonicalize",
    "xml_equal",
    "parse_xml",
    "parse_prefixed",
    "serialize_prefixed",
    "iter_elements",
    "strip_whitespace_nodes",
]

_PREFIX_RE = re.compile(r"<(/?)([A-Za-z_][\w.-]*):([A-Za-z_][\w.-]*)")
_XMLDECL_RE = re.compile(r"^\s*<\?xml[^>]*\?>")


def escape_text(value: str) -> str:
    """Escape character data for XML text content."""
    return (
        value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted XML attribute value."""
    return escape_text(value).replace('"', "&quot;").replace("\n", "&#10;")


def parse_xml(text: str) -> ET.Element:
    """Parse an XML document string into an ElementTree element."""
    return ET.fromstring(text)


def parse_prefixed(text: str) -> ET.Element:
    """Parse XML whose tags use undeclared prefixes (``UML:ActionState``).

    Prefixed element names are rewritten to ``prefix.local`` before parsing
    so ElementTree accepts them.  Attribute names in the paper's XMI never
    carry prefixes, so only tags are rewritten.
    """
    rewritten = _PREFIX_RE.sub(lambda m: f"<{m.group(1)}{m.group(2)}.{m.group(3)}", text)
    return ET.fromstring(rewritten)


def serialize_prefixed(
    elem: ET.Element, *, indent: str = "  ", prefixes: tuple[str, ...] = ("UML",)
) -> str:
    """Serialize an element tree, mapping ``prefix.local`` tags back to
    ``prefix:local`` form for the given *prefixes*.  Inverse of
    :func:`parse_prefixed`.

    Only allow-listed prefixes are restored: XMI 1.2 element names like
    ``XMI.header`` genuinely contain dots and must stay dotted."""
    out = pretty_print(elem, indent=indent, xml_declaration=False)
    alternation = "|".join(re.escape(p) for p in prefixes)
    return re.sub(
        rf"<(/?)({alternation})\.([A-Za-z_][\w.-]*)",
        lambda m: f"<{m.group(1)}{m.group(2)}:{m.group(3)}",
        out,
    )


def _write_pretty(buf: io.StringIO, elem: ET.Element, indent: str, level: int) -> None:
    pad = indent * level
    attrs = "".join(f' {k}="{escape_attr(str(v))}"' for k, v in elem.attrib.items())
    children = list(elem)
    text = elem.text or ""
    if not children and not text:
        buf.write(f"{pad}<{elem.tag}{attrs}/>\n")
        return
    if not children:
        # leaf text is emitted verbatim: leading/trailing whitespace in
        # e.g. CNX param values is significant and must round-trip
        buf.write(f"{pad}<{elem.tag}{attrs}>{escape_text(text)}</{elem.tag}>\n")
        return
    text = text.strip()
    buf.write(f"{pad}<{elem.tag}{attrs}>\n")
    if text:
        buf.write(f"{pad}{indent}{escape_text(text)}\n")
    for child in children:
        _write_pretty(buf, child, indent, level + 1)
        tail = (child.tail or "").strip()
        if tail:
            buf.write(f"{pad}{indent}{escape_text(tail)}\n")
    buf.write(f"{pad}</{elem.tag}>\n")


def pretty_print(
    elem: ET.Element, *, indent: str = "  ", xml_declaration: bool = True
) -> str:
    """Render an element tree as an indented document string.

    Attribute order follows insertion order, which our writers keep stable,
    so output is deterministic across runs.
    """
    buf = io.StringIO()
    if xml_declaration:
        buf.write('<?xml version="1.0"?>\n')
    _write_pretty(buf, elem, indent, 0)
    return buf.getvalue()


def strip_whitespace_nodes(elem: ET.Element) -> ET.Element:
    """Drop whitespace-only text/tail in place (for canonical comparison)."""
    if elem.text is not None and not elem.text.strip():
        elem.text = None
    for child in elem:
        if child.tail is not None and not child.tail.strip():
            child.tail = None
        strip_whitespace_nodes(child)
    return elem


def _canonical(elem: ET.Element) -> tuple:
    text = (elem.text or "").strip()
    children = tuple(_canonical(c) for c in elem)
    tail_texts = tuple((c.tail or "").strip() for c in elem)
    return (
        elem.tag,
        tuple(sorted(elem.attrib.items())),
        text,
        children,
        tail_texts,
    )


def canonicalize(doc: str | ET.Element) -> tuple:
    """Reduce a document to a hashable canonical form.

    Two documents canonicalize equal iff they have the same element
    structure, the same attributes (order-insensitive), and the same
    non-whitespace character data.  Child order is significant, matching
    XML semantics for document content.
    """
    elem = parse_xml(doc) if isinstance(doc, str) else doc
    return _canonical(elem)


def xml_equal(a: str | ET.Element, b: str | ET.Element) -> bool:
    """Whether two documents are canonically equal (see :func:`canonicalize`)."""
    return canonicalize(a) == canonicalize(b)


def iter_elements(root: ET.Element) -> Iterator[ET.Element]:
    """Depth-first pre-order iteration over *root* and all descendants."""
    yield root
    for child in root:
        yield from iter_elements(child)
