"""Shared utilities: XML helpers and deterministic id generation."""

from .idgen import IdGenerator, SequentialIds
from .xmlutil import (
    canonicalize,
    escape_attr,
    escape_text,
    iter_elements,
    parse_prefixed,
    parse_xml,
    pretty_print,
    serialize_prefixed,
    strip_whitespace_nodes,
    xml_equal,
)

__all__ = [
    "IdGenerator",
    "SequentialIds",
    "canonicalize",
    "escape_attr",
    "escape_text",
    "iter_elements",
    "parse_prefixed",
    "parse_xml",
    "pretty_print",
    "serialize_prefixed",
    "strip_whitespace_nodes",
    "xml_equal",
]
