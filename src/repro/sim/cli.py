"""``python -m repro.sim``: the fuzz / replay entry point.

Fuzzing: ``python -m repro.sim --seed 7 --runs 50`` generates one
schedule per seed (``seed, seed+1, ...``), runs each simulation, and
evaluates every oracle.  On a failure the schedule is delta-debug
shrunk (``--shrink``, on by default) and written as a reproducer JSON
into ``--emit DIR`` so it can be checked into the corpus.  Exit status
is 1 if any run failed.

Replay: ``python -m repro.sim --replay FILE`` re-runs one reproducer
and reports whether its violations still occur.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .harness import Simulation
from .oracles import run_oracles
from .reproducer import emit_reproducer, replay_reproducer
from .schedule import Schedule, generate
from .shrink import shrink_schedule

__all__ = ["main"]


def _run_once(
    seed: int,
    schedule: Schedule,
    args: argparse.Namespace,
) -> tuple[Simulation, dict[str, list[str]]]:
    sim = Simulation(
        seed,
        schedule,
        n=args.n,
        workers=args.workers,
        nodes=args.nodes,
        max_ticks=args.max_ticks,
    )
    result = sim.run()
    return sim, run_oracles(result)


def _shrink_failure(
    schedule: Schedule,
    failed_oracles: list[str],
    args: argparse.Namespace,
) -> tuple[Schedule, int]:
    def still_fails(candidate: Schedule) -> bool:
        sim = Simulation(
            candidate.seed,
            candidate,
            n=args.n,
            workers=args.workers,
            nodes=args.nodes,
            max_ticks=args.max_ticks,
        )
        violations = run_oracles(sim.run(), only=failed_oracles)
        return bool(violations)

    return shrink_schedule(schedule, still_fails, max_probes=args.max_probes)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="deterministic simulation fuzzing for the CN runtime",
    )
    parser.add_argument("--seed", type=int, default=0, help="first schedule seed")
    parser.add_argument("--runs", type=int, default=1, help="number of schedules")
    parser.add_argument("--n", type=int, default=8, help="Floyd matrix size")
    parser.add_argument("--workers", type=int, default=3, help="worker task count")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size")
    parser.add_argument(
        "--max-ticks", type=int, default=600, help="virtual-tick horizon per run"
    )
    parser.add_argument(
        "--max-probes", type=int, default=60, help="shrink probe budget per failure"
    )
    parser.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="emit the raw failing schedule without delta-debugging it",
    )
    parser.add_argument(
        "--emit",
        metavar="DIR",
        default="",
        help="write failing reproducers into DIR (default: no files)",
    )
    parser.add_argument(
        "--replay",
        metavar="FILE",
        default="",
        help="replay one reproducer file instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.replay:
        result, violations = replay_reproducer(args.replay, max_ticks=args.max_ticks)
        if violations:
            print(f"{args.replay}: still failing after {result.ticks} ticks")
            for name, lines in violations.items():
                for line in lines:
                    print(f"  [{name}] {line}")
            return 1
        print(f"{args.replay}: green ({result.status}, {result.ticks} ticks)")
        return 0

    failures = 0
    for index in range(args.runs):
        seed = args.seed + index
        schedule = generate(seed, nodes=args.nodes, workers=args.workers)
        sim, violations = _run_once(seed, schedule, args)
        if not violations:
            print(f"seed {seed}: ok [{schedule.describe()}]")
            continue
        failures += 1
        print(f"seed {seed}: FAIL [{schedule.describe()}]")
        for name, lines in violations.items():
            for line in lines:
                print(f"  [{name}] {line}")
        final = schedule
        if args.shrink:
            final, probes = _shrink_failure(schedule, list(violations), args)
            print(
                f"  shrunk to {len(final.events)} event(s) in {probes} probe(s):"
                f" [{final.describe()}]"
            )
        if args.emit:
            path = emit_reproducer(
                args.emit,
                final,
                violations,
                n=args.n,
                workers=args.workers,
                nodes=args.nodes,
                note=f"fuzz failure, seed {seed}",
            )
            print(f"  reproducer: {path}")
    total = args.runs
    print(f"{total - failures}/{total} schedules green")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
