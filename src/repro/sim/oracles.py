"""Invariant oracles: what must hold after *any* fault schedule.

Each oracle is a pure function from a :class:`~repro.sim.harness.SimResult`
to a list of violation strings (empty = invariant held).  They encode the
guarantees the runtime has accumulated PR by PR as machine-checkable
statements rather than per-test assertions:

* ``job-completes`` -- liveness: a convergence-biased schedule always
  lets the retry/replay machinery finish the job;
* ``exactly-once-result`` -- duplicated, reordered, or replayed result
  deliveries must not change the join's output: the final matrix equals
  the fault-free serial baseline;
* ``replay-equivalence`` -- :func:`~repro.cn.durability.replay_job` is a
  pure fold: re-folding the journal yields the same snapshot, and every
  runtime-completed task is completed in the snapshot;
* ``sheds-subset-of-deliveries`` -- every shed record points at a
  journaled delivery (journaled-then-lost count is zero);
* ``budget-monotone`` -- no routed message carries a deadline past the
  job's end-to-end budget;
* ``ledger-drain`` -- GC watermarks never exceed the journaled delivery
  count and the replayed ledger holds exactly the un-collected suffix;
* ``fenced-zombies`` -- records a zombie manager wrote behind the
  adoption fence contribute nothing to the replayed state;
* ``dead-letter-accounting`` -- quarantines only ever trace back to an
  injected corruption, are fully journaled, and never happen with
  checksums off.

:func:`run_oracles` evaluates the registry; ``green`` means every list
came back empty.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.cn.durability import JobSnapshot, JournalRecord, replay_job

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .harness import SimResult

__all__ = ["ORACLES", "oracle", "run_oracles", "delivered_serials"]

Oracle = Callable[["SimResult"], list[str]]

#: name -> oracle, in registration order
ORACLES: dict[str, Oracle] = {}


def oracle(name: str) -> Callable[[Oracle], Oracle]:
    """Register an invariant under *name* (decorator)."""

    def register(fn: Oracle) -> Oracle:
        ORACLES[name] = fn
        return fn

    return register


def run_oracles(
    result: "SimResult", only: list[str] | None = None
) -> dict[str, list[str]]:
    """Evaluate the registry; returns only the oracles that found
    violations (empty dict = all green)."""
    findings: dict[str, list[str]] = {}
    for name, fn in ORACLES.items():
        if only is not None and name not in only:
            continue
        violations = fn(result)
        if violations:
            findings[name] = violations
    return findings


# -- shared journal views ---------------------------------------------------------


def delivered_serials(records: list[JournalRecord]) -> dict[str, set[int]]:
    """Task -> serials the journal ledgered (pre-GC, raw record scan)."""
    out: dict[str, set[int]] = {}
    for record in records:
        if record.kind == "delivery":
            message = record.data["message"]
            out.setdefault(message.recipient, set()).add(message.serial)
        elif record.kind == "delivery_batch":
            for message in record.data["messages"]:
                out.setdefault(message.recipient, set()).add(message.serial)
    return out


def _snapshot_view(snapshot: JobSnapshot) -> dict:
    """The comparable core of a snapshot (skips Message/TaskSpec payloads,
    whose numpy-bearing equality is undefined; delivery identity is
    compared through per-task serial sequences instead)."""
    return {
        "states": dict(snapshot.states),
        "attempts": dict(snapshot.attempts),
        "epochs": dict(snapshot.epochs),
        "nodes": dict(snapshot.nodes),
        "mepoch": snapshot.mepoch,
        "gc": dict(snapshot.gc_watermarks),
        "sheds": {task: list(serials) for task, serials in snapshot.sheds.items()},
        "dead_letters": [dict(entry) for entry in snapshot.dead_letters],
        "deliveries": {
            task: [message.serial for message in messages]
            for task, messages in snapshot.deliveries.items()
        },
        "finished": snapshot.finished,
        "failed": snapshot.failed,
        "deadline": snapshot.deadline,
    }


# -- the invariants ---------------------------------------------------------------


@oracle("job-completes")
def job_completes(result: "SimResult") -> list[str]:
    if result.done:
        return []
    return [
        f"job {result.job_id} did not complete: {result.status}"
        f" ({result.error}); states={result.states}"
    ]


@oracle("exactly-once-result")
def exactly_once_result(result: "SimResult") -> list[str]:
    """Duplication/replay must not change the join's effect."""
    got = result.result_matrix
    if got is None:
        return []  # liveness failure already reported by job-completes
    expected = result.expected
    if len(got) != len(expected) or any(
        len(row) != len(exp) for row, exp in zip(got, expected)
    ):
        return [
            f"result shape {len(got)}x{len(got[0]) if got else 0} !="
            f" expected {len(expected)}x{len(expected[0]) if expected else 0}"
            " (a dropped or double-counted block)"
        ]
    for i, (row, exp) in enumerate(zip(got, expected)):
        for j, (a, b) in enumerate(zip(row, exp)):
            same = (a == b) or (math.isinf(a) and math.isinf(b))
            if not same and abs(a - b) > 1e-9:
                return [f"result[{i}][{j}] = {a} != serial baseline {b}"]
    return []


@oracle("replay-equivalence")
def replay_equivalence(result: "SimResult") -> list[str]:
    violations: list[str] = []
    if not result.records:
        if result.done:
            violations.append("job completed but no journal replica survived")
        return violations
    first = _snapshot_view(replay_job(result.job_id, result.records))
    second = _snapshot_view(replay_job(result.job_id, result.records))
    if first != second:
        diff = [key for key in first if first[key] != second[key]]
        violations.append(f"replay_job is not a pure fold; differing keys: {diff}")
    if result.done:
        snapshot = replay_job(result.job_id, result.records)
        for task, state in result.states.items():
            if state == "COMPLETED" and snapshot.states.get(task) != "COMPLETED":
                violations.append(
                    f"task {task!r} completed at runtime but replays as"
                    f" {snapshot.states.get(task)!r}"
                )
        if not snapshot.finished:
            violations.append("job finished at runtime but journal never did")
        elif snapshot.failed:
            violations.append("job completed at runtime but journal says failed")
    return violations


@oracle("sheds-subset-of-deliveries")
def sheds_subset_of_deliveries(result: "SimResult") -> list[str]:
    """Zero journaled-then-lost: a shed without a ledgered delivery is a
    message the replay path can never re-offer."""
    ledgered = delivered_serials(result.records)
    violations = []
    for record in result.records:
        if record.kind != "shed":
            continue
        task = record.data.get("task", "")
        serial = int(record.data.get("serial", 0))
        if serial not in ledgered.get(task, set()):
            violations.append(
                f"shed serial {serial} for {task!r} has no delivery record"
            )
    return violations


@oracle("budget-monotone")
def budget_monotone(result: "SimResult") -> list[str]:
    """No routed message may outlive the job's end-to-end budget."""
    snapshot = replay_job(result.job_id, result.records)
    budget = snapshot.deadline
    if budget is None:
        budget = result.job_deadline
    if budget is None:
        return []
    violations = []
    for record in result.records:
        if record.kind == "delivery":
            messages = [record.data["message"]]
        elif record.kind == "delivery_batch":
            messages = record.data["messages"]
        else:
            continue
        for message in messages:
            if message.deadline is not None and message.deadline > budget + 1e-9:
                violations.append(
                    f"message {message.serial} to {message.recipient!r} carries"
                    f" deadline {message.deadline} past job budget {budget}"
                )
    return violations


@oracle("ledger-drain")
def ledger_drain(result: "SimResult") -> list[str]:
    """GC watermarks stay within the journaled ledger, and the replayed
    ledger is exactly the un-collected suffix."""
    if not result.records:
        return []
    snapshot = replay_job(result.job_id, result.records)
    totals = {
        task: len(serials) for task, serials in _ledgered_counts(result.records).items()
    }
    violations = []
    for task, watermark in snapshot.gc_watermarks.items():
        total = totals.get(task, 0)
        if watermark > total:
            violations.append(
                f"gc watermark {watermark} for {task!r} exceeds"
                f" {total} journaled deliveries"
            )
            continue
        remaining = len(snapshot.deliveries.get(task, []))
        if remaining != total - watermark:
            violations.append(
                f"replayed ledger for {task!r} holds {remaining} entries,"
                f" expected {total} - {watermark}"
            )
    return violations


def _ledgered_counts(records: list[JournalRecord]) -> dict[str, list[int]]:
    """Task -> journaled delivery serials *with* duplicates (GC counts
    entries, not distinct serials), under the same epoch fence the
    replay fold applies -- otherwise a stale-epoch delivery would count
    here but not in the snapshot."""
    out: dict[str, list[int]] = {}
    high = 0
    for record in records:
        if record.mepoch < high:
            continue
        high = max(high, record.mepoch)
        if record.kind == "delivery":
            message = record.data["message"]
            out.setdefault(message.recipient, []).append(message.serial)
        elif record.kind == "delivery_batch":
            for message in record.data["messages"]:
                out.setdefault(message.recipient, []).append(message.serial)
    return out


@oracle("fenced-zombies")
def fenced_zombies(result: "SimResult") -> list[str]:
    """Records behind the adoption fence must contribute nothing: folding
    the journal with stale-epoch records pre-filtered yields the same
    snapshot as folding the raw sequence."""
    if not result.records:
        return []
    filtered: list[JournalRecord] = []
    high = 0
    stale = 0
    for record in result.records:
        if record.mepoch < high:
            stale += 1
            continue
        high = max(high, record.mepoch)
        filtered.append(record)
    raw_view = _snapshot_view(replay_job(result.job_id, result.records))
    fenced_view = _snapshot_view(replay_job(result.job_id, filtered))
    if raw_view != fenced_view:
        diff = [key for key in raw_view if raw_view[key] != fenced_view[key]]
        return [
            f"{stale} stale-epoch record(s) leaked into the replayed state;"
            f" differing keys: {diff}"
        ]
    return []


@oracle("dead-letter-accounting")
def dead_letter_accounting(result: "SimResult") -> list[str]:
    """Quarantines trace to injected corruptions, are journaled with a
    replayable ledger entry, and never fire with checksums off."""
    snapshot = replay_job(result.job_id, result.records)
    journaled = snapshot.dead_letters
    violations = []
    if not result.checksums:
        if journaled or result.dead_letters:
            violations.append(
                f"{len(journaled) or len(result.dead_letters)} dead letter(s)"
                " recorded with checksums disabled"
            )
        return violations
    corruptions = sum(
        1 for fault in result.fault_log if fault.get("kind") == "queue-corrupt"
    )
    if len(journaled) > corruptions:
        violations.append(
            f"{len(journaled)} dead letters exceed {corruptions} injected"
            " corruptions"
        )
    ledgered = delivered_serials(result.records)
    for entry in journaled:
        task = entry.get("task", "")
        serial = int(entry.get("serial", 0))
        if serial not in ledgered.get(task, set()):
            violations.append(
                f"dead letter serial {serial} for {task!r} has no ledgered"
                " delivery to re-offer"
            )
    return violations
