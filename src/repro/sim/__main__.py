"""Entry point: ``python -m repro.sim``."""

import sys

from .cli import main

sys.exit(main())
