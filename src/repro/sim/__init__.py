"""Deterministic simulation testing for the CN runtime.

A seeded :func:`~repro.sim.schedule.generate` produces a fault
:class:`~repro.sim.schedule.Schedule`; a
:class:`~repro.sim.harness.Simulation` runs a real cluster on virtual
time under that schedule; the oracle registry
(:data:`~repro.sim.oracles.ORACLES`) checks invariants over the
journal, result, and fault log; failures are delta-debug shrunk
(:func:`~repro.sim.shrink.shrink_schedule`) and persisted as runnable
reproducers (:mod:`repro.sim.reproducer`).  CLI:
``python -m repro.sim --seed N --runs K``.
"""

from .harness import Simulation, SimResult
from .oracles import ORACLES, oracle, run_oracles
from .reproducer import emit_reproducer, load_reproducer, replay_reproducer
from .schedule import EVENT_KINDS, FaultEvent, Schedule, generate
from .shrink import shrink_schedule

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "ORACLES",
    "Schedule",
    "SimResult",
    "Simulation",
    "emit_reproducer",
    "generate",
    "load_reproducer",
    "oracle",
    "replay_reproducer",
    "run_oracles",
    "shrink_schedule",
]
