"""Reproducer files: failing schedules that become regression tests.

When a fuzz run fails, the (shrunk) schedule plus the sim's shape
parameters are written as a small JSON file.  Checked into
``tests/data/sim_corpus/`` it replays forever under tier-1: the corpus
test loads every file, re-runs the simulation, and re-evaluates the
oracles -- so a fixed bug stays fixed and a still-broken one fails with
its minimal schedule attached.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from .harness import SimResult, Simulation
from .oracles import run_oracles
from .schedule import Schedule

__all__ = ["emit_reproducer", "load_reproducer", "replay_reproducer"]

FORMAT_VERSION = 1


def emit_reproducer(
    directory: str | Path,
    schedule: Schedule,
    violations: dict[str, list[str]],
    *,
    n: int = 8,
    workers: int = 3,
    nodes: int = 4,
    note: str = "",
) -> Path:
    """Write a runnable reproducer JSON; returns its path.

    The filename is deterministic in the schedule content, so re-fuzzing
    the same failure overwrites rather than accumulates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "seed": schedule.seed,
        "n": n,
        "workers": workers,
        "nodes": nodes,
        "schedule": schedule.to_dict(),
        "violations": {name: list(lines) for name, lines in violations.items()},
        "note": note,
    }
    body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    digest = hashlib.sha256(
        json.dumps(payload["schedule"], sort_keys=True).encode()
    ).hexdigest()[:8]
    path = directory / f"seed{schedule.seed}-{digest}.json"
    path.write_text(body)
    return path


def load_reproducer(path: str | Path) -> dict[str, Any]:
    """Parse and validate a reproducer file."""
    data = json.loads(Path(path).read_text())
    version = int(data.get("version", 0))
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported reproducer version {version}"
            f" (expected {FORMAT_VERSION})"
        )
    data["schedule"] = Schedule.from_dict(data["schedule"])
    return data


def replay_reproducer(
    path: str | Path,
    *,
    max_ticks: Optional[int] = None,
) -> tuple[SimResult, dict[str, list[str]]]:
    """Re-run a reproducer; returns ``(result, current violations)``.

    An empty violations dict means the bug the file captured is fixed
    (which is what the corpus regression test asserts).
    """
    data = load_reproducer(path)
    schedule: Schedule = data["schedule"]
    sim = Simulation(
        schedule.seed,
        schedule,
        n=int(data.get("n", 8)),
        workers=int(data.get("workers", 3)),
        nodes=int(data.get("nodes", 4)),
        **({"max_ticks": max_ticks} if max_ticks else {}),
    )
    result = sim.run()
    return result, run_oracles(result)
