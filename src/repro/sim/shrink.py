"""Delta-debugging shrinker: minimize a failing fault schedule.

Given a schedule under which some oracle fails and a predicate that
re-runs the simulation, :func:`shrink_schedule` produces a smaller
schedule that still fails:

1. try the empty event list first (rate-driven failures shrink to zero
   structural events in one probe);
2. classic ddmin over the event sequence (subsets, then complements,
   doubling granularity) until no single-event removal keeps failing;
3. zero out each fault rate that is not needed;
4. lift the queue bound if the failure does not need backpressure.

Every probe is one full simulation run, so the budget is bounded by
``max_probes``; on budget exhaustion the best schedule found so far is
returned.  The result is what lands in a reproducer file: the minimal
fault plan a human has to stare at.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .schedule import FaultEvent, Schedule

__all__ = ["shrink_schedule", "ShrinkBudget"]


class ShrinkBudget:
    """Probe counter shared across the shrink passes."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        """Whether one more probe may run."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _ddmin(
    events: tuple[FaultEvent, ...],
    fails: Callable[[tuple[FaultEvent, ...]], bool],
    budget: ShrinkBudget,
) -> tuple[FaultEvent, ...]:
    """Zeller/Hildebrandt ddmin over the event sequence."""
    current = list(events)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [
            current[start : start + chunk] for start in range(0, len(current), chunk)
        ]
        reduced = False
        for index, subset in enumerate(subsets):
            if len(subsets) > 1:
                complement = [
                    event
                    for other, subset_ in enumerate(subsets)
                    if other != index
                    for event in subset_
                ]
            else:
                complement = []
            if not budget.spend():
                return tuple(current)
            if fails(tuple(subset)):
                current = list(subset)
                granularity = 2
                reduced = True
                break
            if complement and len(subsets) > 2:
                if not budget.spend():
                    return tuple(current)
                if fails(tuple(complement)):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    if len(current) == 1 and budget.spend() and fails(()):
        current = []
    return tuple(current)


def shrink_schedule(
    schedule: Schedule,
    still_fails: Callable[[Schedule], bool],
    *,
    max_probes: int = 60,
) -> tuple[Schedule, int]:
    """Minimize *schedule* while ``still_fails`` holds.

    Returns ``(minimal schedule, probes used)``.  ``still_fails`` runs
    one full simulation per call and must be deterministic for the
    shrink to be sound (which the seeded harness provides).
    """
    budget = ShrinkBudget(max_probes)
    current = schedule

    # rate-driven failures collapse to zero structural events immediately
    if current.events and budget.spend():
        bare = current.with_events(())
        if still_fails(bare):
            current = bare
    if current.events:
        events = _ddmin(
            current.events,
            lambda evs: still_fails(current.with_events(evs)),
            budget,
        )
        current = current.with_events(events)

    for name in Schedule.RATE_FIELDS:
        if getattr(current, name) <= 0.0:
            continue
        if not budget.spend():
            return current, budget.used
        candidate = replace(current, **{name: 0.0})
        if still_fails(candidate):
            current = candidate

    if current.queue_maxsize and budget.spend():
        candidate = replace(current, queue_maxsize=0, queue_policy="block")
        if still_fails(candidate):
            current = candidate

    return current, budget.used
