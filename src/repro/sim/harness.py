"""The simulation driver: one real Cluster, one generated fault plan.

FoundationDB-style deterministic simulation testing for the CN runtime:
:class:`Simulation` builds a real :class:`~repro.cn.Cluster` on a
:class:`~repro.cn.VirtualClock` (``drive_timeouts=True``, so every
deadline in the system is under the driver's control), submits the
guiding-example Floyd job directly through the CN API, and steps virtual
time tick by tick while injecting the faults a
:class:`~repro.sim.schedule.Schedule` prescribes:

* link faults (drop / delay / duplicate / reorder / corrupt) ride the
  seeded :class:`~repro.cn.ChaosPolicy` rates, so the same schedule
  injects the same faults on every run;
* node kills are scripted at-tick through the chaos policy (they land
  inside :meth:`Cluster.tick`, deterministically ordered);
* revives, partitions, and heals are applied by the driver loop when
  their tick comes up;
* stalls are scripted per task attempt; bursts fire a storm of
  status-query load against the managing JobManager.

The run ends at quiescence (job finished) or at the tick horizon, and
everything an oracle could want is collected into a :class:`SimResult`:
the result matrix next to the fault-free serial baseline, final task
states, a surviving journal replica, the structured fault log, and the
dead-letter ledger.  The harness never asserts anything itself -- the
oracle registry (:mod:`repro.sim.oracles`) owns the invariants.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.apps.floyd import floyd_registry, floyd_warshall, random_weighted_graph
from repro.apps.floyd.io import store_matrix
from repro.apps.floyd.model import (
    JOIN_CLASS,
    JOIN_JAR,
    SPLIT_CLASS,
    SPLIT_JAR,
    WORKER_CLASS,
    WORKER_JAR,
)
from repro.cn import CNAPI, ChaosPolicy, Cluster, CnError, TaskSpec, VirtualClock
from repro.cn.durability import JournalRecord

from .schedule import FaultEvent, Schedule, generate

__all__ = ["Simulation", "SimResult"]

#: distinguishes MatrixStore keys across runs in one process
_RUN_IDS = itertools.count(1)


@dataclass
class SimResult:
    """Everything one simulation run produced, oracle-ready."""

    seed: int
    schedule: Schedule
    status: str  # "done" | "failed" | "timeout"
    error: str
    ticks: int
    job_id: str
    checksums: bool
    expected: list[list[float]]
    result_matrix: Optional[list[list[float]]]
    states: dict[str, str]
    records: list[JournalRecord]
    fault_log: list[dict[str, Any]]
    fault_summary: list[tuple[str, str, str]]
    dead_letters: list[dict[str, Any]]
    poisoned: int
    job_deadline: Optional[float]
    duration: float = 0.0
    #: node -> journal length, for replica-divergence diagnostics
    replica_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.status == "done"


class Simulation:
    """One deterministic simulation run of the Floyd job under faults.

    ``registry_factory`` lets mutation tests swap in deliberately broken
    task implementations (e.g. a join without result dedup) and verify
    the oracles catch them; the default is the real Floyd registry.
    """

    def __init__(
        self,
        seed: int,
        schedule: Optional[Schedule] = None,
        *,
        n: int = 8,
        workers: int = 3,
        nodes: int = 4,
        checksums: bool = True,
        max_ticks: int = 600,
        tick_sleep: float = 0.001,
        task_deadline: float = 60.0,
        join_deadline: float = 80.0,
        registry_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        if nodes < 3:
            raise ValueError("the sim needs >= 3 nodes (manager + failover room)")
        self.seed = seed
        self.schedule = (
            schedule
            if schedule is not None
            else generate(seed, nodes=nodes, workers=workers)
        )
        self.n = n
        self.workers = workers
        self.nodes = nodes
        self.checksums = checksums
        self.max_ticks = max_ticks
        self.tick_sleep = tick_sleep
        self.task_deadline = task_deadline
        self.join_deadline = join_deadline
        self.registry_factory = registry_factory or floyd_registry

    # -- assembly -------------------------------------------------------------
    def _build_chaos(self) -> ChaosPolicy:
        schedule = self.schedule
        chaos = ChaosPolicy(
            schedule.seed,
            queue_drop_rate=schedule.drop_rate,
            queue_delay_rate=schedule.delay_rate,
            queue_duplicate_rate=schedule.duplicate_rate,
            queue_reorder_rate=schedule.reorder_rate,
            corrupt_rate=schedule.corrupt_rate,
        )
        for event in schedule.events:
            if event.kind == "kill":
                chaos.crash_node(event.target, at_tick=event.at_tick)
            elif event.kind == "stall":
                chaos.stall_task(event.target, attempt=max(1, event.arg))
            elif event.kind == "burst":
                chaos.schedule_burst(event.at_tick, max(1, event.arg))
        return chaos

    def _build_job(self, api: CNAPI, source: str, *, hazards: bool):
        # watchdog deadlines and retry budgets only when the schedule can
        # actually lose work: a fault-free run must not risk a spurious
        # cancellation if the host machine stalls the worker threads
        budget = float(self.max_ticks) + 50.0 if hazards else None
        handle = api.create_job(
            "client", requirements={"prefer": "node0"}, budget=budget
        )
        api.create_task(
            handle,
            TaskSpec(
                name="split",
                jar=SPLIT_JAR,
                cls=SPLIT_CLASS,
                params=(source,),
                max_retries=3,
                deadline=self.task_deadline if hazards else None,
            ),
        )
        names = [f"w{i}" for i in range(self.workers)]
        for index, name in enumerate(names):
            api.create_task(
                handle,
                TaskSpec(
                    name=name,
                    jar=WORKER_JAR,
                    cls=WORKER_CLASS,
                    params=(index + 1,),
                    depends=("split",),
                    # generous: every wedge (a dropped or held-back row
                    # broadcast) costs one watchdog period and one retry
                    max_retries=8,
                    deadline=self.task_deadline if hazards else None,
                ),
            )
        api.create_task(
            handle,
            TaskSpec(
                name="join",
                jar=JOIN_JAR,
                cls=JOIN_CLASS,
                params=("",),
                depends=tuple(names),
                max_retries=4,
                deadline=self.join_deadline if hazards else None,
            ),
        )
        api.start_job(handle)
        return handle

    def _apply_event(self, event: FaultEvent, cluster: Cluster) -> None:
        if event.kind == "revive":
            cluster.revive_node(event.target)
        elif event.kind == "partition":
            group = [n for n in event.target.split(",") if n]
            rest = [n for n in cluster.node_names if n not in group]
            if group and rest:
                cluster.partition(group, rest)
        elif event.kind == "heal":
            cluster.heal_partition()

    # -- the run ------------------------------------------------------------------
    def run(self) -> SimResult:
        started = time.perf_counter()
        schedule = self.schedule
        hazards = schedule.has_faults()
        matrix = random_weighted_graph(self.n, seed=schedule.seed)
        expected = floyd_warshall(matrix)
        chaos = self._build_chaos()
        clock = VirtualClock(drive_timeouts=True)
        cluster = Cluster(
            self.nodes,
            registry=self.registry_factory(),
            chaos=chaos,
            clock=clock,
            failure_k=2,
            checksums=self.checksums,
            queue_maxsize=schedule.queue_maxsize,
            queue_policy=schedule.queue_policy,
        )
        cluster.servers[0].accept_tasks = False  # node0: manager only
        box: dict[str, Any] = {}
        done = threading.Event()
        try:
            api = CNAPI.initialize(cluster)
            source = store_matrix(f"sim-{schedule.seed}-{next(_RUN_IDS)}", matrix)
            handle = self._build_job(api, source, hazards=hazards)

            def waiter() -> None:
                try:
                    box["results"] = api.wait(handle, timeout=float(self.max_ticks))
                except Exception as exc:  # noqa: BLE001  # conclint: waive CC302 -- surfaced via SimResult.status
                    box["error"] = exc
                finally:
                    done.set()

            client = threading.Thread(target=waiter, name="sim-client", daemon=True)
            client.start()

            pending = [
                event
                for event in schedule.events
                if event.kind in ("revive", "partition", "heal")
            ]
            ticks = 0
            while ticks < self.max_ticks and not done.is_set():
                ticks += 1
                due = [event for event in pending if event.at_tick <= ticks]
                for event in due:
                    pending.remove(event)
                    self._apply_event(event, cluster)
                if chaos.enabled:
                    for _ in range(chaos.bursts_due(ticks)):
                        try:
                            api.query_status(handle)
                        except CnError:
                            pass  # burst load racing a manager failover
                cluster.tick()
                if self.tick_sleep:
                    time.sleep(self.tick_sleep)
            done.wait(10.0)

            if "results" in box:
                status, error = "done", ""
            elif "error" in box:
                status, error = "failed", repr(box["error"])
            else:
                status, error = "timeout", f"not quiescent after {ticks} ticks"
            results = box.get("results") or {}
            raw = results.get("join")
            result_matrix = (
                [list(map(float, row)) for row in raw] if raw is not None else None
            )
            job = handle.job
            states = job.states()
            dead_letters = [dict(entry) for entry in job.dead_letters]
            poisoned = sum(
                server.taskmanager.queue_poisoned()
                for server in cluster.alive_servers()
            )
            records: list[JournalRecord] = []
            replica_sizes: dict[str, int] = {}
            for server in cluster.servers:
                journal = server.journal
                if journal is None:
                    continue
                replica = journal.records(handle.job_id)
                replica_sizes[server.name] = len(replica)
                alive = server.name not in cluster.dead_nodes()
                if alive and len(replica) > len(records):
                    records = replica
            return SimResult(
                seed=self.seed,
                schedule=schedule,
                status=status,
                error=error,
                ticks=ticks,
                job_id=handle.job_id,
                checksums=self.checksums,
                expected=[list(map(float, row)) for row in expected],
                result_matrix=result_matrix,
                states=states,
                records=records,
                fault_log=chaos.log_dicts(),
                fault_summary=chaos.fault_summary(),
                dead_letters=dead_letters,
                poisoned=poisoned,
                job_deadline=job.deadline,
                duration=time.perf_counter() - started,
                replica_sizes=replica_sizes,
            )
        finally:
            cluster.shutdown()
