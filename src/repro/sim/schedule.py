"""Fault schedules: the generated input of one simulation run.

A :class:`Schedule` is the complete, serializable description of the
faults one :class:`~repro.sim.harness.Simulation` injects -- link-level
rates (drop / delay / duplicate / reorder / corrupt, fed into
:class:`~repro.cn.chaos.ChaosPolicy`), optional queue bounds, and a
sorted sequence of structural :class:`FaultEvent` entries (node kills
and revives, partitions and heals, task stalls, load bursts) pinned to
virtual-clock ticks.

:func:`generate` derives a schedule deterministically from a seed.  The
generator is deliberately *convergence-biased*: every kill is paired
with a revive, every partition with a heal, at most one kill and one
partition are outstanding at a time, and the manager-side partition
group always keeps a task-accepting node -- so the recovery machinery
(watchdog retries, journal replay, manager adoption) can always drive
the job to completion and a timeout is a genuine bug, not an
over-aggressive schedule.  Schedules round-trip through plain dicts
(:meth:`Schedule.to_dict` / :meth:`Schedule.from_dict`) so failing runs
can be checked in as JSON reproducers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["FaultEvent", "Schedule", "EVENT_KINDS", "generate"]

#: every structural event kind a schedule may contain
EVENT_KINDS = ("kill", "revive", "partition", "heal", "stall", "burst")


@dataclass(frozen=True)
class FaultEvent:
    """One structural fault pinned to a virtual-clock tick.

    ``target`` names a node (kill/revive), a task (stall), or carries a
    ``,``-joined node group for partitions (the complement group is
    implied).  ``arg`` is kind-specific: the stall attempt, or the burst
    size in status-query submissions.
    """

    at_tick: int
    kind: str
    target: str = ""
    arg: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; expected {EVENT_KINDS}")
        if self.at_tick < 0:
            raise ValueError(f"at_tick must be >= 0, got {self.at_tick}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "at_tick": self.at_tick,
            "kind": self.kind,
            "target": self.target,
            "arg": self.arg,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            at_tick=int(data["at_tick"]),
            kind=str(data["kind"]),
            target=str(data.get("target", "")),
            arg=int(data.get("arg", 0)),
        )


@dataclass(frozen=True)
class Schedule:
    """The full fault plan of one simulation run (seed + rates + events)."""

    seed: int
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    queue_maxsize: int = 0
    queue_policy: str = "block"
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    #: rate attributes in canonical order (shrinker zeroing, summaries)
    RATE_FIELDS = (
        "drop_rate",
        "delay_rate",
        "duplicate_rate",
        "reorder_rate",
        "corrupt_rate",
    )

    def has_faults(self) -> bool:
        """Whether anything could go wrong under this schedule (decides
        if the harness arms watchdog deadlines and retry budgets)."""
        return bool(
            self.events
            or any(getattr(self, name) > 0.0 for name in self.RATE_FIELDS)
            or self.queue_maxsize
        )

    def with_events(self, events: tuple[FaultEvent, ...]) -> "Schedule":
        return replace(self, events=tuple(events))

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "rates": {name: getattr(self, name) for name in self.RATE_FIELDS},
            "queue_maxsize": self.queue_maxsize,
            "queue_policy": self.queue_policy,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Schedule":
        rates = data.get("rates") or {}
        return cls(
            seed=int(data["seed"]),
            queue_maxsize=int(data.get("queue_maxsize", 0)),
            queue_policy=str(data.get("queue_policy", "block")),
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events") or []
            ),
            **{name: float(rates.get(name, 0.0)) for name in cls.RATE_FIELDS},
        )

    def describe(self) -> str:
        """One line for progress output: active rates + event summary."""
        rates = ",".join(
            f"{name.removesuffix('_rate')}={getattr(self, name):.3f}"
            for name in self.RATE_FIELDS
            if getattr(self, name) > 0.0
        )
        events = ",".join(
            f"{event.kind}@{event.at_tick}"
            + (f":{event.target}" if event.target else "")
            for event in self.events
        )
        parts = [part for part in (rates, events) if part]
        if self.queue_maxsize:
            parts.append(f"queue={self.queue_policy}:{self.queue_maxsize}")
        return "; ".join(parts) or "fault-free"


def generate(
    seed: int,
    *,
    nodes: int = 4,
    workers: int = 3,
    horizon: int = 60,
) -> Schedule:
    """Derive a fault schedule deterministically from *seed*.

    Structural events land in the first *horizon* ticks (the job itself
    typically needs far fewer); rates are kept low enough that the
    retry/replay machinery converges, which is what makes a timeout
    under a generated schedule a finding rather than noise.
    """
    rng = random.Random(f"cn-sim-schedule:{seed}")
    rates: dict[str, float] = {}
    # magnitudes are deliberately small: a lost or held-back message
    # wedges its consumer until the deadline watchdog retries the task,
    # and the attempt replay re-rolls a fate for every ledgered message
    # -- at high rates every replay re-wedges and the job burns its
    # whole retry budget unwedging instead of computing
    if rng.random() < 0.45:
        rates["drop_rate"] = round(rng.uniform(0.002, 0.012), 4)
    if rng.random() < 0.45:
        rates["delay_rate"] = round(rng.uniform(0.005, 0.03), 4)
    if rng.random() < 0.5:
        rates["duplicate_rate"] = round(rng.uniform(0.02, 0.10), 4)
    if rng.random() < 0.5:
        rates["reorder_rate"] = round(rng.uniform(0.01, 0.05), 4)
    if rng.random() < 0.45:
        rates["corrupt_rate"] = round(rng.uniform(0.01, 0.04), 4)

    queue_maxsize, queue_policy = 0, "block"
    if rng.random() < 0.25:
        # bounded queues under shed_oldest exercise shed-then-replay;
        # capacity stays above the init+rows working set so a shed is a
        # pressure event, not a guaranteed livelock
        queue_maxsize, queue_policy = rng.randint(10, 16), "shed_oldest"

    node_names = [f"node{i}" for i in range(nodes)]
    worker_nodes = node_names[1:]
    events: list[FaultEvent] = []

    # kill/revive cycles: at most one node down at a time, always revived
    cursor = rng.randint(2, 6)
    for _ in range(rng.randint(0, 2)):
        if cursor >= horizon - 10:
            break
        # the manager node is a rarer victim: killing it exercises
        # journal-replay adoption, the workers exercise re-placement
        victim = (
            node_names[0] if rng.random() < 0.25 else rng.choice(worker_nodes)
        )
        down = rng.randint(3, 8)
        events.append(FaultEvent(cursor, "kill", victim))
        events.append(FaultEvent(cursor + down, "revive", victim))
        cursor += down + rng.randint(3, 6)

    # one optional partition/heal cycle; the manager-side group keeps at
    # least one task-accepting node so re-placement stays possible
    if rng.random() < 0.5:
        at = rng.randint(2, horizon // 2)
        keep = rng.randint(1, len(worker_nodes) - 1)
        manager_side = [node_names[0]] + rng.sample(worker_nodes, keep)
        events.append(FaultEvent(at, "partition", ",".join(sorted(manager_side))))
        events.append(FaultEvent(at + rng.randint(2, 5), "heal"))

    if rng.random() < 0.4:
        events.append(
            FaultEvent(0, "stall", f"w{rng.randrange(workers)}", arg=1)
        )
    if rng.random() < 0.3:
        events.append(
            FaultEvent(rng.randint(1, horizon // 2), "burst", arg=rng.randint(3, 8))
        )

    events.sort(key=lambda event: (event.at_tick, event.kind, event.target))
    return Schedule(
        seed=seed,
        queue_maxsize=queue_maxsize,
        queue_policy=queue_policy,
        events=tuple(events),
        **rates,
    )
