"""repro: model-driven job/task composition for cluster computing.

A production-quality reproduction of Mehta, Kanitkar, Laufer &
Thiruvathukal, "A Model-Driven Approach to Job/Task Composition in
Cluster Computing" (IPDPS 2007): UML activity diagrams modeling CN jobs,
XMI interchange, XSLT-driven transformation to CNX client descriptors
and executable client programs, and a simulated Computational
Neighborhood cluster runtime to execute them.

Sub-packages:

* :mod:`repro.core` -- the paper's contribution: UML metamodel, XMI
  reader/writer, CNX language, XMI2CNX / CNX2Py / CNX2Java transforms,
  and the six-step pipeline (paper Fig. 6).
* :mod:`repro.cn` -- the Computational Neighborhood runtime: CNServer
  servants, JobManager/TaskManager, multicast discovery, message queues,
  task archives, tuple spaces, CN API, web-portal prototype.
* :mod:`repro.xslt` -- a from-scratch XSLT 1.0 / XPath 1.0 subset engine
  that runs the real stylesheets.
* :mod:`repro.apps` -- workloads: the guiding transitive-closure example
  plus Monte Carlo pi and tuple-space word count.

Quickstart::

    from repro.apps.floyd import run_parallel_floyd, random_weighted_graph

    matrix = random_weighted_graph(32, seed=1)
    result, artifacts = run_parallel_floyd(matrix, n_workers=4)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
