"""``repro.telemetry``: the CLI entry point for CN telemetry captures.

A thin alias so users can run ``python -m repro.telemetry`` without
knowing the subsystem lives under :mod:`repro.cn.telemetry` -- the
library API is re-exported here for convenience.
"""

from repro.cn.telemetry import (  # noqa: F401
    CriticalPath,
    MetricsRegistry,
    Span,
    SpanRecorder,
    Telemetry,
    chrome_trace,
    critical_path,
    orphan_spans,
    prometheus_text,
    read_jsonl,
    write_jsonl,
)
from repro.cn.telemetry.cli import main  # noqa: F401

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "SpanRecorder",
    "Span",
    "CriticalPath",
    "critical_path",
    "chrome_trace",
    "prometheus_text",
    "read_jsonl",
    "write_jsonl",
    "orphan_spans",
    "main",
]
