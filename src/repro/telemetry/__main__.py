from repro.cn.telemetry.cli import main

raise SystemExit(main())
