"""Result-tree construction and serialization for the XSLT engine.

Templates write into an :class:`OutputBuilder`, which records a lightweight
result tree (elements, attributes, text, comments).  Serialization honors
the subset of ``xsl:output`` we support: ``method`` (xml | text),
``indent``, and ``omit-xml-declaration``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Union

from repro.util.xmlutil import escape_attr, escape_text

__all__ = ["OutElement", "OutComment", "OutputBuilder", "OutputSettings", "serialize"]


@dataclass
class OutComment:
    text: str


@dataclass
class OutElement:
    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list[Union["OutElement", "OutComment", str]] = field(default_factory=list)

    def string_value(self) -> str:
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            elif isinstance(child, OutElement):
                parts.append(child.string_value())
        return "".join(parts)


@dataclass(frozen=True)
class OutputSettings:
    method: str = "xml"
    indent: bool = False
    omit_xml_declaration: bool = False
    encoding: str = "UTF-8"


class OutputError(ValueError):
    """Raised on malformed output construction (e.g. attribute after child)."""


class OutputBuilder:
    """Accumulates the result tree during a transform.

    The builder keeps a stack of open elements.  Text and elements append
    to the innermost open element, or to the top level when the stack is
    empty (text method output, or a root-level result tree fragment).
    """

    def __init__(self) -> None:
        self.top: list[Union[OutElement, OutComment, str]] = []
        self._stack: list[OutElement] = []

    # -- construction -------------------------------------------------------
    def _sink(self) -> list:
        return self._stack[-1].children if self._stack else self.top

    def start_element(self, name: str) -> OutElement:
        elem = OutElement(name)
        self._sink().append(elem)
        self._stack.append(elem)
        return elem

    def end_element(self) -> None:
        if not self._stack:
            raise OutputError("end_element with no open element")
        self._stack.pop()

    def add_attribute(self, name: str, value: str) -> None:
        if not self._stack:
            raise OutputError(
                f"xsl:attribute {name!r} outside of any element"
            )
        owner = self._stack[-1]
        if any(not isinstance(c, str) or c.strip() for c in owner.children):
            raise OutputError(
                f"attribute {name!r} added after children of <{owner.name}>"
            )
        owner.attributes[name] = value

    def add_text(self, text: str) -> None:
        if text:
            self._sink().append(text)

    def add_comment(self, text: str) -> None:
        self._sink().append(OutComment(text))

    def add_tree(self, node: Union[OutElement, OutComment, str]) -> None:
        self._sink().append(node)

    # -- results ------------------------------------------------------------
    def finish(self) -> list:
        if self._stack:
            raise OutputError(f"unclosed element <{self._stack[-1].name}>")
        return self.top

    def string_value(self) -> str:
        parts: list[str] = []
        for item in self.top:
            if isinstance(item, str):
                parts.append(item)
            elif isinstance(item, OutElement):
                parts.append(item.string_value())
        return "".join(parts)


def _write_xml(buf: io.StringIO, node, settings: OutputSettings, level: int) -> None:
    pad = "  " * level if settings.indent else ""
    nl = "\n" if settings.indent else ""
    if isinstance(node, str):
        buf.write(escape_text(node))
        return
    if isinstance(node, OutComment):
        buf.write(f"{pad}<!--{node.text}-->{nl}")
        return
    attrs = "".join(
        f' {k}="{escape_attr(v)}"' for k, v in node.attributes.items()
    )
    has_elem_children = any(not isinstance(c, str) for c in node.children)
    text_children = [c for c in node.children if isinstance(c, str)]
    if not node.children:
        buf.write(f"{pad}<{node.name}{attrs}/>{nl}")
        return
    if not has_elem_children:
        text = "".join(text_children)
        buf.write(f"{pad}<{node.name}{attrs}>{escape_text(text)}</{node.name}>{nl}")
        return
    buf.write(f"{pad}<{node.name}{attrs}>{nl}")
    for child in node.children:
        if isinstance(child, str):
            if child.strip() or not settings.indent:
                if settings.indent:
                    buf.write(f"{pad}  {escape_text(child.strip())}{nl}")
                else:
                    buf.write(escape_text(child))
        else:
            _write_xml(buf, child, settings, level + 1)
    buf.write(f"{pad}</{node.name}>{nl}")


def _write_text(buf: io.StringIO, node) -> None:
    if isinstance(node, str):
        buf.write(node)
    elif isinstance(node, OutElement):
        for child in node.children:
            _write_text(buf, child)
    # comments contribute nothing to text output


def serialize(top: list, settings: OutputSettings) -> str:
    """Serialize a finished result tree per *settings*."""
    buf = io.StringIO()
    if settings.method == "text":
        for node in top:
            _write_text(buf, node)
        return buf.getvalue()
    if not settings.omit_xml_declaration:
        buf.write('<?xml version="1.0"?>\n')
    for node in top:
        if isinstance(node, str):
            if node.strip():
                buf.write(escape_text(node))
        else:
            _write_xml(buf, node, settings, 0)
    return buf.getvalue()
