"""Tokenizer for the XPath 1.0 subset.

Implements the lexical rules of XPath 1.0 section 3.7, including the two
context-sensitive disambiguations the grammar requires:

* ``*`` is the multiply operator when preceded by a token that can end an
  operand; otherwise it is a name-test wildcard,
* an NCName followed by ``(`` is a function call unless it is a node-type
  test (``node``, ``text``, ``comment``, ``processing-instruction``), and
  an NCName followed by ``::`` is an axis name,
* the operator names ``and or mod div`` are operators only in operator
  position, names otherwise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "XPathLexError", "tokenize", "NODE_TYPES"]

NODE_TYPES = ("comment", "text", "processing-instruction", "node")

_OPERATOR_NAMES = ("and", "or", "mod", "div")

# Longest-match token table for punctuation.
_PUNCT = [
    "..",
    "::",
    "//",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ".",
    "@",
    ",",
    "/",
    "|",
    "+",
    "-",
    "=",
    "<",
    ">",
    "*",
    "$",
]

_NCNAME = r"[A-Za-z_][\w.-]*"
_QNAME_RE = re.compile(rf"({_NCNAME}):({_NCNAME}|\*)|({_NCNAME})")
_NUMBER_RE = re.compile(r"(\d+(\.\d*)?)|(\.\d+)")
_WS_RE = re.compile(r"\s+")


class XPathLexError(ValueError):
    """Raised when the expression contains an unrecognized character."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'name' | 'wildcard' | 'number' | 'literal' | 'operator' | 'axis' | 'function' | 'nodetype' | 'variable' | punctuation itself
    value: str
    pos: int

    def is_punct(self, *values: str) -> bool:
        return self.kind == "punct" and self.value in values


def _preceded_by_operand(tokens: list[Token]) -> bool:
    """True when the previous token can terminate an operand, which makes a
    following ``*`` / ``and`` / ``or`` / ``div`` / ``mod`` an operator."""
    if not tokens:
        return False
    prev = tokens[-1]
    if prev.kind in ("name", "wildcard", "number", "literal", "variable"):
        return True
    return prev.is_punct(")", "]", "..", ".")


def tokenize(expr: str) -> list[Token]:
    """Tokenize *expr* into a list of :class:`Token`."""
    tokens: list[Token] = []
    i, n = 0, len(expr)
    while i < n:
        ws = _WS_RE.match(expr, i)
        if ws:
            i = ws.end()
            continue
        ch = expr[i]
        # String literal
        if ch in ("'", '"'):
            end = expr.find(ch, i + 1)
            if end < 0:
                raise XPathLexError(f"unterminated literal at {i} in {expr!r}")
            tokens.append(Token("literal", expr[i + 1 : end], i))
            i = end + 1
            continue
        # Number
        num = _NUMBER_RE.match(expr, i)
        if num and (ch.isdigit() or (ch == "." and i + 1 < n and expr[i + 1].isdigit())):
            tokens.append(Token("number", num.group(0), i))
            i = num.end()
            continue
        # Variable reference
        if ch == "$":
            qname = _QNAME_RE.match(expr, i + 1)
            if not qname:
                raise XPathLexError(f"bad variable reference at {i} in {expr!r}")
            tokens.append(Token("variable", qname.group(0), i))
            i = qname.end()
            continue
        # Names (QName / NCName / prefix:*)
        if ch.isalpha() or ch == "_":
            qname = _QNAME_RE.match(expr, i)
            assert qname is not None
            name = qname.group(0)
            end = qname.end()
            # operator-name disambiguation
            if name in _OPERATOR_NAMES and _preceded_by_operand(tokens):
                tokens.append(Token("operator", name, i))
                i = end
                continue
            # Look ahead past whitespace
            j = end
            while j < n and expr[j].isspace():
                j += 1
            if expr[j : j + 2] == "::":
                tokens.append(Token("axis", name, i))
                i = j + 2
                continue
            if j < n and expr[j] == "(":
                if name in NODE_TYPES:
                    tokens.append(Token("nodetype", name, i))
                else:
                    tokens.append(Token("function", name, i))
                i = end
                continue
            if name.endswith(":*"):
                tokens.append(Token("wildcard", name, i))
            else:
                tokens.append(Token("name", name, i))
            i = end
            continue
        # Punctuation / operators
        for punct in _PUNCT:
            if expr.startswith(punct, i):
                if punct == "*" and _preceded_by_operand(tokens):
                    tokens.append(Token("operator", "*", i))
                elif punct == "*":
                    tokens.append(Token("wildcard", "*", i))
                elif punct in ("+", "-", "=", "!=", "<", "<=", ">", ">=", "|"):
                    tokens.append(Token("operator", punct, i))
                else:
                    tokens.append(Token("punct", punct, i))
                i += len(punct)
                break
        else:
            raise XPathLexError(f"unexpected character {ch!r} at {i} in {expr!r}")
    return tokens
