"""XPath 1.0 subset: lexer, parser, data model, evaluator, core functions.

This package is the query substrate under the XSLT engine (and is usable
standalone).  Typical use::

    from repro.xslt.xpath import Context, build_document, evaluate

    doc = build_document("<a><b x='1'/><b x='2'/></a>")
    nodes = evaluate("//b[@x='2']", Context(doc))
"""

from .datamodel import (
    XAttribute,
    XComment,
    XDocument,
    XElement,
    XNode,
    XText,
    build_document,
)
from .evaluator import (
    Context,
    XPathEvalError,
    evaluate,
    evaluate_boolean,
    evaluate_nodeset,
    evaluate_number,
    evaluate_string,
    node_test_matches,
)
from .functions import CORE_FUNCTIONS, XPathTypeError, to_boolean, to_nodeset, to_number, to_string
from .lexer import XPathLexError, tokenize
from .parser import XPathSyntaxError, parse

__all__ = [
    "XNode",
    "XDocument",
    "XElement",
    "XAttribute",
    "XText",
    "XComment",
    "build_document",
    "Context",
    "evaluate",
    "evaluate_nodeset",
    "evaluate_string",
    "evaluate_boolean",
    "evaluate_number",
    "node_test_matches",
    "parse",
    "tokenize",
    "CORE_FUNCTIONS",
    "to_string",
    "to_number",
    "to_boolean",
    "to_nodeset",
    "XPathLexError",
    "XPathSyntaxError",
    "XPathEvalError",
    "XPathTypeError",
]
