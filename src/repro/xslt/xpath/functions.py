"""XPath 1.0 core function library.

Implements the functions from sections 4.1-4.4 of the recommendation
that the XSLT engine and stylesheets use, with spec-faithful type
coercions (delegated to :mod:`repro.xslt.xpath.evaluator` helpers to
avoid an import cycle, the coercions live here and the evaluator imports
them).

Each function receives ``(context, *evaluated_args)`` where *context* is
the :class:`~repro.xslt.xpath.evaluator.Context` at the call site; this
is how zero-argument forms like ``string()`` or ``normalize-space()``
default to the context node.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Any, Callable

from .datamodel import XNode

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Context

__all__ = [
    "CORE_FUNCTIONS",
    "XPathTypeError",
    "to_string",
    "to_number",
    "to_boolean",
    "to_nodeset",
    "number_to_string",
]


class XPathTypeError(TypeError):
    """Raised when a value cannot be coerced to the required XPath type."""


# ---------------------------------------------------------------------------
# Type coercions (XPath 1.0 section 4, and 3.4 for booleans)
# ---------------------------------------------------------------------------

def number_to_string(value: float) -> str:
    """Format a number per the XPath string() rules (integers without a
    decimal point, NaN as 'NaN', infinities as 'Infinity')."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def to_string(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return number_to_string(value)
    if isinstance(value, int):
        return number_to_string(float(value))
    if isinstance(value, list):  # node-set: string-value of first node
        return value[0].string_value() if value else ""
    if isinstance(value, XNode):
        return value.string_value()
    if hasattr(value, "string_value"):  # XSLT result-tree fragment
        return value.string_value()
    raise XPathTypeError(f"cannot convert {type(value).__name__} to string")


def to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (list, XNode)) or hasattr(value, "string_value"):
        return to_number(to_string(value))
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return float("nan")
    raise XPathTypeError(f"cannot convert {type(value).__name__} to number")


def to_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value) and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, list):
        return len(value) > 0
    if isinstance(value, XNode):
        return True
    if hasattr(value, "string_value"):  # result-tree fragment: always true
        return True
    raise XPathTypeError(f"cannot convert {type(value).__name__} to boolean")


def to_nodeset(value: Any) -> list[XNode]:
    if isinstance(value, list):
        return value
    if isinstance(value, XNode):
        return [value]
    raise XPathTypeError(f"expected node-set, got {type(value).__name__}")


# ---------------------------------------------------------------------------
# Node-set functions (4.1)
# ---------------------------------------------------------------------------

def _fn_last(context: "Context") -> float:
    return float(context.size)


def _fn_position(context: "Context") -> float:
    return float(context.position)


def _fn_count(context: "Context", nodes: Any) -> float:
    return float(len(to_nodeset(nodes)))


def _context_or_first(context: "Context", args: tuple) -> XNode | None:
    if args:
        nodeset = to_nodeset(args[0])
        return nodeset[0] if nodeset else None
    return context.node


def _fn_local_name(context: "Context", *args: Any) -> str:
    node = _context_or_first(context, args)
    if node is None or not node.name:
        return ""
    return node.name.rpartition(":")[2]


def _fn_name(context: "Context", *args: Any) -> str:
    node = _context_or_first(context, args)
    return node.name if node is not None else ""


def _fn_namespace_uri(context: "Context", *args: Any) -> str:
    # We run without namespace processing (legacy undeclared-prefix XMI).
    return ""


def _fn_id(context: "Context", value: Any) -> list[XNode]:
    """id() per 4.1, keyed on attributes literally named ``id``.  The XMI
    vocabulary uses ``xmi.id`` instead, so stylesheets use key lookups via
    predicates rather than id(); this exists for completeness."""
    if isinstance(value, list):
        tokens: list[str] = []
        for node in value:
            tokens.extend(node.string_value().split())
    else:
        tokens = to_string(value).split()
    wanted = set(tokens)
    result = []
    root = context.node.root()
    for node in root.descendants():
        if node.node_type == "element":
            ident = node.get("id")  # type: ignore[attr-defined]
            if ident in wanted:
                result.append(node)
    return result


# ---------------------------------------------------------------------------
# String functions (4.2)
# ---------------------------------------------------------------------------

def _fn_string(context: "Context", *args: Any) -> str:
    if args:
        return to_string(args[0])
    return context.node.string_value()


def _fn_concat(context: "Context", *args: Any) -> str:
    if len(args) < 2:
        raise XPathTypeError("concat() requires at least two arguments")
    return "".join(to_string(a) for a in args)


def _fn_starts_with(context: "Context", a: Any, b: Any) -> bool:
    return to_string(a).startswith(to_string(b))


def _fn_contains(context: "Context", a: Any, b: Any) -> bool:
    return to_string(b) in to_string(a)


def _fn_substring_before(context: "Context", a: Any, b: Any) -> str:
    s, sub = to_string(a), to_string(b)
    idx = s.find(sub)
    return s[:idx] if idx >= 0 else ""


def _fn_substring_after(context: "Context", a: Any, b: Any) -> str:
    s, sub = to_string(a), to_string(b)
    idx = s.find(sub)
    return s[idx + len(sub) :] if idx >= 0 else ""


def _round_half_up(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    return math.floor(value + 0.5)


def _fn_substring(context: "Context", s: Any, start: Any, length: Any = None) -> str:
    """substring() with the spec's 1-based, rounded, NaN-propagating rules."""
    string = to_string(s)
    begin = _round_half_up(to_number(start))
    if math.isnan(begin):
        return ""
    if length is not None:
        count = _round_half_up(to_number(length))
        if math.isnan(count):
            return ""
        end = begin + count
    else:
        end = float("inf")
    chars = []
    for pos, ch in enumerate(string, start=1):
        if pos >= begin and pos < end:
            chars.append(ch)
    return "".join(chars)


def _fn_string_length(context: "Context", *args: Any) -> float:
    s = to_string(args[0]) if args else context.node.string_value()
    return float(len(s))


_WS_RUN = re.compile(r"\s+")


def _fn_normalize_space(context: "Context", *args: Any) -> str:
    s = to_string(args[0]) if args else context.node.string_value()
    return _WS_RUN.sub(" ", s.strip())


def _fn_translate(context: "Context", s: Any, frm: Any, to: Any) -> str:
    src, out = to_string(frm), to_string(to)
    table: dict[int, int | None] = {}
    for i, ch in enumerate(src):
        if ord(ch) in table:
            continue
        table[ord(ch)] = ord(out[i]) if i < len(out) else None
    return to_string(s).translate(table)


# ---------------------------------------------------------------------------
# Boolean functions (4.3)
# ---------------------------------------------------------------------------

def _fn_boolean(context: "Context", value: Any) -> bool:
    return to_boolean(value)


def _fn_not(context: "Context", value: Any) -> bool:
    return not to_boolean(value)


def _fn_true(context: "Context") -> bool:
    return True


def _fn_false(context: "Context") -> bool:
    return False


# ---------------------------------------------------------------------------
# Number functions (4.4)
# ---------------------------------------------------------------------------

def _fn_lang(context: "Context", wanted: Any) -> bool:
    """lang() per 4.3: matches the nearest xml:lang, case-insensitive,
    with sublanguage suffixes ('en' matches 'en-US')."""
    target = to_string(wanted).lower()
    node = context.node
    while node is not None:
        value = None
        if node.node_type == "element":
            # ElementTree stores xml:lang in Clark notation; accept both
            value = node.get("xml:lang") or node.get(  # type: ignore[attr-defined]
                "{http://www.w3.org/XML/1998/namespace}lang"
            )
        if value is not None:
            actual = value.lower()
            return actual == target or actual.startswith(target + "-")
        node = node.parent
    return False


def _fn_number(context: "Context", *args: Any) -> float:
    if args:
        return to_number(args[0])
    return to_number(context.node.string_value())


def _fn_sum(context: "Context", nodes: Any) -> float:
    return sum(to_number(n.string_value()) for n in to_nodeset(nodes))


def _fn_floor(context: "Context", value: Any) -> float:
    return math.floor(to_number(value))


def _fn_ceiling(context: "Context", value: Any) -> float:
    return math.ceil(to_number(value))


def _fn_round(context: "Context", value: Any) -> float:
    return _round_half_up(to_number(value))


CORE_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "last": _fn_last,
    "position": _fn_position,
    "count": _fn_count,
    "id": _fn_id,
    "local-name": _fn_local_name,
    "namespace-uri": _fn_namespace_uri,
    "name": _fn_name,
    "string": _fn_string,
    "concat": _fn_concat,
    "starts-with": _fn_starts_with,
    "contains": _fn_contains,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "substring": _fn_substring,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "translate": _fn_translate,
    "boolean": _fn_boolean,
    "not": _fn_not,
    "lang": _fn_lang,
    "true": _fn_true,
    "false": _fn_false,
    "number": _fn_number,
    "sum": _fn_sum,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}
