"""Recursive-descent parser for the XPath 1.0 subset.

Grammar follows the XPath 1.0 recommendation, sections 2-3.  Operator
precedence (loosest to tightest): ``or``, ``and``, equality, relational,
additive, multiplicative, unary minus, union ``|``, path.
"""

from __future__ import annotations

import functools

from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTypeTest,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from .lexer import Token, tokenize

__all__ = ["parse", "XPathSyntaxError", "AXES"]

AXES = frozenset(
    {
        "child",
        "descendant",
        "parent",
        "ancestor",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
        "attribute",
        "self",
        "descendant-or-self",
        "ancestor-or-self",
        "namespace",
    }
)


class XPathSyntaxError(ValueError):
    """Raised when the token stream does not form a valid expression."""


class _Parser:
    def __init__(self, expr: str) -> None:
        self.expr = expr
        self.tokens = tokenize(expr)
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise XPathSyntaxError(f"unexpected end of expression: {self.expr!r}")
        self.pos += 1
        return tok

    def accept_punct(self, *values: str) -> Token | None:
        tok = self.peek()
        if tok is not None and tok.is_punct(*values):
            self.pos += 1
            return tok
        return None

    def accept_operator(self, *values: str) -> Token | None:
        tok = self.peek()
        if tok is not None and tok.kind == "operator" and tok.value in values:
            self.pos += 1
            return tok
        return None

    def expect_punct(self, value: str) -> Token:
        tok = self.accept_punct(value)
        if tok is None:
            got = self.peek()
            raise XPathSyntaxError(
                f"expected {value!r} at token {got!r} in {self.expr!r}"
            )
        return tok

    # -- expression grammar --------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def _parse_binary(self, ops: tuple[str, ...], sub) -> Expr:
        left = sub()
        while True:
            tok = self.accept_operator(*ops)
            if tok is None:
                return left
            right = sub()
            left = BinaryOp(tok.value, left, right)

    def parse_or(self) -> Expr:
        return self._parse_binary(("or",), self.parse_and)

    def parse_and(self) -> Expr:
        return self._parse_binary(("and",), self.parse_equality)

    def parse_equality(self) -> Expr:
        return self._parse_binary(("=", "!="), self.parse_relational)

    def parse_relational(self) -> Expr:
        return self._parse_binary(("<", "<=", ">", ">="), self.parse_additive)

    def parse_additive(self) -> Expr:
        return self._parse_binary(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> Expr:
        return self._parse_binary(("*", "div", "mod"), self.parse_unary)

    def parse_unary(self) -> Expr:
        if self.accept_operator("-"):
            return UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        parts = [self.parse_path()]
        while self.accept_operator("|"):
            parts.append(self.parse_path())
        if len(parts) == 1:
            return parts[0]
        return UnionExpr(tuple(parts))

    # -- paths ----------------------------------------------------------------
    def parse_path(self) -> Expr:
        tok = self.peek()
        if tok is None:
            raise XPathSyntaxError(f"empty expression: {self.expr!r}")
        if self._starts_filter_expr(tok):
            filt = self.parse_filter()
            sep = self.peek()
            if sep is not None and sep.is_punct("/", "//"):
                self.pos += 1
                rel = self.parse_relative_path()
                return PathExpr(filt, sep.value == "//", rel)
            return filt
        return self.parse_location_path()

    def _starts_filter_expr(self, tok: Token) -> bool:
        if tok.kind in ("variable", "literal", "number", "function"):
            return True
        return tok.is_punct("(")

    def parse_filter(self) -> Expr:
        primary = self.parse_primary()
        predicates = self.parse_predicates()
        if predicates:
            return FilterExpr(primary, predicates)
        return primary

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "variable":
            return VariableRef(tok.value)
        if tok.kind == "literal":
            return StringLiteral(tok.value)
        if tok.kind == "number":
            return NumberLiteral(float(tok.value))
        if tok.kind == "function":
            return self.parse_function_call(tok.value)
        if tok.is_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        raise XPathSyntaxError(f"unexpected token {tok!r} in {self.expr!r}")

    def parse_function_call(self, name: str) -> Expr:
        self.expect_punct("(")
        args: list[Expr] = []
        if not self.accept_punct(")"):
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
            self.expect_punct(")")
        return FunctionCall(name, tuple(args))

    def parse_location_path(self) -> LocationPath:
        if self.accept_punct("//"):
            steps = [
                Step("descendant-or-self", NodeTypeTest("node")),
                *self.parse_relative_path().steps,
            ]
            return LocationPath(True, tuple(steps))
        if self.accept_punct("/"):
            tok = self.peek()
            if tok is not None and self._starts_step(tok):
                return LocationPath(True, self.parse_relative_path().steps)
            return LocationPath(True, ())
        return self.parse_relative_path()

    def _starts_step(self, tok: Token) -> bool:
        if tok.kind in ("name", "wildcard", "axis", "nodetype"):
            return True
        return tok.is_punct(".", "..", "@")

    def parse_relative_path(self) -> LocationPath:
        steps = [self.parse_step()]
        while True:
            if self.accept_punct("//"):
                steps.append(Step("descendant-or-self", NodeTypeTest("node")))
                steps.append(self.parse_step())
            elif self.accept_punct("/"):
                steps.append(self.parse_step())
            else:
                break
        return LocationPath(False, tuple(steps))

    def parse_step(self) -> Step:
        if self.accept_punct("."):
            return Step("self", NodeTypeTest("node"))
        if self.accept_punct(".."):
            return Step("parent", NodeTypeTest("node"))
        axis = "child"
        tok = self.peek()
        if tok is not None and tok.kind == "axis":
            if tok.value not in AXES:
                raise XPathSyntaxError(f"unknown axis {tok.value!r} in {self.expr!r}")
            axis = tok.value
            self.pos += 1
        elif self.accept_punct("@"):
            axis = "attribute"
        node_test = self.parse_node_test(axis)
        predicates = self.parse_predicates()
        return Step(axis, node_test, predicates)

    def parse_node_test(self, axis: str):
        tok = self.next()
        if tok.kind == "nodetype":
            self.expect_punct("(")
            literal = None
            nxt = self.peek()
            if nxt is not None and nxt.kind == "literal":
                if tok.value != "processing-instruction":
                    raise XPathSyntaxError(
                        f"{tok.value}() takes no argument in {self.expr!r}"
                    )
                literal = self.next().value
            self.expect_punct(")")
            return NodeTypeTest(tok.value, literal)
        if tok.kind in ("name", "wildcard"):
            return NameTest(tok.value)
        raise XPathSyntaxError(f"expected node test, got {tok!r} in {self.expr!r}")

    def parse_predicates(self) -> tuple[Expr, ...]:
        predicates: list[Expr] = []
        while self.accept_punct("["):
            predicates.append(self.parse_expr())
            self.expect_punct("]")
        return tuple(predicates)


@functools.lru_cache(maxsize=4096)
def parse(expr: str) -> Expr:
    """Parse *expr* into an AST.  Results are memoized: stylesheets
    evaluate the same select/test expressions once per context node, and
    reparsing dominated profile time before caching."""
    parser = _Parser(expr)
    tree = parser.parse_expr()
    leftover = parser.peek()
    if leftover is not None:
        raise XPathSyntaxError(f"trailing tokens at {leftover!r} in {expr!r}")
    return tree
