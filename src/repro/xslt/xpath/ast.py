"""Abstract syntax tree for the XPath 1.0 subset.

Nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.xslt.xpath.evaluator` so the AST stays a passive, printable
value (handy for tests and for XSLT pattern compilation, which reuses
location-path ASTs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

__all__ = [
    "Expr",
    "NumberLiteral",
    "StringLiteral",
    "VariableRef",
    "FunctionCall",
    "BinaryOp",
    "UnaryMinus",
    "UnionExpr",
    "NodeTest",
    "NameTest",
    "NodeTypeTest",
    "Step",
    "LocationPath",
    "FilterExpr",
    "PathExpr",
]


class Expr:
    """Marker base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class NumberLiteral(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLiteral(Expr):
    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class VariableRef(Expr):
    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # 'or' 'and' '=' '!=' '<' '<=' '>' '>=' '+' '-' '*' 'div' 'mod'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryMinus(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"-({self.operand})"


@dataclass(frozen=True)
class UnionExpr(Expr):
    parts: tuple[Expr, ...]

    def __str__(self) -> str:
        return " | ".join(map(str, self.parts))


class NodeTest:
    __slots__ = ()


@dataclass(frozen=True)
class NameTest(NodeTest):
    """``*``, ``prefix:*`` or a (possibly prefixed) name."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    @property
    def prefix_wildcard(self) -> Optional[str]:
        if self.name.endswith(":*") and self.name != "*":
            return self.name[:-2]
        return None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NodeTypeTest(NodeTest):
    """``node()``, ``text()``, ``comment()``, ``processing-instruction()``."""

    node_type: str
    literal: Optional[str] = None  # processing-instruction('name')

    def __str__(self) -> str:
        inner = repr(self.literal) if self.literal else ""
        return f"{self.node_type}({inner})"


@dataclass(frozen=True)
class Step:
    axis: str
    node_test: NodeTest
    predicates: tuple[Expr, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}::{self.node_test}{preds}"


@dataclass(frozen=True)
class LocationPath(Expr):
    absolute: bool
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        body = "/".join(map(str, self.steps))
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class FilterExpr(Expr):
    """A primary expression with predicates, e.g. ``$nodes[1]``."""

    primary: Expr
    predicates: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.primary}" + "".join(f"[{p}]" for p in self.predicates)


@dataclass(frozen=True)
class PathExpr(Expr):
    """FilterExpr '/' RelativeLocationPath (or '//')."""

    filter: Expr
    descendants: bool  # True when joined with '//'
    path: LocationPath

    def __str__(self) -> str:
        sep = "//" if self.descendants else "/"
        return f"{self.filter}{sep}{self.path}"
