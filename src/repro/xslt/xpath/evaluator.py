"""Evaluator for the XPath 1.0 subset.

Values follow the four XPath types:

* node-set  -> ``list[XNode]`` in document order, duplicate-free
* boolean   -> ``bool``
* number    -> ``float``
* string    -> ``str``

The entry points are :func:`evaluate` (any expression) and the typed
wrappers :func:`evaluate_nodeset` / :func:`evaluate_string` /
:func:`evaluate_boolean` / :func:`evaluate_number` used by the XSLT
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator, Mapping

from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTest,
    NodeTypeTest,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from .datamodel import XAttribute, XNode
from .functions import (
    CORE_FUNCTIONS,
    XPathTypeError,
    to_boolean,
    to_nodeset,
    to_number,
    to_string,
)
from .parser import parse

__all__ = [
    "Context",
    "XPathEvalError",
    "evaluate",
    "evaluate_nodeset",
    "evaluate_string",
    "evaluate_boolean",
    "evaluate_number",
    "node_test_matches",
]


class XPathEvalError(ValueError):
    """Raised for runtime evaluation failures (unknown variable/function)."""


@dataclass
class Context:
    """Evaluation context: node, position/size, variables, functions."""

    node: XNode
    position: int = 1
    size: int = 1
    variables: Mapping[str, Any] = field(default_factory=dict)
    functions: Mapping[str, Callable[..., Any]] = field(default_factory=lambda: CORE_FUNCTIONS)

    def with_node(self, node: XNode, position: int, size: int) -> "Context":
        return replace(self, node=node, position=position, size=size)


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------

def _axis_child(node: XNode) -> Iterator[XNode]:
    yield from node.children()


def _axis_descendant(node: XNode) -> Iterator[XNode]:
    yield from node.descendants()


def _axis_parent(node: XNode) -> Iterator[XNode]:
    if node.parent is not None:
        yield node.parent


def _axis_ancestor(node: XNode) -> Iterator[XNode]:
    yield from node.ancestors()


def _axis_self(node: XNode) -> Iterator[XNode]:
    yield node


def _axis_descendant_or_self(node: XNode) -> Iterator[XNode]:
    yield node
    yield from node.descendants()


def _axis_ancestor_or_self(node: XNode) -> Iterator[XNode]:
    yield node
    yield from node.ancestors()


def _axis_attribute(node: XNode) -> Iterator[XNode]:
    yield from node.attributes()


def _siblings(node: XNode) -> list[XNode]:
    if node.parent is None or isinstance(node, XAttribute):
        return []
    return node.parent.children()


def _axis_following_sibling(node: XNode) -> Iterator[XNode]:
    sibs = _siblings(node)
    try:
        idx = sibs.index(node)
    except ValueError:
        return
    yield from sibs[idx + 1 :]


def _axis_preceding_sibling(node: XNode) -> Iterator[XNode]:
    sibs = _siblings(node)
    try:
        idx = sibs.index(node)
    except ValueError:
        return
    # reverse document order (nearest first), per spec for reverse axes
    yield from reversed(sibs[:idx])


def _axis_following(node: XNode) -> Iterator[XNode]:
    anchor = node
    while anchor is not None:
        for sib in _axis_following_sibling(anchor):
            yield sib
            yield from sib.descendants()
        anchor = anchor.parent


def _axis_preceding(node: XNode) -> Iterator[XNode]:
    ancestors = set(id(a) for a in node.ancestors())
    root = node.root()
    collected = [
        n
        for n in _axis_descendant(root)
        if n.doc_order < node.doc_order
        and id(n) not in ancestors
        and not isinstance(n, XAttribute)
    ]
    yield from reversed(collected)


_AXES: dict[str, Callable[[XNode], Iterator[XNode]]] = {
    "child": _axis_child,
    "descendant": _axis_descendant,
    "parent": _axis_parent,
    "ancestor": _axis_ancestor,
    "self": _axis_self,
    "descendant-or-self": _axis_descendant_or_self,
    "ancestor-or-self": _axis_ancestor_or_self,
    "attribute": _axis_attribute,
    "following-sibling": _axis_following_sibling,
    "preceding-sibling": _axis_preceding_sibling,
    "following": _axis_following,
    "preceding": _axis_preceding,
}

_REVERSE_AXES = frozenset({"ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent"})


# ---------------------------------------------------------------------------
# Node tests
# ---------------------------------------------------------------------------

def node_test_matches(test: NodeTest, node: XNode, axis: str = "child") -> bool:
    """Whether *node* passes *test* along *axis* (principal node type is
    'attribute' on the attribute axis, 'element' otherwise)."""
    principal = "attribute" if axis == "attribute" else "element"
    if isinstance(test, NodeTypeTest):
        if test.node_type == "node":
            return True
        return node.node_type == test.node_type
    assert isinstance(test, NameTest)
    if node.node_type != principal:
        return False
    if test.is_wildcard:
        return True
    prefix = test.prefix_wildcard
    if prefix is not None:
        return node.name.startswith(prefix + ":")
    return node.name == test.name


# ---------------------------------------------------------------------------
# Core evaluation
# ---------------------------------------------------------------------------

def _dedup_doc_order(nodes: Iterable[XNode]) -> list[XNode]:
    seen: set[int] = set()
    unique: list[XNode] = []
    in_order = True
    last = -1
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
            if node.doc_order < last:
                in_order = False
            last = node.doc_order
    if not in_order:
        unique.sort(key=lambda n: n.doc_order)
    return unique


def _attr_equals_const(pred: Expr, context: Context):
    """Detect the predicate shape ``@name = <literal|$var-string>`` (either
    side) and return ``(attr_name, wanted_string)``; None when it does not
    apply.  The RHS is context-independent, so the comparison can run as a
    plain string check per candidate -- the hottest predicate shape in the
    XMI stylesheets (id/idref joins)."""
    if not isinstance(pred, BinaryOp) or pred.op != "=":
        return None
    for attr_side, value_side in ((pred.left, pred.right), (pred.right, pred.left)):
        if (
            isinstance(attr_side, LocationPath)
            and not attr_side.absolute
            and len(attr_side.steps) == 1
            and attr_side.steps[0].axis == "attribute"
            and isinstance(attr_side.steps[0].node_test, NameTest)
            and not attr_side.steps[0].predicates
            and not attr_side.steps[0].node_test.is_wildcard
        ):
            if isinstance(value_side, StringLiteral):
                return attr_side.steps[0].node_test.name, value_side.value
            if isinstance(value_side, VariableRef):
                try:
                    value = context.variables[value_side.name]
                except KeyError:
                    return None
                if isinstance(value, str):
                    return attr_side.steps[0].node_test.name, value
    return None


def _apply_predicates(
    candidates: list[XNode], predicates: tuple[Expr, ...], context: Context, reverse: bool
) -> list[XNode]:
    current = candidates
    for pred in predicates:
        fast = _attr_equals_const(pred, context) if len(current) > 3 else None
        if fast is not None:
            attr_name, wanted = fast
            current = [
                n
                for n in current
                if n.node_type == "element" and n.get(attr_name) == wanted  # type: ignore[attr-defined]
            ]
            continue
        size = len(current)
        kept: list[XNode] = []
        for idx, node in enumerate(current):
            position = idx + 1  # candidates are already in axis order
            sub = context.with_node(node, position, size)
            value = _eval(pred, sub)
            if isinstance(value, float):
                ok = value == position
            elif isinstance(value, (int,)) and not isinstance(value, bool):
                ok = float(value) == position
            else:
                ok = to_boolean(value)
            if ok:
                kept.append(node)
        current = kept
    return current


def _eval_step(step: Step, node: XNode, context: Context) -> list[XNode]:
    axis_fn = _AXES.get(step.axis)
    if axis_fn is None:
        raise XPathEvalError(f"unsupported axis {step.axis!r}")
    candidates = [
        n for n in axis_fn(node) if node_test_matches(step.node_test, n, step.axis)
    ]
    selected = _apply_predicates(candidates, step.predicates, context, step.axis in _REVERSE_AXES)
    return selected


def _name_index(root: XNode) -> dict[str, list[XNode]]:
    """Element-name index over *root*'s subtree (cached on the node).

    ``//Name`` is by far the hottest query shape in real stylesheets; the
    index turns it from a full-tree scan into a dict lookup.  Safe to
    cache because the tree is immutable during evaluation."""
    cached = getattr(root, "_name_index_cache", None)
    if cached is None:
        cached = {}
        for descendant in root.descendants_list():
            if descendant.node_type == "element":
                cached.setdefault(descendant.name, []).append(descendant)
        try:
            root._name_index_cache = cached  # type: ignore[attr-defined]
        except AttributeError:
            pass  # slotted node without cache slot: skip caching
    return cached


def _is_slash_slash_name(steps: tuple[Step, ...]) -> bool:
    """Whether steps begin with the `//Name` expansion: a bare
    descendant-or-self::node() step followed by child::<QName>."""
    if len(steps) < 2:
        return False
    first, second = steps[0], steps[1]
    return (
        first.axis == "descendant-or-self"
        and isinstance(first.node_test, NodeTypeTest)
        and first.node_test.node_type == "node"
        and not first.predicates
        and second.axis == "child"
        and isinstance(second.node_test, NameTest)
        and not second.node_test.is_wildcard
        and second.node_test.prefix_wildcard is None
    )


def _eval_location_path(path: LocationPath, context: Context) -> list[XNode]:
    if path.absolute:
        start: list[XNode] = [context.node.root()]
    else:
        start = [context.node]
    steps = path.steps
    current = start
    # fast path: leading //Name resolved via the per-subtree name index
    if len(current) == 1 and _is_slash_slash_name(steps):
        name_step = steps[1]
        candidates = _name_index(current[0]).get(name_step.node_test.name, [])  # type: ignore[union-attr]
        if name_step.predicates:
            # predicate positions are per parent (XPath abbreviation
            # semantics), so filter each sibling group independently
            groups: dict[int, list[XNode]] = {}
            for candidate in candidates:
                groups.setdefault(id(candidate.parent), []).append(candidate)
            kept: list[XNode] = []
            for group in groups.values():
                kept.extend(
                    _apply_predicates(group, name_step.predicates, context, False)
                )
            current = _dedup_doc_order(kept)
        else:
            current = list(candidates)
        steps = steps[2:]
    for step in steps:
        gathered: list[XNode] = []
        for node in current:
            gathered.extend(_eval_step(step, node, context))
        current = _dedup_doc_order(gathered)
    return current


def _compare(op: str, left: Any, right: Any) -> bool:
    """XPath comparison semantics (3.4): node-sets compare existentially,
    except against booleans, where the whole set converts via boolean()."""
    if op in ("=", "!=") and (isinstance(left, bool) or isinstance(right, bool)):
        return _compare_atomic(op, to_boolean(left), to_boolean(right))
    if isinstance(left, list) and isinstance(right, list):
        rvals = [n.string_value() for n in right]
        for lnode in left:
            lval = lnode.string_value()
            for rval in rvals:
                if _compare_atomic(op, lval, rval):
                    return True
        return False
    if isinstance(left, list):
        return any(_compare_atomic(op, _coerce_for(right, n.string_value()), right) for n in left)
    if isinstance(right, list):
        swapped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return _compare(swapped, right, left)
    return _compare_atomic(op, left, right)


def _coerce_for(other: Any, string_value: str) -> Any:
    """Convert a node's string-value to the type dictated by *other*."""
    if isinstance(other, (int, float)) and not isinstance(other, bool):
        return to_number(string_value)
    return string_value


def _compare_atomic(op: str, left: Any, right: Any) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    lnum, rnum = to_number(left), to_number(right)
    if math.isnan(lnum) or math.isnan(rnum):
        return False
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    if op == ">=":
        return lnum >= rnum
    raise XPathEvalError(f"unknown comparison {op!r}")


def _eval(expr: Expr, context: Context) -> Any:
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, StringLiteral):
        return expr.value
    if isinstance(expr, VariableRef):
        try:
            return context.variables[expr.name]
        except KeyError:
            raise XPathEvalError(f"unbound variable ${expr.name}") from None
    if isinstance(expr, FunctionCall):
        fn = context.functions.get(expr.name)
        if fn is None:
            raise XPathEvalError(f"unknown function {expr.name}()")
        args = [_eval(a, context) for a in expr.args]
        try:
            return fn(context, *args)
        except TypeError as exc:
            raise XPathEvalError(f"bad call to {expr.name}(): {exc}") from exc
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, context)
    if isinstance(expr, UnaryMinus):
        return -to_number(_eval(expr.operand, context))
    if isinstance(expr, UnionExpr):
        combined: list[XNode] = []
        for part in expr.parts:
            combined.extend(to_nodeset(_eval(part, context)))
        return _dedup_doc_order(combined)
    if isinstance(expr, LocationPath):
        return _eval_location_path(expr, context)
    if isinstance(expr, FilterExpr):
        base = to_nodeset(_eval(expr.primary, context))
        return _apply_predicates(list(base), expr.predicates, context, reverse=False)
    if isinstance(expr, PathExpr):
        base = to_nodeset(_eval(expr.filter, context))
        if expr.descendants:
            expanded: list[XNode] = []
            for node in base:
                expanded.append(node)
                expanded.extend(node.descendants())
            base = _dedup_doc_order(expanded)
        gathered: list[XNode] = []
        for node in base:
            sub = context.with_node(node, 1, 1)
            gathered.extend(_eval_location_path(expr.path, sub))
        return _dedup_doc_order(gathered)
    raise XPathEvalError(f"cannot evaluate {expr!r}")


def _eval_binary(expr: BinaryOp, context: Context) -> Any:
    op = expr.op
    if op == "or":
        return to_boolean(_eval(expr.left, context)) or to_boolean(_eval(expr.right, context))
    if op == "and":
        return to_boolean(_eval(expr.left, context)) and to_boolean(_eval(expr.right, context))
    left = _eval(expr.left, context)
    right = _eval(expr.right, context)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    lnum, rnum = to_number(left), to_number(right)
    if op == "+":
        return lnum + rnum
    if op == "-":
        return lnum - rnum
    if op == "*":
        return lnum * rnum
    if op == "div":
        if rnum == 0:
            if lnum == 0 or math.isnan(lnum):
                return float("nan")
            return math.copysign(float("inf"), lnum) * math.copysign(1.0, rnum)
        return lnum / rnum
    if op == "mod":
        if rnum == 0:
            return float("nan")
        return math.fmod(lnum, rnum)
    raise XPathEvalError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def evaluate(expr: str | Expr, context: Context) -> Any:
    """Evaluate *expr* (source string or pre-parsed AST) in *context*."""
    tree = parse(expr) if isinstance(expr, str) else expr
    return _eval(tree, context)


def evaluate_nodeset(expr: str | Expr, context: Context) -> list[XNode]:
    value = evaluate(expr, context)
    try:
        return to_nodeset(value)
    except XPathTypeError as exc:
        raise XPathEvalError(f"{expr} did not yield a node-set: {exc}") from exc


def evaluate_string(expr: str | Expr, context: Context) -> str:
    return to_string(evaluate(expr, context))


def evaluate_boolean(expr: str | Expr, context: Context) -> bool:
    return to_boolean(evaluate(expr, context))


def evaluate_number(expr: str | Expr, context: Context) -> float:
    return to_number(evaluate(expr, context))
