"""XPath 1.0 data model over ElementTree.

XPath needs parent pointers, document order, and distinct node kinds for
documents, elements, attributes, text, and comments -- none of which
:mod:`xml.etree.ElementTree` provides.  This module wraps a parsed
ElementTree into an immutable node tree exposing exactly the properties
the evaluator requires:

* ``parent`` links and a global ``doc_order`` index (attributes order
  after their owner element, before its children, matching the spec's
  "attribute nodes occur before the children of the element"),
* the *string-value* of every node kind per XPath 1.0 section 5,
* expanded names (we run without namespace processing; the legacy XMI
  vocabulary uses undeclared ``UML:`` prefixes which we treat as part of
  the name, the same way the paper's early-2000s toolchain did).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterator, Optional

__all__ = [
    "XNode",
    "XDocument",
    "XElement",
    "XAttribute",
    "XText",
    "XComment",
    "build_document",
]

_DOT_PREFIX_KINDS = ("element",)


class XNode:
    """Base class for all XPath nodes."""

    __slots__ = ("parent", "doc_order", "_desc_cache", "_name_index_cache")

    node_type = "node"

    def __init__(self, parent: Optional["XNode"]) -> None:
        self.parent = parent
        self.doc_order = -1  # assigned by build_document
        self._desc_cache: Optional[list["XNode"]] = None
        self._name_index_cache: Optional[dict] = None

    # -- accessors overridden per kind ------------------------------------
    @property
    def name(self) -> str:
        """The node's expanded name; '' for unnamed kinds."""
        return ""

    def string_value(self) -> str:
        raise NotImplementedError

    def children(self) -> list["XNode"]:
        return []

    def attributes(self) -> list["XAttribute"]:
        return []

    # -- tree walking ------------------------------------------------------
    def root(self) -> "XNode":
        node: XNode = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["XNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["XNode"]:
        yield from self.descendants_list()

    def descendants_list(self) -> list["XNode"]:
        """All descendants in document order, cached.

        The tree is immutable once evaluation starts (strip-space runs
        before the first query), so the cache never needs invalidation;
        ``//``-heavy stylesheets hit this on every apply-templates."""
        cached = self._desc_cache
        if cached is None:
            cached = []
            for child in self.children():
                cached.append(child)
                cached.extend(child.descendants_list())
            self._desc_cache = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name or self.node_type} @{self.doc_order}>"


class XDocument(XNode):
    """The root node (distinct from the document element, per XPath)."""

    __slots__ = ("_children",)

    node_type = "document"

    def __init__(self) -> None:
        super().__init__(None)
        self._children: list[XNode] = []

    def children(self) -> list[XNode]:
        return self._children

    def string_value(self) -> str:
        return "".join(
            c.string_value() for c in self._children if c.node_type in ("element", "text")
        )

    @property
    def document_element(self) -> "XElement":
        for child in self._children:
            if isinstance(child, XElement):
                return child
        raise ValueError("document has no document element")


class XElement(XNode):
    __slots__ = ("_name", "_children", "_attributes", "etree")

    node_type = "element"

    def __init__(self, parent: Optional[XNode], name: str, etree: Optional[ET.Element] = None) -> None:
        super().__init__(parent)
        self._name = name
        self._children: list[XNode] = []
        self._attributes: list[XAttribute] = []
        self.etree = etree

    @property
    def name(self) -> str:
        return self._name

    def children(self) -> list[XNode]:
        return self._children

    def attributes(self) -> list["XAttribute"]:
        return self._attributes

    def get(self, attr_name: str) -> Optional[str]:
        for attr in self._attributes:
            if attr.name == attr_name:
                return attr.value
        return None

    def string_value(self) -> str:
        parts: list[str] = []
        for node in self.descendants():
            if node.node_type == "text":
                parts.append(node.string_value())
        return "".join(parts)


class XAttribute(XNode):
    __slots__ = ("_name", "value")

    node_type = "attribute"

    def __init__(self, parent: XNode, name: str, value: str) -> None:
        super().__init__(parent)
        self._name = name
        self.value = value

    @property
    def name(self) -> str:
        return self._name

    def string_value(self) -> str:
        return self.value


class XText(XNode):
    __slots__ = ("value",)

    node_type = "text"

    def __init__(self, parent: XNode, value: str) -> None:
        super().__init__(parent)
        self.value = value

    def string_value(self) -> str:
        return self.value


class XComment(XNode):
    __slots__ = ("value",)

    node_type = "comment"

    def __init__(self, parent: XNode, value: str) -> None:
        super().__init__(parent)
        self.value = value

    def string_value(self) -> str:
        return self.value


_RESTORED_PREFIXES = ("UML",)


def _restore(name: str, restore_prefixes: bool) -> str:
    """Map ``UML.ActionState`` (our undeclared-prefix parse form) back to
    ``UML:ActionState`` so XPath name tests written against the paper's
    vocabulary match.  Only the UML prefix is restored; XMI 1.2 names
    like ``XMI.header`` genuinely contain dots."""
    if restore_prefixes and "." in name:
        head, _, tail = name.partition(".")
        if head in _RESTORED_PREFIXES:
            return f"{head}:{tail}"
    return name


def _convert(elem: ET.Element, parent: XNode, restore_prefixes: bool) -> XElement:
    tag = elem.tag
    if not isinstance(tag, str):  # comments / PIs parsed by ElementTree
        node = XComment(parent, elem.text or "")
        parent.children().append(node)  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]
    xelem = XElement(parent, _restore(tag, restore_prefixes), etree=elem)
    # Attribute names are never prefix-rewritten: XMI attributes such as
    # ``xmi.id`` legitimately contain dots and must stay as-is.
    for key, value in elem.attrib.items():
        xelem._attributes.append(XAttribute(xelem, key, value))
    if elem.text:
        xelem._children.append(XText(xelem, elem.text))
    for child in elem:
        _convert(child, xelem, restore_prefixes)
        if child.tail:
            xelem._children.append(XText(xelem, child.tail))
    parent.children().append(xelem)
    return xelem


def _number(node: XNode, counter: list[int]) -> None:
    node.doc_order = counter[0]
    counter[0] += 1
    for attr in node.attributes():
        attr.doc_order = counter[0]
        counter[0] += 1
    for child in node.children():
        _number(child, counter)


def build_document(root: ET.Element | str, *, restore_prefixes: bool = False) -> XDocument:
    """Wrap a parsed ElementTree (or XML string) as an :class:`XDocument`.

    ``restore_prefixes`` maps ``Prefix.Local`` tag/attr names back to
    ``Prefix:Local`` (see :mod:`repro.util.xmlutil.parse_prefixed`).
    """
    if isinstance(root, str):
        root = ET.fromstring(root)
    doc = XDocument()
    _convert(root, doc, restore_prefixes)
    _number(doc, [0])
    return doc
