"""XSLT 1.0 subset engine.

Supports the instruction set the repository's stylesheets (and a useful
superset of real-world sheets) need:

``xsl:template`` (match/name/mode/priority), ``xsl:apply-templates``
(select/mode/sort/with-param), ``xsl:call-template``, ``xsl:value-of``,
``xsl:for-each`` (with sort), ``xsl:if``, ``xsl:choose/when/otherwise``,
``xsl:text``, ``xsl:element``, ``xsl:attribute``, ``xsl:comment``,
``xsl:variable``/``xsl:param``/``xsl:with-param`` (select or content ->
result-tree fragments), ``xsl:copy``, ``xsl:copy-of``, ``xsl:message``,
``xsl:sort``, ``xsl:include``, ``xsl:output``, ``xsl:strip-space`` /
``xsl:preserve-space``, attribute value templates, built-in template
rules, template conflict resolution by priority and document order,
``xsl:key``/``key()`` hash joins, and the XSLT additions ``current()``
and ``generate-id()`` to the XPath function library.

``xsl:import`` with real
import precedence is supported (importing sheets outrank imports), as is
``xsl:apply-imports``.

Omissions (documented, not silently wrong): ``xsl:number``,
``document()``, namespace-alias, and extension elements.  The engine raises
:class:`XsltError` on any unsupported instruction so stylesheets fail
loudly rather than misbehave.
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from .output import OutComment, OutElement, OutputBuilder, OutputSettings, serialize
from .patterns import Pattern, compile_pattern
from .xpath.datamodel import (
    XAttribute,
    XComment,
    XDocument,
    XElement,
    XNode,
    XText,
    build_document,
)
from .xpath.evaluator import Context, evaluate, evaluate_boolean, evaluate_nodeset, evaluate_string
from .xpath.functions import CORE_FUNCTIONS, to_nodeset, to_number, to_string

XSL_NS = "http://www.w3.org/1999/XSL/Transform"
_XSL = "{%s}" % XSL_NS

__all__ = ["Stylesheet", "Transformer", "XsltError", "ResultTreeFragment", "XSL_NS"]


class XsltError(Exception):
    """Raised for stylesheet compilation or execution errors."""


class ResultTreeFragment:
    """The value of an ``xsl:variable`` with content (an RTF).

    Converts to string via the concatenated text, and can be spliced into
    the output by ``xsl:copy-of``.
    """

    def __init__(self, top: list) -> None:
        self.top = top

    def string_value(self) -> str:
        parts: list[str] = []

        def walk(item) -> None:
            if isinstance(item, str):
                parts.append(item)
            elif isinstance(item, OutElement):
                for child in item.children:
                    walk(child)

        for item in self.top:
            walk(item)
        return "".join(parts)


@dataclass
class TemplateRule:
    pattern: Optional[Pattern]
    name: Optional[str]
    mode: Optional[str]
    priority: float
    params: list[ET.Element]
    body: list
    order: int
    precedence: int = 0  # import precedence; importer > imported


@dataclass
class _Frame:
    """One variable scope."""

    bindings: dict[str, Any] = field(default_factory=dict)


def _is_xsl(elem: ET.Element, local: str | None = None) -> bool:
    if not isinstance(elem.tag, str) or not elem.tag.startswith(_XSL):
        return False
    return local is None or elem.tag == _XSL + local


def _local(elem: ET.Element) -> str:
    return elem.tag[len(_XSL) :]


def _body_items(elem: ET.Element) -> list:
    """Mixed-content body of a stylesheet element: interleaved text and
    child elements, with stylesheet-whitespace stripping applied."""
    items: list = []
    if elem.text and elem.text.strip():
        items.append(elem.text)
    for child in elem:
        items.append(child)
        if child.tail and child.tail.strip():
            items.append(child.tail)
    return items


# ---------------------------------------------------------------------------
# Attribute value templates
# ---------------------------------------------------------------------------

def _split_avt(value: str) -> list[tuple[bool, str]]:
    """Split an attribute value template into (is_expr, text) chunks."""
    chunks: list[tuple[bool, str]] = []
    buf: list[str] = []
    i, n = 0, len(value)
    while i < n:
        ch = value[i]
        if ch == "{":
            if value.startswith("{{", i):
                buf.append("{")
                i += 2
                continue
            end = value.find("}", i)
            if end < 0:
                raise XsltError(f"unterminated {{...}} in AVT: {value!r}")
            if buf:
                chunks.append((False, "".join(buf)))
                buf = []
            chunks.append((True, value[i + 1 : end]))
            i = end + 1
            continue
        if ch == "}":
            if value.startswith("}}", i):
                buf.append("}")
                i += 2
                continue
            raise XsltError(f"lone '}}' in AVT: {value!r}")
        buf.append(ch)
        i += 1
    if buf:
        chunks.append((False, "".join(buf)))
    return chunks


# ---------------------------------------------------------------------------
# Stylesheet
# ---------------------------------------------------------------------------

class Stylesheet:
    """A compiled stylesheet: template rules, output settings, globals."""

    def __init__(self) -> None:
        self.rules: list[TemplateRule] = []
        self.named: dict[str, TemplateRule] = {}
        self.output = OutputSettings()
        self.globals: list[ET.Element] = []  # top-level xsl:variable / xsl:param
        self.strip_space: set[str] = set()
        self.preserve_space: set[str] = set()
        self.keys: dict[str, tuple[Pattern, str]] = {}
        self._order = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_string(cls, text: str, *, base_dir: Optional[Path] = None) -> "Stylesheet":
        sheet = cls()
        sheet._load(ET.fromstring(text), base_dir)
        return sheet

    @classmethod
    def from_file(cls, path: str | Path) -> "Stylesheet":
        path = Path(path)
        sheet = cls()
        sheet._load(ET.fromstring(path.read_text()), path.parent)
        return sheet

    def _load(
        self,
        root: ET.Element,
        base_dir: Optional[Path],
        precedence_counter: Optional[list[int]] = None,
    ) -> None:
        """Compile *root*.  ``precedence_counter`` is a shared mutable
        counter implementing XSLT import precedence: imports are loaded
        first (depth-first, in document order), each complete sheet takes
        the next counter value, so an importing sheet always outranks
        everything it imports and later imports outrank earlier ones."""
        if root.tag not in (_XSL + "stylesheet", _XSL + "transform"):
            raise XsltError(f"not a stylesheet root: {root.tag}")
        if precedence_counter is None:
            precedence_counter = [0]
        # imports first (the spec requires them first in the document)
        for child in root:
            if isinstance(child.tag, str) and child.tag == _XSL + "import":
                if base_dir is None:
                    raise XsltError("xsl:import requires a base directory")
                href = child.get("href")
                if not href:
                    raise XsltError("xsl:import without href")
                imported = Stylesheet()
                path = Path(base_dir) / href
                imported._load(
                    ET.fromstring(path.read_text()), path.parent, precedence_counter
                )
                self._merge(imported)
        self._current_precedence = precedence_counter[0]
        precedence_counter[0] += 1
        for child in root:
            if not isinstance(child.tag, str):
                continue
            if not child.tag.startswith(_XSL):
                continue  # top-level literal elements are ignored
            local = _local(child)
            if local == "import":
                continue  # handled above
            if local == "template":
                self._add_template(child)
            elif local == "output":
                self.output = OutputSettings(
                    method=child.get("method", "xml"),
                    indent=child.get("indent", "no") == "yes",
                    omit_xml_declaration=child.get("omit-xml-declaration", "no") == "yes",
                    encoding=child.get("encoding", "UTF-8"),
                )
            elif local in ("variable", "param"):
                self.globals.append(child)
            elif local == "strip-space":
                self.strip_space.update(child.get("elements", "").split())
            elif local == "preserve-space":
                self.preserve_space.update(child.get("elements", "").split())
            elif local == "include":
                if base_dir is None:
                    raise XsltError("xsl:include requires a base directory")
                href = child.get("href")
                if not href:
                    raise XsltError("xsl:include without href")
                included = Stylesheet.from_file(base_dir / href)
                self._merge(included)
            elif local == "key":
                name = child.get("name")
                match = child.get("match")
                use = child.get("use")
                if not (name and match and use):
                    raise XsltError("xsl:key requires name, match and use")
                self.keys[name] = (compile_pattern(match), use)
            elif local in ("namespace-alias", "decimal-format", "attribute-set"):
                raise XsltError(f"unsupported top-level instruction xsl:{local}")
            # anything else at top level: ignore (comments etc.)

    def _merge(self, other: "Stylesheet") -> None:
        for rule in other.rules:
            rule.order = self._order
            self._order += 1
            self.rules.append(rule)  # keeps the precedence it was loaded with
        self.named.update(other.named)
        self.globals.extend(other.globals)
        self.strip_space |= other.strip_space
        self.preserve_space |= other.preserve_space
        self.keys.update(other.keys)

    def _add_template(self, elem: ET.Element) -> None:
        match = elem.get("match")
        name = elem.get("name")
        if match is None and name is None:
            raise XsltError("xsl:template needs match= or name=")
        mode = elem.get("mode")
        params = [c for c in elem if isinstance(c.tag, str) and c.tag == _XSL + "param"]
        body = [
            item
            for item in _body_items(elem)
            if not (isinstance(item, ET.Element) and _is_xsl(item, "param"))
        ]
        precedence = getattr(self, "_current_precedence", 0)
        if match is not None:
            pattern = compile_pattern(match)
            explicit = elem.get("priority")
            # Per spec, a union pattern behaves as separate rules, each with
            # its own default priority.
            for alt in pattern.split():
                priority = (
                    float(explicit) if explicit is not None else alt.default_priority()
                )
                rule = TemplateRule(
                    alt, name, mode, priority, params, body, self._order, precedence
                )
                self._order += 1
                self.rules.append(rule)
        else:
            rule = TemplateRule(None, name, mode, 0.0, params, body, self._order, precedence)
            self._order += 1
        if name is not None:
            self.named[name] = TemplateRule(
                None, name, mode, 0.0, params, body, self._order, precedence
            )

    # -- rule lookup ------------------------------------------------------------
    def find_rule(
        self,
        node: XNode,
        mode: Optional[str],
        context: Context,
        *,
        max_precedence: Optional[int] = None,
    ) -> Optional[TemplateRule]:
        """The winning rule for *node*; ``max_precedence`` restricts the
        search to strictly lower import precedence (xsl:apply-imports)."""
        best: Optional[TemplateRule] = None
        for rule in self.rules:
            if rule.pattern is None or rule.mode != mode:
                continue
            if max_precedence is not None and rule.precedence >= max_precedence:
                continue
            if not rule.pattern.matches(node, context):
                continue
            if best is None or (
                (rule.precedence, rule.priority, rule.order)
                > (best.precedence, best.priority, best.order)
            ):
                best = rule
        return best


# ---------------------------------------------------------------------------
# Transformer
# ---------------------------------------------------------------------------

class Transformer:
    """Executes a :class:`Stylesheet` against a source document."""

    def __init__(
        self,
        stylesheet: Stylesheet,
        *,
        extra_functions: Optional[Mapping[str, Any]] = None,
        message_stream=None,
    ) -> None:
        self.stylesheet = stylesheet
        self.extra_functions = dict(extra_functions or {})
        self.message_stream = message_stream if message_stream is not None else sys.stderr
        self._current_node: Optional[XNode] = None
        self._current_rule: Optional[TemplateRule] = None
        self._id_cache: dict[int, str] = {}
        self._key_tables: dict[str, dict[str, list[XNode]]] = {}
        self._doc: Optional[XDocument] = None

    # -- public API ---------------------------------------------------------
    def transform(
        self,
        source: Union[str, ET.Element, XDocument],
        params: Optional[Mapping[str, Any]] = None,
        *,
        restore_prefixes: bool = False,
    ) -> str:
        top = self.transform_to_tree(source, params, restore_prefixes=restore_prefixes)
        return serialize(top, self.stylesheet.output)

    def transform_to_tree(
        self,
        source: Union[str, ET.Element, XDocument],
        params: Optional[Mapping[str, Any]] = None,
        *,
        restore_prefixes: bool = False,
    ) -> list:
        if isinstance(source, XDocument):
            doc = source
        else:
            doc = build_document(source, restore_prefixes=restore_prefixes)
        self._apply_strip_space(doc)
        self._doc = doc
        self._key_tables = {}
        builder = OutputBuilder()
        frames = [_Frame()]
        self._bind_globals(doc, frames, dict(params or {}))
        self._apply_templates([doc], None, {}, doc, frames, builder)
        return builder.finish()

    # -- setup ----------------------------------------------------------------
    def _apply_strip_space(self, doc: XDocument) -> None:
        strip = self.stylesheet.strip_space
        if not strip:
            return
        preserve = self.stylesheet.preserve_space

        def should_strip(name: str) -> bool:
            if name in preserve:
                return False
            return "*" in strip or name in strip

        def walk(node: XNode) -> None:
            if isinstance(node, XElement) and should_strip(node.name):
                node._children[:] = [
                    c
                    for c in node._children
                    if not (isinstance(c, XText) and not c.value.strip())
                ]
            for child in node.children():
                walk(child)

        walk(doc)

    def _functions(self) -> dict[str, Any]:
        cached = getattr(self, "_functions_cache", None)
        if cached is not None:
            return cached
        fns = dict(CORE_FUNCTIONS)
        fns.update(self.extra_functions)
        fns["current"] = lambda ctx: (
            [self._current_node] if self._current_node is not None else []
        )
        fns["key"] = self._fn_key
        fns["generate-id"] = self._fn_generate_id
        fns["system-property"] = lambda ctx, name: ""
        fns["function-available"] = lambda ctx, name: to_string(name) in fns
        fns["element-available"] = lambda ctx, name: False
        self._functions_cache = fns
        return fns

    def _key_table(self, name: str) -> dict[str, list[XNode]]:
        """Build (once per document) the hash table for xsl:key *name*:
        every node matching the key's pattern is indexed under each
        string produced by its ``use`` expression -- this is how real
        processors make id/idref joins linear."""
        table = self._key_tables.get(name)
        if table is not None:
            return table
        declaration = self.stylesheet.keys.get(name)
        if declaration is None:
            raise XsltError(f"no xsl:key named {name!r}")
        pattern, use = declaration
        table = {}
        assert self._doc is not None
        probe_context = Context(self._doc, 1, 1, {}, self._functions())
        for node in self._doc.descendants_list():
            if node.node_type not in ("element",):
                continue
            if not pattern.matches(node, probe_context):
                continue
            node_ctx = Context(node, 1, 1, {}, self._functions())
            value = evaluate(use, node_ctx)
            if isinstance(value, list):
                strings = [v.string_value() for v in value]
            else:
                strings = [to_string(value)]
            for s in strings:
                table.setdefault(s, []).append(node)
        self._key_tables[name] = table
        return table

    def _fn_key(self, ctx: Context, name: Any, value: Any) -> list[XNode]:
        table = self._key_table(to_string(name))
        if isinstance(value, list):
            gathered: list[XNode] = []
            seen: set[int] = set()
            for node in value:
                for hit in table.get(node.string_value(), ()):
                    if id(hit) not in seen:
                        seen.add(id(hit))
                        gathered.append(hit)
            gathered.sort(key=lambda n: n.doc_order)
            return gathered
        return list(table.get(to_string(value), ()))

    def _fn_generate_id(self, ctx: Context, *args: Any) -> str:
        if args:
            nodes = to_nodeset(args[0])
            if not nodes:
                return ""
            node = nodes[0]
        else:
            node = ctx.node
        key = id(node)
        if key not in self._id_cache:
            self._id_cache[key] = f"id{node.doc_order}"
        return self._id_cache[key]

    def _context(self, node: XNode, position: int, size: int, frames: list[_Frame]) -> Context:
        # innermost frame wins; ChainMap avoids copying every binding on
        # every instruction (a hot path in template-dense stylesheets)
        from collections import ChainMap

        merged = ChainMap(*[frame.bindings for frame in reversed(frames)])
        return Context(node, position, size, merged, self._functions())

    def _bind_globals(
        self, doc: XDocument, frames: list[_Frame], params: dict[str, Any]
    ) -> None:
        for elem in self.stylesheet.globals:
            name = elem.get("name")
            if not name:
                raise XsltError("top-level variable/param without name")
            if _local(elem) == "param" and name in params:
                frames[0].bindings[name] = params[name]
                continue
            frames[0].bindings[name] = self._variable_value(elem, doc, frames)
        # externally supplied params that have no matching xsl:param are
        # still made visible (lenient, convenient for tooling)
        for key, value in params.items():
            frames[0].bindings.setdefault(key, value)

    # -- variable handling -------------------------------------------------------
    def _variable_value(self, elem: ET.Element, node: XNode, frames: list[_Frame]) -> Any:
        select = elem.get("select")
        if select is not None:
            return evaluate(select, self._context(node, 1, 1, frames))
        body = _body_items(elem)
        if not body:
            return ""
        sub = OutputBuilder()
        self._execute_body(body, node, 1, 1, frames, sub)
        return ResultTreeFragment(sub.finish())

    # -- template application ------------------------------------------------------
    def _apply_templates(
        self,
        nodes: Sequence[XNode],
        mode: Optional[str],
        with_params: Mapping[str, Any],
        doc_node: XNode,
        frames: list[_Frame],
        builder: OutputBuilder,
    ) -> None:
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            context = self._context(node, position, size, frames)
            rule = self.stylesheet.find_rule(node, mode, context)
            if rule is None:
                self._builtin_rule(node, mode, frames, builder)
                continue
            self._invoke(rule, node, position, size, with_params, frames, builder)

    def _builtin_rule(
        self,
        node: XNode,
        mode: Optional[str],
        frames: list[_Frame],
        builder: OutputBuilder,
    ) -> None:
        if isinstance(node, (XDocument, XElement)):
            children = [c for c in node.children() if not isinstance(c, XComment)]
            self._apply_templates(children, mode, {}, node, frames, builder)
        elif isinstance(node, (XText, XAttribute)):
            builder.add_text(node.string_value())
        # comments and PIs: no output

    def _invoke(
        self,
        rule: TemplateRule,
        node: XNode,
        position: int,
        size: int,
        with_params: Mapping[str, Any],
        frames: list[_Frame],
        builder: OutputBuilder,
    ) -> None:
        frame = _Frame()
        for param_elem in rule.params:
            pname = param_elem.get("name")
            if not pname:
                raise XsltError("xsl:param without name")
            if pname in with_params:
                frame.bindings[pname] = with_params[pname]
            else:
                frame.bindings[pname] = self._variable_value(
                    param_elem, node, frames + [frame]
                )
        previous_rule = self._current_rule
        self._current_rule = rule
        try:
            self._execute_body(
                rule.body, node, position, size, frames + [frame], builder
            )
        finally:
            self._current_rule = previous_rule

    # -- instruction execution -----------------------------------------------------
    def _execute_body(
        self,
        body: list,
        node: XNode,
        position: int,
        size: int,
        frames: list[_Frame],
        builder: OutputBuilder,
    ) -> None:
        # local variables accumulate in their own frame so later siblings
        # see earlier bindings but the scope ends with the body
        local = _Frame()
        frames = frames + [local]
        for item in body:
            if isinstance(item, str):
                builder.add_text(item)
                continue
            self._execute_instruction(item, node, position, size, frames, local, builder)

    def _execute_instruction(
        self,
        elem: ET.Element,
        node: XNode,
        position: int,
        size: int,
        frames: list[_Frame],
        local: _Frame,
        builder: OutputBuilder,
    ) -> None:
        prev_current = self._current_node
        self._current_node = node
        try:
            if not _is_xsl(elem):
                self._literal_element(elem, node, position, size, frames, builder)
                return
            name = _local(elem)
            handler = getattr(self, f"_i_{name.replace('-', '_')}", None)
            if handler is None:
                raise XsltError(f"unsupported instruction xsl:{name}")
            handler(elem, node, position, size, frames, local, builder)
        finally:
            self._current_node = prev_current

    def _avt(self, value: str, node: XNode, position: int, size: int, frames: list[_Frame]) -> str:
        chunks = _split_avt(value)
        out: list[str] = []
        for is_expr, text in chunks:
            if is_expr:
                out.append(
                    evaluate_string(text, self._context(node, position, size, frames))
                )
            else:
                out.append(text)
        return "".join(out)

    def _literal_element(
        self,
        elem: ET.Element,
        node: XNode,
        position: int,
        size: int,
        frames: list[_Frame],
        builder: OutputBuilder,
    ) -> None:
        tag = elem.tag
        if tag.startswith("{"):
            # Namespaced literal element outside the XSL namespace: emit
            # with its local name (we do not do namespace fixup).
            tag = tag.rpartition("}")[2]
        builder.start_element(tag)
        for key, value in elem.attrib.items():
            if key.startswith("{"):
                key = key.rpartition("}")[2]
            builder.add_attribute(key, self._avt(value, node, position, size, frames))
        self._execute_body(_body_items(elem), node, position, size, frames, builder)
        builder.end_element()

    # -- individual instructions ---------------------------------------------------
    def _i_apply_templates(self, elem, node, position, size, frames, local, builder):
        select = elem.get("select")
        mode = elem.get("mode")
        context = self._context(node, position, size, frames)
        if select is not None:
            nodes = evaluate_nodeset(select, context)
        else:
            nodes = [c for c in node.children() if not isinstance(c, XComment)]
        nodes = self._sorted(elem, nodes, frames)
        params = self._collect_with_params(elem, node, position, size, frames)
        self._apply_templates(nodes, mode, params, node, frames, builder)

    def _i_call_template(self, elem, node, position, size, frames, local, builder):
        name = elem.get("name")
        rule = self.stylesheet.named.get(name or "")
        if rule is None:
            raise XsltError(f"no template named {name!r}")
        params = self._collect_with_params(elem, node, position, size, frames)
        self._invoke(rule, node, position, size, params, frames, builder)

    def _collect_with_params(self, elem, node, position, size, frames) -> dict[str, Any]:
        params: dict[str, Any] = {}
        for child in elem:
            if isinstance(child.tag, str) and child.tag == _XSL + "with-param":
                pname = child.get("name")
                if not pname:
                    raise XsltError("xsl:with-param without name")
                params[pname] = self._variable_value(child, node, frames)
        return params

    def _i_value_of(self, elem, node, position, size, frames, local, builder):
        select = elem.get("select")
        if select is None:
            raise XsltError("xsl:value-of requires select")
        context = self._context(node, position, size, frames)
        builder.add_text(evaluate_string(select, context))

    def _i_for_each(self, elem, node, position, size, frames, local, builder):
        select = elem.get("select")
        if select is None:
            raise XsltError("xsl:for-each requires select")
        context = self._context(node, position, size, frames)
        nodes = evaluate_nodeset(select, context)
        nodes = self._sorted(elem, nodes, frames)
        body = [
            item
            for item in _body_items(elem)
            if not (isinstance(item, ET.Element) and _is_xsl(item, "sort"))
        ]
        total = len(nodes)
        for idx, child_node in enumerate(nodes, start=1):
            self._execute_body(body, child_node, idx, total, frames, builder)

    def _sorted(self, elem: ET.Element, nodes: list[XNode], frames: list[_Frame]) -> list[XNode]:
        sorts = [
            c
            for c in elem
            if isinstance(c.tag, str) and c.tag == _XSL + "sort"
        ]
        if not sorts:
            return nodes
        decorated = list(nodes)
        size = len(nodes)
        for sort_elem in reversed(sorts):
            select = sort_elem.get("select", ".")
            data_type = sort_elem.get("data-type", "text")
            descending = sort_elem.get("order", "ascending") == "descending"

            def key_of(n: XNode, _sel=select, _dt=data_type) -> Any:
                # within a sort key, current() is the node being sorted
                prev_current = self._current_node
                self._current_node = n
                try:
                    ctx = self._context(n, 1, size, frames)
                    raw = evaluate_string(_sel, ctx)
                finally:
                    self._current_node = prev_current
                if _dt == "number":
                    value = to_number(raw)
                    return (value != value, value)  # NaN sorts first
                return raw

            decorated.sort(key=key_of, reverse=descending)
        return decorated

    def _i_if(self, elem, node, position, size, frames, local, builder):
        test = elem.get("test")
        if test is None:
            raise XsltError("xsl:if requires test")
        context = self._context(node, position, size, frames)
        if evaluate_boolean(test, context):
            self._execute_body(_body_items(elem), node, position, size, frames, builder)

    def _i_choose(self, elem, node, position, size, frames, local, builder):
        for child in elem:
            if not isinstance(child.tag, str):
                continue
            if child.tag == _XSL + "when":
                test = child.get("test")
                if test is None:
                    raise XsltError("xsl:when requires test")
                context = self._context(node, position, size, frames)
                if evaluate_boolean(test, context):
                    self._execute_body(
                        _body_items(child), node, position, size, frames, builder
                    )
                    return
            elif child.tag == _XSL + "otherwise":
                self._execute_body(
                    _body_items(child), node, position, size, frames, builder
                )
                return

    def _i_text(self, elem, node, position, size, frames, local, builder):
        builder.add_text(elem.text or "")

    def _i_element(self, elem, node, position, size, frames, local, builder):
        name = elem.get("name")
        if not name:
            raise XsltError("xsl:element requires name")
        builder.start_element(self._avt(name, node, position, size, frames))
        self._execute_body(_body_items(elem), node, position, size, frames, builder)
        builder.end_element()

    def _i_attribute(self, elem, node, position, size, frames, local, builder):
        name = elem.get("name")
        if not name:
            raise XsltError("xsl:attribute requires name")
        sub = OutputBuilder()
        self._execute_body(_body_items(elem), node, position, size, frames, sub)
        builder.add_attribute(
            self._avt(name, node, position, size, frames), sub.string_value()
        )

    def _i_comment(self, elem, node, position, size, frames, local, builder):
        sub = OutputBuilder()
        self._execute_body(_body_items(elem), node, position, size, frames, sub)
        builder.add_comment(sub.string_value())

    def _i_variable(self, elem, node, position, size, frames, local, builder):
        name = elem.get("name")
        if not name:
            raise XsltError("xsl:variable requires name")
        local.bindings[name] = self._variable_value(elem, node, frames)

    def _i_param(self, elem, node, position, size, frames, local, builder):
        # Params are normally hoisted by _invoke; a stray body-level param
        # acts as a defaulted variable.
        name = elem.get("name")
        if not name:
            raise XsltError("xsl:param requires name")
        if name not in local.bindings:
            local.bindings[name] = self._variable_value(elem, node, frames)

    def _i_message(self, elem, node, position, size, frames, local, builder):
        sub = OutputBuilder()
        self._execute_body(_body_items(elem), node, position, size, frames, sub)
        print(f"[xsl:message] {sub.string_value()}", file=self.message_stream)
        if elem.get("terminate", "no") == "yes":
            raise XsltError(f"terminated by xsl:message: {sub.string_value()}")

    def _i_copy(self, elem, node, position, size, frames, local, builder):
        if isinstance(node, XElement):
            builder.start_element(node.name)
            self._execute_body(_body_items(elem), node, position, size, frames, builder)
            builder.end_element()
        elif isinstance(node, (XText,)):
            builder.add_text(node.string_value())
        elif isinstance(node, XAttribute):
            builder.add_attribute(node.name, node.value)
        elif isinstance(node, XComment):
            builder.add_comment(node.string_value())
        else:  # document node: just process content
            self._execute_body(_body_items(elem), node, position, size, frames, builder)

    def _i_copy_of(self, elem, node, position, size, frames, local, builder):
        select = elem.get("select")
        if select is None:
            raise XsltError("xsl:copy-of requires select")
        context = self._context(node, position, size, frames)
        value = evaluate(select, context)
        if isinstance(value, ResultTreeFragment):
            for item in value.top:
                builder.add_tree(_clone_out(item))
            return
        if isinstance(value, list):
            for n in value:
                self._deep_copy(n, builder)
            return
        builder.add_text(to_string(value))

    def _deep_copy(self, node: XNode, builder: OutputBuilder) -> None:
        if isinstance(node, XElement):
            builder.start_element(node.name)
            for attr in node.attributes():
                builder.add_attribute(attr.name, attr.value)
            for child in node.children():
                self._deep_copy(child, builder)
            builder.end_element()
        elif isinstance(node, XText):
            builder.add_text(node.value)
        elif isinstance(node, XAttribute):
            builder.add_attribute(node.name, node.value)
        elif isinstance(node, XComment):
            builder.add_comment(node.value)
        elif isinstance(node, XDocument):
            for child in node.children():
                self._deep_copy(child, builder)

    def _i_apply_imports(self, elem, node, position, size, frames, local, builder):
        """Re-match the current node against only the rules the current
        template's stylesheet imported (strictly lower precedence)."""
        current = self._current_rule
        if current is None:
            raise XsltError("xsl:apply-imports outside of a template")
        context = self._context(node, position, size, frames)
        rule = self.stylesheet.find_rule(
            node, current.mode, context, max_precedence=current.precedence
        )
        if rule is None:
            self._builtin_rule(node, current.mode, frames, builder)
            return
        self._invoke(rule, node, position, size, {}, frames, builder)

    def _i_sort(self, elem, node, position, size, frames, local, builder):
        # handled by the enclosing for-each / apply-templates
        pass

    def _i_fallback(self, elem, node, position, size, frames, local, builder):
        pass

    def _i_processing_instruction(self, elem, node, position, size, frames, local, builder):
        # we do not emit PIs; accept and ignore for portability
        pass


def _clone_out(item):
    if isinstance(item, OutElement):
        return OutElement(
            item.name,
            dict(item.attributes),
            [_clone_out(c) for c in item.children],
        )
    if isinstance(item, OutComment):
        return OutComment(item.text)
    return item


def transform_file(
    stylesheet_path: str | Path,
    source: Union[str, ET.Element],
    params: Optional[Mapping[str, Any]] = None,
    *,
    restore_prefixes: bool = False,
) -> str:
    """One-shot convenience: load stylesheet from *stylesheet_path* and
    transform *source*."""
    sheet = Stylesheet.from_file(stylesheet_path)
    return Transformer(sheet).transform(
        source, params, restore_prefixes=restore_prefixes
    )
