"""A from-scratch XSLT 1.0 subset engine with its own XPath 1.0 evaluator.

The paper's tools (XMI2CNX, CNX2Java) are XSL transformations; this
package lets the repository run the real stylesheets offline, with no
dependency beyond the standard library.

Quick use::

    from repro.xslt import Stylesheet, Transformer

    sheet = Stylesheet.from_string(XSL_SOURCE)
    result = Transformer(sheet).transform(XML_SOURCE)

See :mod:`repro.xslt.engine` for the supported instruction set.
"""

from .engine import ResultTreeFragment, Stylesheet, Transformer, XsltError, transform_file
from .output import OutputSettings, serialize
from .patterns import Pattern, PatternError, compile_pattern

__all__ = [
    "Stylesheet",
    "Transformer",
    "XsltError",
    "ResultTreeFragment",
    "transform_file",
    "Pattern",
    "PatternError",
    "compile_pattern",
    "OutputSettings",
    "serialize",
]
