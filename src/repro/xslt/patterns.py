"""XSLT 1.0 match patterns.

A pattern is a ``|``-separated list of *location path patterns* -- the
syntactic subset of XPath where only the ``child`` and ``attribute`` axes
and the ``//`` shorthand appear.  We reuse the XPath parser and then
*verify* the parsed tree stays inside the pattern subset, which keeps the
two grammars from drifting apart.

Matching is implemented by walking the pattern's steps right-to-left up
the node's ancestor chain (the standard technique): the last step must
match the node itself, each preceding step must match the parent (or,
across a ``//`` separator, *some* ancestor), and an absolute pattern must
finally land on the document root.

Positional predicates inside patterns (``task[2]``) are evaluated with
the candidate's position among like-named siblings, per the XSLT spec's
definition of pattern predicate context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .xpath.ast import Expr, LocationPath, NameTest, NodeTypeTest, Step
from .xpath.datamodel import XNode
from .xpath.evaluator import Context, _eval, node_test_matches  # noqa: F401
from .xpath.functions import to_boolean
from .xpath.parser import parse

__all__ = ["Pattern", "PatternError", "compile_pattern"]


class PatternError(ValueError):
    """Raised when an expression is not a legal XSLT match pattern."""


_ANCESTOR_SKIP = Step("descendant-or-self", NodeTypeTest("node"))


@dataclass(frozen=True)
class _PathPattern:
    absolute: bool
    steps: tuple[Step, ...]

    def default_priority(self) -> float:
        """Default priority per XSLT 1.0 section 5.5."""
        if self.absolute and not self.steps:
            return 0.5  # match="/"
        if len(self.steps) != 1 or self.absolute:
            return 0.5
        step = self.steps[0]
        if step.predicates:
            return 0.5
        test = step.node_test
        if isinstance(test, NameTest):
            if test.is_wildcard:
                return -0.5
            if test.prefix_wildcard is not None:
                return -0.25
            return 0.0
        assert isinstance(test, NodeTypeTest)
        if test.node_type == "processing-instruction" and test.literal:
            return 0.0
        return -0.5

    def matches(self, node: XNode, context: Context) -> bool:
        if not self.steps:
            # match="/"
            return self.absolute and node.node_type == "document"
        return self._match_steps(node, len(self.steps) - 1, context)

    def _match_steps(self, node: XNode, index: int, context: Context) -> bool:
        step = self.steps[index]
        if step is _ANCESTOR_SKIP or (
            step.axis == "descendant-or-self"
            and isinstance(step.node_test, NodeTypeTest)
            and step.node_test.node_type == "node"
            and not step.predicates
        ):
            # '//' separator: some ancestor-or-self must match the rest.
            probe: Optional[XNode] = node
            while probe is not None:
                if index == 0:
                    # leading '//' -- always anchored at the root, fine.
                    return True
                if self._match_steps(probe, index - 1, context):
                    return True
                probe = probe.parent
            return False
        if not self._match_one(step, node, context):
            return False
        if index == 0:
            if self.absolute:
                return node.parent is not None and node.parent.node_type == "document"
            return True
        parent = node.parent
        if parent is None:
            return False
        return self._match_steps(parent, index - 1, context)

    def _match_one(self, step: Step, node: XNode, context: Context) -> bool:
        if not node_test_matches(step.node_test, node, step.axis):
            return False
        if not step.predicates:
            return True
        # Candidate set = like siblings along the child/attribute axis.
        if step.axis == "attribute":
            siblings = list(node.parent.attributes()) if node.parent else [node]
        else:
            siblings = node.parent.children() if node.parent else [node]
        candidates = [
            s for s in siblings if node_test_matches(step.node_test, s, step.axis)
        ]
        try:
            position = candidates.index(node) + 1
        except ValueError:  # pragma: no cover - defensive
            return False
        size = len(candidates)
        for pred in step.predicates:
            sub = context.with_node(node, position, size)
            value = _eval(pred, sub)
            if isinstance(value, float) and not isinstance(value, bool):
                if value != position:
                    return False
            elif not to_boolean(value):
                return False
        return True


class Pattern:
    """A compiled match pattern (possibly a union of alternatives)."""

    def __init__(self, source: str, alternatives: tuple[_PathPattern, ...]) -> None:
        self.source = source
        self.alternatives = alternatives

    def __repr__(self) -> str:
        return f"Pattern({self.source!r})"

    def matches(self, node: XNode, context: Context) -> bool:
        return any(alt.matches(node, context) for alt in self.alternatives)

    def default_priority(self) -> float:
        """For union patterns XSLT treats each alternative as its own rule;
        callers that need per-alternative priorities should split the
        pattern.  We conservatively report the max."""
        return max(alt.default_priority() for alt in self.alternatives)

    def split(self) -> list["Pattern"]:
        """One :class:`Pattern` per union alternative."""
        return [Pattern(self.source, (alt,)) for alt in self.alternatives]


_ALLOWED_AXES = ("child", "attribute", "descendant-or-self", "self")


def _check_path(expr: Expr, source: str) -> _PathPattern:
    if not isinstance(expr, LocationPath):
        raise PatternError(f"not a location path pattern: {source!r}")
    for step in expr.steps:
        if step.axis not in _ALLOWED_AXES:
            raise PatternError(
                f"axis {step.axis!r} not allowed in pattern {source!r}"
            )
    return _PathPattern(expr.absolute, expr.steps)


def compile_pattern(source: str) -> Pattern:
    """Compile a match pattern string."""
    tree = parse(source)
    from .xpath.ast import UnionExpr

    if isinstance(tree, UnionExpr):
        alts = tuple(_check_path(p, source) for p in tree.parts)
    else:
        alts = (_check_path(tree, source),)
    return Pattern(source, alts)
