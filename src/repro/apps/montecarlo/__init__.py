"""Monte Carlo pi estimation as a CN job (messaging workload)."""

from .driver import build_pi_model, pi_registry, register_pi_tasks, run_parallel_pi
from .tasks import PiJoin, PiSplit, PiWorker, estimate_pi_serial

__all__ = [
    "PiSplit",
    "PiWorker",
    "PiJoin",
    "estimate_pi_serial",
    "build_pi_model",
    "register_pi_tasks",
    "pi_registry",
    "run_parallel_pi",
]
