"""Monte Carlo pi estimation as a CN job (second example workload).

Same split/worker/join composition shape as the guiding example, but a
different coordination pattern: the splitter hands each worker an
independent sub-experiment (seed + sample count), the workers never talk
to each other, and the joiner reduces the hit counts into the final
estimate.  Exercises the CN messaging layer with purely client-shaped
traffic and deterministic seeding (results are reproducible for a fixed
seed regardless of scheduling).
"""

from __future__ import annotations

import random

from repro.cn.task import Task, TaskContext

__all__ = ["PiSplit", "PiWorker", "PiJoin", "estimate_pi_serial"]


def estimate_pi_serial(samples: int, seed: int = 0) -> float:
    """Single-threaded baseline: same generator, same estimate."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        x, y = rng.random(), rng.random()
        if x * x + y * y <= 1.0:
            hits += 1
    return 4.0 * hits / samples


class PiSplit(Task):
    """Distributes ``samples`` across the dependent workers.

    Parameters: total sample count, base seed.  Worker w receives
    ``("chunk", samples_w, seed + w)``; the per-worker derived seeds keep
    runs reproducible while decorrelating the streams.
    """

    def __init__(self, samples: int, seed: int = 0) -> None:
        self.samples = int(samples)
        self.seed = int(seed)

    def run(self, ctx: TaskContext) -> dict:
        workers = sorted(ctx.my_dependents())
        if not workers:
            raise RuntimeError("PiSplit has no dependent workers")
        base, extra = divmod(self.samples, len(workers))
        for index, worker in enumerate(workers):
            count = base + (1 if index < extra else 0)
            ctx.send(worker, ("chunk", count, self.seed + index + 1))
        ctx.event("chunks-dispatched", workers=len(workers), samples=self.samples)
        return {"workers": len(workers), "samples": self.samples}


class PiWorker(Task):
    """Samples its chunk and reports ``("hits", count, samples)``."""

    def __init__(self, index: int = 0) -> None:
        self.index = int(index)

    def run(self, ctx: TaskContext) -> dict:
        message = ctx.recv_matching(
            lambda m: m.is_user() and m.payload[0] == "chunk", timeout=30.0
        )
        _, samples, seed = message.payload
        rng = random.Random(seed)
        hits = 0
        for _ in range(samples):
            x, y = rng.random(), rng.random()
            if x * x + y * y <= 1.0:
                hits += 1
        for joiner in ctx.my_dependents():
            ctx.send(joiner, ("hits", hits, samples))
        ctx.counter("cn_pi_samples_total").inc(samples)
        return {"hits": hits, "samples": samples}


class PiJoin(Task):
    """Reduces the worker reports into the final estimate of pi."""

    def __init__(self) -> None:
        pass

    def run(self, ctx: TaskContext) -> dict:
        workers = sorted(ctx.my_dependencies())
        hits = 0
        samples = 0
        for _ in workers:
            message = ctx.recv_matching(
                lambda m: m.is_user() and m.payload[0] == "hits", timeout=30.0
            )
            hits += message.payload[1]
            samples += message.payload[2]
        estimate = 4.0 * hits / samples if samples else float("nan")
        ctx.event("estimate-reduced", pi=estimate, samples=samples)
        return {"pi": estimate, "hits": hits, "samples": samples}
