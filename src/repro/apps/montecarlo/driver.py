"""Model builder and driver for the Monte Carlo pi job."""

from __future__ import annotations

from typing import Optional

from repro.cn.cluster import Cluster
from repro.cn.registry import TaskRegistry
from repro.core.transform.pipeline import Pipeline, PipelineResult
from repro.core.uml.activity import ActivityGraph
from repro.core.uml.builder import ActivityBuilder

from .tasks import PiJoin, PiSplit, PiWorker

__all__ = ["build_pi_model", "register_pi_tasks", "pi_registry", "run_parallel_pi"]

SPLIT_JAR = "pisplit.jar"
SPLIT_CLASS = "org.jhpc.cn2.montecarlo.PiSplit"
WORKER_JAR = "piworker.jar"
WORKER_CLASS = "org.jhpc.cn2.montecarlo.PiWorker"
JOIN_JAR = "pijoin.jar"
JOIN_CLASS = "org.jhpc.cn2.montecarlo.PiJoin"


def register_pi_tasks(registry: TaskRegistry) -> TaskRegistry:
    registry.register_class(SPLIT_JAR, SPLIT_CLASS, PiSplit)
    registry.register_class(WORKER_JAR, WORKER_CLASS, PiWorker)
    registry.register_class(JOIN_JAR, JOIN_CLASS, PiJoin)
    return registry


def pi_registry() -> TaskRegistry:
    return register_pi_tasks(TaskRegistry())


def build_pi_model(
    *, samples: int = 100_000, seed: int = 0, n_workers: int = 4, name: str = "MonteCarloPi"
) -> ActivityGraph:
    """split -> fork -> N workers -> join -> joiner, pi flavored."""
    b = ActivityBuilder(name)
    split = b.task(
        "pisplit",
        jar=SPLIT_JAR,
        cls=SPLIT_CLASS,
        params=[("Integer", str(samples)), ("Integer", str(seed))],
    )
    workers = [
        b.task(
            f"piworker{i}",
            jar=WORKER_JAR,
            cls=WORKER_CLASS,
            params=[("Integer", str(i))],
        )
        for i in range(1, n_workers + 1)
    ]
    joiner = b.task("pijoin", jar=JOIN_JAR, cls=JOIN_CLASS)
    b.chain(b.initial(), split)
    b.fan_out_in(split, workers, joiner)
    b.chain(joiner, b.final())
    return b.build()


def run_parallel_pi(
    *,
    samples: int = 100_000,
    seed: int = 0,
    n_workers: int = 4,
    cluster: Optional[Cluster] = None,
    transform: str = "xslt",
    timeout: float = 60.0,
) -> tuple[float, PipelineResult]:
    """Pipeline-run the pi job; returns ``(estimate, pipeline_result)``."""
    graph = build_pi_model(samples=samples, seed=seed, n_workers=n_workers)
    pipeline = Pipeline(transform=transform)
    owns = cluster is None
    if owns:
        cluster = Cluster(4, registry=pi_registry())
    else:
        register_pi_tasks(cluster.registry)
    try:
        outcome = pipeline.run(graph, cluster, timeout=timeout)
    finally:
        if owns:
            cluster.shutdown()
    return outcome.results["pijoin"]["pi"], outcome
