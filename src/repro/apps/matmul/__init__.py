"""Dense matrix multiplication as a CN job (scatter/compute/gather)."""

from .driver import (
    build_matmul_model,
    matmul_registry,
    register_matmul_tasks,
    run_parallel_matmul,
)
from .tasks import MatJoin, MatSplit, MatWorker, matmul_serial, store_pair

__all__ = [
    "MatSplit",
    "MatWorker",
    "MatJoin",
    "matmul_serial",
    "store_pair",
    "build_matmul_model",
    "register_matmul_tasks",
    "matmul_registry",
    "run_parallel_matmul",
]
