"""Dense matrix multiplication as a CN job (fourth example workload).

The paper motivates CN with "scientific and other applications that lend
themselves to parallel computing"; dense C = A @ B is the canonical one.
Decomposition mirrors the guiding example's row-wise scheme:

* ``MatSplit`` reads A and B, sends each worker a contiguous row block
  of A together with the whole of B (1-D row decomposition; B is
  broadcast state, like row k in Floyd),
* each ``MatWorker`` computes its block of C = A_block @ B,
* ``MatJoin`` stacks the blocks in row order.

Unlike Floyd there is no iteration-coupled communication, so this
workload isolates the pure scatter/compute/gather cost of the framework
-- the comparison point the channel benchmarks use.
"""

from __future__ import annotations

import numpy as np

from repro.cn.task import Task, TaskContext

from ..floyd.io import MatrixStore
from ..floyd.tasks import partition_rows

__all__ = ["MatSplit", "MatWorker", "MatJoin", "store_pair", "matmul_serial"]


def matmul_serial(a, b) -> np.ndarray:
    """Baseline: numpy matmul."""
    return np.asarray(a, dtype=float) @ np.asarray(b, dtype=float)


def store_pair(key: str, a, b) -> str:
    """Stage an (A, B) pair in the matrix store; returns the source ref."""
    store = MatrixStore.instance()
    store.put(f"{key}:A", a)
    store.put(f"{key}:B", b)
    return f"store:{key}"


def _load_pair(source: str) -> tuple[np.ndarray, np.ndarray]:
    if not source.startswith("store:"):
        raise ValueError(
            f"matmul source must be a store: reference, got {source!r}"
        )
    key = source[len("store:") :]
    store = MatrixStore.instance()
    return (
        np.array(store.get(f"{key}:A"), dtype=float),
        np.array(store.get(f"{key}:B"), dtype=float),
    )


class MatSplit(Task):
    """Scatter A's row blocks (and B wholesale) to the workers."""

    def __init__(self, source: str) -> None:
        self.source = source

    def run(self, ctx: TaskContext) -> dict:
        a, b = _load_pair(self.source)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        workers = sorted(ctx.my_dependents())
        if not workers:
            raise RuntimeError("MatSplit has no dependent workers")
        ranges = partition_rows(a.shape[0], len(workers))
        for worker, (start, end) in zip(workers, ranges):
            ctx.send(worker, ("block", start, a[start:end].copy(), b.copy()))
        return {"rows": int(a.shape[0]), "workers": len(workers)}


class MatWorker(Task):
    """Compute one row block of the product."""

    def __init__(self, index: int = 0) -> None:
        self.index = int(index)

    def run(self, ctx: TaskContext) -> dict:
        message = ctx.recv_matching(
            lambda m: m.is_user() and m.payload[0] == "block", timeout=60.0
        )
        _, start, a_block, b = message.payload
        c_block = a_block @ b if a_block.size else np.zeros((0, b.shape[1]))
        for joiner in ctx.my_dependents():
            ctx.send(joiner, ("result", start, c_block))
        return {"start": int(start), "rows": int(a_block.shape[0])}


class MatJoin(Task):
    """Stack the row blocks into C (the task result)."""

    def __init__(self) -> None:
        pass

    def run(self, ctx: TaskContext) -> list[list[float]]:
        expected = len(ctx.my_dependencies())
        pieces: dict[int, np.ndarray] = {}
        received = 0
        while received < expected:
            message = ctx.recv_matching(
                lambda m: m.is_user() and m.payload[0] == "result", timeout=60.0
            )
            received += 1
            _, start, block = message.payload
            if block.size:
                pieces[start] = block
        ordered = [pieces[s] for s in sorted(pieces)]
        result = np.vstack(ordered) if ordered else np.zeros((0, 0))
        return [list(map(float, row)) for row in result]
