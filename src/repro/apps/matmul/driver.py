"""Model builder and driver for the matrix-multiplication job."""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence

from repro.cn.cluster import Cluster
from repro.cn.registry import TaskRegistry
from repro.core.transform.pipeline import Pipeline, PipelineResult
from repro.core.uml.activity import ActivityGraph
from repro.core.uml.builder import ActivityBuilder

from .tasks import MatJoin, MatSplit, MatWorker, store_pair

__all__ = [
    "build_matmul_model",
    "register_matmul_tasks",
    "matmul_registry",
    "run_parallel_matmul",
]

SPLIT_JAR = "matsplit.jar"
SPLIT_CLASS = "org.jhpc.cn2.matmul.MatSplit"
WORKER_JAR = "matworker.jar"
WORKER_CLASS = "org.jhpc.cn2.matmul.MatWorker"
JOIN_JAR = "matjoin.jar"
JOIN_CLASS = "org.jhpc.cn2.matmul.MatJoin"

_counter = itertools.count(1)
_lock = threading.Lock()


def register_matmul_tasks(registry: TaskRegistry) -> TaskRegistry:
    registry.register_class(SPLIT_JAR, SPLIT_CLASS, MatSplit)
    registry.register_class(WORKER_JAR, WORKER_CLASS, MatWorker)
    registry.register_class(JOIN_JAR, JOIN_CLASS, MatJoin)
    return registry


def matmul_registry() -> TaskRegistry:
    return register_matmul_tasks(TaskRegistry())


def build_matmul_model(
    *, source: str, n_workers: int = 4, name: str = "MatMul"
) -> ActivityGraph:
    b = ActivityBuilder(name)
    split = b.task(
        "matsplit", jar=SPLIT_JAR, cls=SPLIT_CLASS, params=[("String", source)]
    )
    workers = [
        b.task(
            f"matworker{i}",
            jar=WORKER_JAR,
            cls=WORKER_CLASS,
            params=[("Integer", str(i))],
        )
        for i in range(1, n_workers + 1)
    ]
    joiner = b.task("matjoin", jar=JOIN_JAR, cls=JOIN_CLASS)
    b.chain(b.initial(), split)
    b.fan_out_in(split, workers, joiner)
    b.chain(joiner, b.final())
    return b.build()


def run_parallel_matmul(
    a: Sequence[Sequence[float]],
    b: Sequence[Sequence[float]],
    *,
    n_workers: int = 4,
    cluster: Optional[Cluster] = None,
    transform: str = "xslt",
    timeout: float = 60.0,
) -> tuple[list[list[float]], PipelineResult]:
    """Pipeline-run C = A @ B; returns ``(C, pipeline_result)``."""
    with _lock:
        key = f"matmul-{next(_counter)}"
    source = store_pair(key, a, b)
    graph = build_matmul_model(source=source, n_workers=n_workers)
    pipeline = Pipeline(transform=transform)
    owns = cluster is None
    if owns:
        cluster = Cluster(4, registry=matmul_registry())
    else:
        register_matmul_tasks(cluster.registry)
    try:
        outcome = pipeline.run(graph, cluster, timeout=timeout)
    finally:
        if owns:
            cluster.shutdown()
    return outcome.results["matjoin"], outcome
