"""Model builder and driver for the tuple-space word-count job."""

from __future__ import annotations

from typing import Optional

from repro.cn.cluster import Cluster
from repro.cn.registry import TaskRegistry
from repro.core.transform.pipeline import Pipeline, PipelineResult
from repro.core.uml.activity import ActivityGraph
from repro.core.uml.builder import ActivityBuilder

from .tasks import WordMapper, WordReducer, WordSplit

__all__ = ["build_wordcount_model", "register_wordcount_tasks", "wordcount_registry", "run_parallel_wordcount"]

SPLIT_JAR = "wcsplit.jar"
SPLIT_CLASS = "org.jhpc.cn2.wordcount.WordSplit"
MAPPER_JAR = "wcmap.jar"
MAPPER_CLASS = "org.jhpc.cn2.wordcount.WordMapper"
REDUCER_JAR = "wcreduce.jar"
REDUCER_CLASS = "org.jhpc.cn2.wordcount.WordReducer"


def register_wordcount_tasks(registry: TaskRegistry) -> TaskRegistry:
    registry.register_class(SPLIT_JAR, SPLIT_CLASS, WordSplit)
    registry.register_class(MAPPER_JAR, MAPPER_CLASS, WordMapper)
    registry.register_class(REDUCER_JAR, REDUCER_CLASS, WordReducer)
    return registry


def wordcount_registry() -> TaskRegistry:
    return register_wordcount_tasks(TaskRegistry())


def build_wordcount_model(
    *, text: str, shards: int = 8, n_mappers: int = 4, name: str = "WordCount"
) -> ActivityGraph:
    b = ActivityBuilder(name)
    split = b.task(
        "wcsplit",
        jar=SPLIT_JAR,
        cls=SPLIT_CLASS,
        params=[("String", text), ("Integer", str(shards))],
    )
    mappers = [
        b.task(
            f"wcmap{i}",
            jar=MAPPER_JAR,
            cls=MAPPER_CLASS,
            params=[("Integer", str(i))],
        )
        for i in range(1, n_mappers + 1)
    ]
    reducer = b.task("wcreduce", jar=REDUCER_JAR, cls=REDUCER_CLASS)
    b.chain(b.initial(), split)
    b.fan_out_in(split, mappers, reducer)
    b.chain(reducer, b.final())
    return b.build()


def run_parallel_wordcount(
    text: str,
    *,
    shards: int = 8,
    n_mappers: int = 4,
    cluster: Optional[Cluster] = None,
    transform: str = "xslt",
    timeout: float = 60.0,
) -> tuple[dict[str, int], PipelineResult]:
    """Pipeline-run the word-count job; returns ``(histogram, result)``."""
    graph = build_wordcount_model(text=text, shards=shards, n_mappers=n_mappers)
    pipeline = Pipeline(transform=transform)
    owns = cluster is None
    if owns:
        cluster = Cluster(4, registry=wordcount_registry())
    else:
        register_wordcount_tasks(cluster.registry)
    try:
        outcome = pipeline.run(graph, cluster, timeout=timeout)
    finally:
        if owns:
            cluster.shutdown()
    return outcome.results["wcreduce"], outcome
