"""Word count over tuple spaces (third example workload).

Exercises the coordination channel section 3 of the paper mentions but
does not elaborate: "CN also supports communication via tuple spaces".
The mappers and the reducer never exchange direct messages -- all data
flows through the job's tuple space:

* the splitter deposits ``("shard", shard_id, text)`` work tuples and a
  ``("shards", count)`` control tuple,
* each mapper withdraws shards (``in_``), counts words, and deposits
  ``("counts", shard_id, {word: n})``,
* the reducer withdraws every counts tuple and merges.

Work stealing falls out naturally: mappers pull shards until a poison
tuple appears, so fast mappers process more shards -- a behaviour the
channel-ablation benchmark contrasts with static message routing.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Optional

from repro.cn.task import Task, TaskContext

__all__ = ["WordSplit", "WordMapper", "WordReducer", "count_words_serial", "tokenize_words"]

_WORD_RE = re.compile(r"[A-Za-z']+")

POISON = ("shard", -1, "")


def tokenize_words(text: str) -> list[str]:
    return [w.lower() for w in _WORD_RE.findall(text)]


def count_words_serial(text: str) -> dict[str, int]:
    """Single-threaded baseline."""
    return dict(Counter(tokenize_words(text)))


class WordSplit(Task):
    """Shards the input text into the tuple space.

    Parameters: the text (or ``store:``-style indirection is not needed
    here -- texts are small), and the shard count."""

    def __init__(self, text: str, shards: int = 8) -> None:
        self.text = text
        self.shards = max(1, int(shards))

    def run(self, ctx: TaskContext) -> dict:
        words = self.text.split()
        n_mappers = len(ctx.my_dependents())
        per = max(1, (len(words) + self.shards - 1) // self.shards)
        shard_count = 0
        for index in range(0, len(words), per):
            ctx.tuple_space.out(("shard", shard_count, " ".join(words[index : index + per])))
            shard_count += 1
        ctx.tuple_space.out(("shards", shard_count))
        ctx.event("text-sharded", shards=shard_count, words=len(words))
        # one poison pill per mapper ends the steal loop
        for _ in range(max(n_mappers, 1)):
            ctx.tuple_space.out(POISON)
        return {"shards": shard_count}


class WordMapper(Task):
    """Steals shards from the space until poisoned; deposits counts."""

    def __init__(self, index: int = 0) -> None:
        self.index = int(index)

    def run(self, ctx: TaskContext) -> dict:
        shards_done = ctx.counter("cn_wordcount_shards_total")
        processed = 0
        while True:
            shard = ctx.tuple_space.in_(("shard", None, None), timeout=30.0)
            _, shard_id, text = shard
            if shard_id == -1:
                break
            counts = dict(Counter(tokenize_words(text)))
            ctx.tuple_space.out(("counts", shard_id, counts))
            shards_done.inc()
            processed += 1
        return {"processed": processed}


class WordReducer(Task):
    """Withdraws every counts tuple and merges the final histogram."""

    def __init__(self) -> None:
        pass

    def run(self, ctx: TaskContext) -> dict[str, int]:
        expected = ctx.tuple_space.rd(("shards", None), timeout=30.0)[1]
        merged: Counter = Counter()
        for _ in range(expected):
            tup = ctx.tuple_space.in_(("counts", None, None), timeout=30.0)
            merged.update(tup[2])
        ctx.event("histogram-merged", shards=expected, distinct_words=len(merged))
        return dict(merged)
