"""Word count over tuple spaces (work-stealing workload)."""

from .driver import (
    build_wordcount_model,
    register_wordcount_tasks,
    run_parallel_wordcount,
    wordcount_registry,
)
from .tasks import WordMapper, WordReducer, WordSplit, count_words_serial, tokenize_words

__all__ = [
    "WordSplit",
    "WordMapper",
    "WordReducer",
    "count_words_serial",
    "tokenize_words",
    "build_wordcount_model",
    "register_wordcount_tasks",
    "wordcount_registry",
    "run_parallel_wordcount",
]
