"""The guiding example (paper section 2): parallel Floyd all-pairs
shortest path / transitive closure as a CN job."""

from .driver import (
    ensure_floyd_tasks,
    floyd_registry,
    register_floyd_tasks,
    run_parallel_floyd,
    run_parallel_floyd_dynamic,
)
from .io import MatrixStore, read_matrix, resolve_matrix, store_matrix, write_matrix
from .model import build_fig3_model, build_fig5_model
from .serial import (
    INF,
    floyd_warshall,
    floyd_warshall_numpy,
    random_adjacency,
    random_weighted_graph,
    transitive_closure,
    transitive_closure_numpy,
)
from .tasks import TaskSplit, TCJoin, TCTask, partition_rows

__all__ = [
    "TaskSplit",
    "TCTask",
    "TCJoin",
    "partition_rows",
    "build_fig3_model",
    "build_fig5_model",
    "register_floyd_tasks",
    "ensure_floyd_tasks",
    "floyd_registry",
    "run_parallel_floyd",
    "run_parallel_floyd_dynamic",
    "floyd_warshall",
    "floyd_warshall_numpy",
    "transitive_closure",
    "transitive_closure_numpy",
    "random_weighted_graph",
    "random_adjacency",
    "INF",
    "read_matrix",
    "write_matrix",
    "MatrixStore",
    "store_matrix",
    "resolve_matrix",
]
