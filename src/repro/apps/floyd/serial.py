"""Serial baselines for all-pairs shortest paths / transitive closure.

Floyd's algorithm (Floyd, "Algorithm 97: Shortest Path", CACM 1962 --
the paper's reference [8]) in three flavors:

* :func:`floyd_warshall` -- textbook triple loop (pure Python), the
  reference implementation tests compare against,
* :func:`floyd_warshall_numpy` -- row-vectorized numpy version, the
  fast baseline for benchmarks (and the kernel the parallel workers use
  per row block),
* :func:`transitive_closure` / :func:`transitive_closure_numpy` -- the
  boolean-reachability variant (the paper calls its guiding example the
  "transitive closure algorithm").

Matrices are dense ``n x n``; ``math.inf`` marks absent edges for the
shortest-path variant, ``0``/``1`` adjacency for closure.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "INF",
    "floyd_warshall",
    "floyd_warshall_numpy",
    "transitive_closure",
    "transitive_closure_numpy",
    "random_weighted_graph",
    "random_adjacency",
    "as_distance_matrix",
]

INF = math.inf


def as_distance_matrix(matrix: Sequence[Sequence[float]]) -> list[list[float]]:
    """Copy *matrix* into list-of-lists form with a zero diagonal."""
    n = len(matrix)
    out = [[float(matrix[i][j]) for j in range(n)] for i in range(n)]
    for i in range(n):
        out[i][i] = min(out[i][i], 0.0)
    return out


def floyd_warshall(matrix: Sequence[Sequence[float]]) -> list[list[float]]:
    """All-pairs shortest path distances, O(n^3) reference implementation.

    Derives S in N steps, constructing at each step k the intermediate
    matrix I(k) of best-known distances (paper section 2).
    """
    dist = as_distance_matrix(matrix)
    n = len(dist)
    for k in range(n):
        row_k = dist[k]
        for i in range(n):
            row_i = dist[i]
            d_ik = row_i[k]
            if d_ik == INF:
                continue
            for j in range(n):
                candidate = d_ik + row_k[j]
                if candidate < row_i[j]:
                    row_i[j] = candidate
    return dist


def floyd_warshall_numpy(matrix: Sequence[Sequence[float]]) -> np.ndarray:
    """Vectorized Floyd: per-k rank-1 min-plus update."""
    dist = np.array(matrix, dtype=float)
    n = dist.shape[0]
    idx = np.arange(n)
    dist[idx, idx] = np.minimum(dist[idx, idx], 0.0)
    for k in range(n):
        # dist = min(dist, dist[:, k, None] + dist[None, k, :])
        np.minimum(dist, dist[:, k, None] + dist[k, None, :], out=dist)
    return dist


def transitive_closure(adjacency: Sequence[Sequence[int]]) -> list[list[int]]:
    """Boolean reachability closure via Floyd's recurrence."""
    n = len(adjacency)
    reach = [[1 if (adjacency[i][j] or i == j) else 0 for j in range(n)] for i in range(n)]
    for k in range(n):
        row_k = reach[k]
        for i in range(n):
            row_i = reach[i]
            if row_i[k]:
                for j in range(n):
                    if row_k[j]:
                        row_i[j] = 1
    return reach


def transitive_closure_numpy(adjacency: Sequence[Sequence[int]]) -> np.ndarray:
    reach = np.array(adjacency, dtype=bool)
    n = reach.shape[0]
    reach |= np.eye(n, dtype=bool)
    for k in range(n):
        reach |= reach[:, k, None] & reach[k, None, :]
    return reach.astype(np.int64)


def random_weighted_graph(
    n: int,
    *,
    density: float = 0.3,
    max_weight: float = 10.0,
    seed: Optional[int] = None,
) -> list[list[float]]:
    """A random directed weighted graph as a distance matrix (INF = no edge)."""
    rng = random.Random(seed)
    matrix = [[INF] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = 0.0
        for j in range(n):
            if i != j and rng.random() < density:
                matrix[i][j] = round(rng.uniform(1.0, max_weight), 3)
    return matrix


def random_adjacency(n: int, *, density: float = 0.3, seed: Optional[int] = None) -> list[list[int]]:
    """A random directed 0/1 adjacency matrix."""
    rng = random.Random(seed)
    return [
        [1 if i != j and rng.random() < density else 0 for j in range(n)]
        for i in range(n)
    ]
