"""The three CN tasks of the guiding example (paper section 2).

"The CN implementation of the transitive closure algorithm consists of
three different tasks.  The first task, TaskSplit, reads the input and
initializes the worker tasks, TCTask, with the appropriate rows.  Each
of the TCTask workers keeps track of k, and the tasks coordinate among
themselves using the CNAPI for intertask communication. ... The
collation of the results is done by yet another task named TCJoin."

Protocol (all user-defined messages, CN merely delivers them):

* TaskSplit -> each worker:   ``("rows", start, block, n, worker_names, mode)``
  where *block* is the worker's contiguous row slice of the distance
  matrix (row-wise 1-D domain decomposition).
* worker -> other workers:    ``("row", k, row_k)`` -- in step k, the
  task owning row k broadcasts it (paper: "in the kth iteration have
  the task with the kth row broadcast it").
* worker -> joiner:           ``("result", start, block, attempt_epoch)``
  -- the epoch lets the joiner dedupe replayed deliveries by
  ``(task, attempt epoch)`` after crash recovery or manager adoption.

Workers discover each other and the joiner from the dependency DAG the
TaskContext exposes -- no name patterns are assumed, so the same classes
serve the explicit (Fig. 3) and dynamic (Fig. 5) compositions.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.cn.messages import Message
from repro.cn.task import Task, TaskContext

from .io import resolve_matrix, write_matrix

__all__ = ["TaskSplit", "TCTask", "TCJoin", "partition_rows"]

MODE_SHORTEST = "shortest"
MODE_CLOSURE = "closure"


def partition_rows(n: int, workers: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, end)`` row ranges, one per worker.

    The first ``n % workers`` workers receive one extra row, matching the
    usual block distribution; degenerates gracefully when workers > n
    (surplus workers get empty ranges and act as no-ops)."""
    if workers < 1:
        raise ValueError("need at least one worker")
    base, extra = divmod(n, workers)
    ranges: list[tuple[int, int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class TaskSplit(Task):
    """Reads the input matrix and initializes the workers with their rows.

    Parameters (from CNX): ``source`` -- matrix.txt path or ``store:key``;
    optional ``mode`` -- ``shortest`` (default) or ``closure``.
    """

    def __init__(self, source: str, mode: str = MODE_SHORTEST) -> None:
        self.source = source
        self.mode = mode

    def run(self, ctx: TaskContext) -> dict:
        matrix = resolve_matrix(self.source)
        n = len(matrix)
        workers = sorted(ctx.my_dependents())
        if not workers:
            raise RuntimeError("TaskSplit has no dependent workers")
        ranges = partition_rows(n, len(workers))
        dist = np.array(matrix, dtype=float)
        if self.mode == MODE_CLOSURE:
            dist = (np.isfinite(dist) & (dist != 0)).astype(float)
            np.fill_diagonal(dist, 1.0)
        else:
            idx = np.arange(n)
            dist[idx, idx] = np.minimum(dist[idx, idx], 0.0)
        # one data-plane fan-out for the whole init scatter: each worker
        # gets its own payload, but the routing/journal cost is batched
        ctx.send_many(
            [
                (
                    worker,
                    ("rows", start, dist[start:end].copy(), n, list(workers), self.mode),
                )
                for worker, (start, end) in zip(workers, ranges)
            ]
        )
        return {"n": n, "workers": len(workers), "mode": self.mode}


def _owner_of_row(k: int, ranges: list[tuple[int, int]]) -> int:
    for index, (start, end) in enumerate(ranges):
        if start <= k < end:
            return index
    raise ValueError(f"row {k} outside all ranges {ranges}")


class TCTask(Task):
    """One worker: owns a row block, participates in the k-loop.

    Parameter (from CNX, Fig. 4): the worker's 1-based index -- kept for
    fidelity with the paper's descriptors and used as a sanity check
    against the DAG-derived role; coordination itself relies on the
    roster received from TaskSplit.

    Checkpointing (durability extension): after completing step *k* the
    worker checkpoints its row block (plus the roster it learned from
    TaskSplit) through the job journal, so a crashed attempt resumes at
    step ``k + 1`` instead of from scratch.  ``checkpoint_every``
    controls the interval: 1 checkpoints every step (default), larger
    values trade recovery work for journal volume, 0 disables
    checkpointing entirely (recovery restarts from step 0).
    """

    #: checkpoint after every ``checkpoint_every``-th completed step;
    #: 0 disables (class attribute so sweeps can tune it per run)
    checkpoint_every: int = 1

    def __init__(self, index: Optional[int] = None) -> None:
        self.index = index

    def _after_step(self, k: int, ctx: TaskContext) -> None:
        """Instrumentation hook: called after step *k* is fully applied
        (and checkpointed, if due).  Tests override it to gate or kill
        attempts at a deterministic point mid-algorithm."""

    def run(self, ctx: TaskContext) -> dict:
        resumed_from: Optional[int] = None
        saved = self.restore()
        if saved is not None:
            # recovery: resume mid-algorithm from the journaled state --
            # no need to wait for TaskSplit again
            start = saved["start"]
            block = np.array(saved["block"], dtype=float)
            n, workers, mode = saved["n"], list(saved["workers"]), saved["mode"]
            first_k = saved["k"] + 1
            resumed_from = saved["k"]
        else:
            init = ctx.recv_matching(
                lambda m: m.is_user() and m.payload[0] == "rows", timeout=60.0
            )
            _, start, block, n, workers, mode = init.payload
            block = np.array(block, dtype=float)
            first_k = 0
        me = workers.index(ctx.task_name)
        ranges = partition_rows(n, len(workers))
        my_start, my_end = ranges[me]
        assert (my_start, my_end) == (start, start + block.shape[0])

        if resumed_from is not None:
            ctx.event("resumed-mid-algorithm", first_k=first_k)
        rows_broadcast = ctx.counter("cn_floyd_rows_broadcast_total")
        closure = mode == MODE_CLOSURE
        if not block.size:
            # surplus worker (workers > n): owns no rows, receives no
            # broadcasts (owners skip empty ranges), contributes an empty
            # block so the joiner's bookkeeping stays uniform
            for joiner in ctx.my_dependents():
                ctx.send(
                    joiner, ("result", my_start, block.copy(), ctx.attempt_epoch)
                )
            return {"rows": 0, "start": int(my_start)}
        for k in range(first_k, n):
            owner = _owner_of_row(k, ranges)
            if owner == me:
                row_k = block[k - my_start].copy()
                # the paper's "broadcast it": one multicast fan-out -- all
                # recipients share the row payload by reference, so it is
                # sized once and journaled once per round (not per peer)
                targets = [
                    peer
                    for peer_index, peer in enumerate(workers)
                    if peer_index != me
                    and ranges[peer_index][0] < ranges[peer_index][1]
                ]
                if targets:
                    sent = ctx.multicast(targets, ("row", k, row_k))
                    rows_broadcast.inc(sent)
            else:
                message = ctx.recv_matching(
                    lambda m, _k=k: m.is_user()
                    and m.payload[0] == "row"
                    and m.payload[1] == _k,
                    timeout=60.0,
                )
                row_k = message.payload[2]
            if block.size:
                if closure:
                    # boolean closure: reach[i][j] |= reach[i][k] & reach[k][j]
                    has_k = block[:, k] > 0
                    block[has_k] = np.maximum(block[has_k], (row_k > 0).astype(float))
                else:
                    np.minimum(block, block[:, k, None] + row_k[None, :], out=block)
            if self.checkpoint_every and (k + 1) % self.checkpoint_every == 0:
                self.checkpoint(
                    {
                        "k": k,
                        "start": int(my_start),
                        "block": block.copy(),
                        "n": n,
                        "workers": list(workers),
                        "mode": mode,
                    },
                    tag=k,
                )
            self._after_step(k, ctx)
        for joiner in ctx.my_dependents():
            ctx.send(joiner, ("result", my_start, block.copy(), ctx.attempt_epoch))
        return {
            "rows": int(block.shape[0]),
            "start": int(my_start),
            "resumed_from": resumed_from,
        }


class TCJoin(Task):
    """Collates the worker blocks into the result matrix S.

    Parameter (from CNX): the output sink -- a file path to write the
    result to, a ``store:`` key (result only returned), or empty.
    The assembled matrix is also the task's result value, which is how
    the generated client obtains it.
    """

    def __init__(self, sink: str = "") -> None:
        self.sink = sink

    def run(self, ctx: TaskContext) -> list[list[float]]:
        workers = sorted(ctx.my_dependencies())
        expected = len(workers)
        # one result per worker, deduped by (task, attempt epoch): crash
        # recovery replays message history (at-least-once delivery) and
        # manager adoption can replay a *previous* attempt's result after
        # a newer attempt already reported -- keep only the contribution
        # with the highest attempt epoch per worker, counting each once
        best: dict[str, tuple[int, int, np.ndarray]] = {}

        def fresh(message: Message) -> bool:
            if not (message.is_user() and message.payload[0] == "result"):
                return False
            epoch = message.payload[3] if len(message.payload) > 3 else 0
            got = best.get(message.sender)
            return got is None or epoch > got[0]

        while len(best) < expected:
            message = ctx.recv_matching(fresh, timeout=60.0)
            payload = message.payload
            epoch = payload[3] if len(payload) > 3 else 0
            best[message.sender] = (
                epoch,
                payload[1],
                np.array(payload[2], dtype=float),
            )
        pieces: dict[int, np.ndarray] = {}
        for _epoch, start, block in best.values():
            if block.size:
                # non-empty blocks have unique starts; surplus workers
                # (workers > n) all report an empty block at start == n
                pieces[start] = block
        ordered = [pieces[s] for s in sorted(pieces)]
        ctx.event("blocks-collated", workers=expected, blocks=len(pieces))
        result = np.vstack(ordered) if ordered else np.zeros((0, 0))
        matrix = [list(map(float, row)) for row in result]
        if self.sink and not self.sink.startswith("store:"):
            write_matrix(self.sink, matrix)
        return matrix
