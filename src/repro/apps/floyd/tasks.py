"""The three CN tasks of the guiding example (paper section 2).

"The CN implementation of the transitive closure algorithm consists of
three different tasks.  The first task, TaskSplit, reads the input and
initializes the worker tasks, TCTask, with the appropriate rows.  Each
of the TCTask workers keeps track of k, and the tasks coordinate among
themselves using the CNAPI for intertask communication. ... The
collation of the results is done by yet another task named TCJoin."

Protocol (all user-defined messages, CN merely delivers them):

* TaskSplit -> each worker:   ``("rows", start, block, n, worker_names, mode)``
  where *block* is the worker's contiguous row slice of the distance
  matrix (row-wise 1-D domain decomposition).
* worker -> other workers:    ``("row", k, row_k)`` -- in step k, the
  task owning row k broadcasts it (paper: "in the kth iteration have
  the task with the kth row broadcast it").
* worker -> joiner:           ``("result", start, block)``.

Workers discover each other and the joiner from the dependency DAG the
TaskContext exposes -- no name patterns are assumed, so the same classes
serve the explicit (Fig. 3) and dynamic (Fig. 5) compositions.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.cn.messages import Message
from repro.cn.task import Task, TaskContext

from .io import resolve_matrix, write_matrix

__all__ = ["TaskSplit", "TCTask", "TCJoin", "partition_rows"]

MODE_SHORTEST = "shortest"
MODE_CLOSURE = "closure"


def partition_rows(n: int, workers: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, end)`` row ranges, one per worker.

    The first ``n % workers`` workers receive one extra row, matching the
    usual block distribution; degenerates gracefully when workers > n
    (surplus workers get empty ranges and act as no-ops)."""
    if workers < 1:
        raise ValueError("need at least one worker")
    base, extra = divmod(n, workers)
    ranges: list[tuple[int, int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class TaskSplit(Task):
    """Reads the input matrix and initializes the workers with their rows.

    Parameters (from CNX): ``source`` -- matrix.txt path or ``store:key``;
    optional ``mode`` -- ``shortest`` (default) or ``closure``.
    """

    def __init__(self, source: str, mode: str = MODE_SHORTEST) -> None:
        self.source = source
        self.mode = mode

    def run(self, ctx: TaskContext) -> dict:
        matrix = resolve_matrix(self.source)
        n = len(matrix)
        workers = sorted(ctx.my_dependents())
        if not workers:
            raise RuntimeError("TaskSplit has no dependent workers")
        ranges = partition_rows(n, len(workers))
        dist = np.array(matrix, dtype=float)
        if self.mode == MODE_CLOSURE:
            dist = (np.isfinite(dist) & (dist != 0)).astype(float)
            np.fill_diagonal(dist, 1.0)
        else:
            idx = np.arange(n)
            dist[idx, idx] = np.minimum(dist[idx, idx], 0.0)
        for worker, (start, end) in zip(workers, ranges):
            ctx.send(
                worker,
                ("rows", start, dist[start:end].copy(), n, list(workers), self.mode),
            )
        return {"n": n, "workers": len(workers), "mode": self.mode}


def _owner_of_row(k: int, ranges: list[tuple[int, int]]) -> int:
    for index, (start, end) in enumerate(ranges):
        if start <= k < end:
            return index
    raise ValueError(f"row {k} outside all ranges {ranges}")


class TCTask(Task):
    """One worker: owns a row block, participates in the k-loop.

    Parameter (from CNX, Fig. 4): the worker's 1-based index -- kept for
    fidelity with the paper's descriptors and used as a sanity check
    against the DAG-derived role; coordination itself relies on the
    roster received from TaskSplit.
    """

    def __init__(self, index: Optional[int] = None) -> None:
        self.index = index

    def run(self, ctx: TaskContext) -> dict:
        init = ctx.recv_matching(
            lambda m: m.is_user() and m.payload[0] == "rows", timeout=60.0
        )
        _, start, block, n, workers, mode = init.payload
        block = np.array(block, dtype=float)
        me = workers.index(ctx.task_name)
        ranges = partition_rows(n, len(workers))
        my_start, my_end = ranges[me]
        assert (my_start, my_end) == (start, start + block.shape[0])

        closure = mode == MODE_CLOSURE
        if not block.size:
            # surplus worker (workers > n): owns no rows, receives no
            # broadcasts (owners skip empty ranges), contributes an empty
            # block so the joiner's bookkeeping stays uniform
            for joiner in ctx.my_dependents():
                ctx.send(joiner, ("result", my_start, block.copy()))
            return {"rows": 0, "start": int(my_start)}
        for k in range(n):
            owner = _owner_of_row(k, ranges)
            if owner == me:
                row_k = block[k - my_start].copy()
                for peer_index, peer in enumerate(workers):
                    if peer_index != me and ranges[peer_index][0] < ranges[peer_index][1]:
                        ctx.send(peer, ("row", k, row_k))
            else:
                message = ctx.recv_matching(
                    lambda m, _k=k: m.is_user()
                    and m.payload[0] == "row"
                    and m.payload[1] == _k,
                    timeout=60.0,
                )
                row_k = message.payload[2]
            if block.size:
                if closure:
                    # boolean closure: reach[i][j] |= reach[i][k] & reach[k][j]
                    has_k = block[:, k] > 0
                    block[has_k] = np.maximum(block[has_k], (row_k > 0).astype(float))
                else:
                    np.minimum(block, block[:, k, None] + row_k[None, :], out=block)
        for joiner in ctx.my_dependents():
            ctx.send(joiner, ("result", my_start, block.copy()))
        return {"rows": int(block.shape[0]), "start": int(my_start)}


class TCJoin(Task):
    """Collates the worker blocks into the result matrix S.

    Parameter (from CNX): the output sink -- a file path to write the
    result to, a ``store:`` key (result only returned), or empty.
    The assembled matrix is also the task's result value, which is how
    the generated client obtains it.
    """

    def __init__(self, sink: str = "") -> None:
        self.sink = sink

    def run(self, ctx: TaskContext) -> list[list[float]]:
        workers = sorted(ctx.my_dependencies())
        pieces: dict[int, np.ndarray] = {}
        expected = len(workers)
        # one result per worker, keyed by sender: crash recovery replays
        # message history (at-least-once delivery), so a worker whose
        # block already arrived may report again -- count each once
        seen: set[str] = set()
        while len(seen) < expected:
            message = ctx.recv_matching(
                lambda m: m.is_user()
                and m.payload[0] == "result"
                and m.sender not in seen,
                timeout=60.0,
            )
            seen.add(message.sender)
            _, start, block = message.payload
            block = np.array(block, dtype=float)
            if block.size:
                # non-empty blocks have unique starts; surplus workers
                # (workers > n) all report an empty block at start == n
                pieces[start] = block
        ordered = [pieces[s] for s in sorted(pieces)]
        result = np.vstack(ordered) if ordered else np.zeros((0, 0))
        matrix = [list(map(float, row)) for row in result]
        if self.sink and not self.sink.startswith("store:"):
            write_matrix(self.sink, matrix)
        return matrix
