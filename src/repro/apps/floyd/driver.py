"""High-level drivers for the transitive-closure / APSP guiding example.

:func:`register_floyd_tasks` binds the paper's jar/class vocabulary to
the Python task implementations; :func:`run_parallel_floyd` runs the
whole Fig. 6 pipeline (model -> XMI -> CNX -> generated client ->
cluster execution) and returns the distance matrix; helpers for the
dynamic (Fig. 5) variant and for tuple-space-based coordination round
out the API the examples and benchmarks use.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence

from repro.cn.cluster import Cluster
from repro.cn.registry import TaskRegistry
from repro.core.transform.pipeline import Pipeline, PipelineResult

from .io import store_matrix
from .model import (
    JOIN_CLASS,
    JOIN_JAR,
    SPLIT_CLASS,
    SPLIT_JAR,
    WORKER_CLASS,
    WORKER_JAR,
    build_fig3_model,
    build_fig5_model,
)
from .tasks import TaskSplit, TCJoin, TCTask

__all__ = [
    "register_floyd_tasks",
    "ensure_floyd_tasks",
    "floyd_registry",
    "run_parallel_floyd",
    "run_parallel_floyd_dynamic",
]

_store_counter = itertools.count(1)
_store_lock = threading.Lock()


def _fresh_store_key(prefix: str) -> str:
    with _store_lock:
        return f"{prefix}-{next(_store_counter)}"


def register_floyd_tasks(registry: TaskRegistry) -> TaskRegistry:
    """Bind the Fig. 2 jar/class names to the Python implementations."""
    registry.register_class(SPLIT_JAR, SPLIT_CLASS, TaskSplit)
    registry.register_class(WORKER_JAR, WORKER_CLASS, TCTask)
    registry.register_class(JOIN_JAR, JOIN_CLASS, TCJoin)
    return registry


def ensure_floyd_tasks(registry: TaskRegistry) -> TaskRegistry:
    """Bind only the Fig. 2 references *missing* from *registry* -- a
    caller-supplied binding (e.g. an instrumented TCTask subclass in the
    failover tests, or a tuned ``checkpoint_every`` variant in the
    benchmarks) is left in place."""
    from repro.cn.errors import TaskLoadError

    for jar, cls_name, impl in (
        (SPLIT_JAR, SPLIT_CLASS, TaskSplit),
        (WORKER_JAR, WORKER_CLASS, TCTask),
        (JOIN_JAR, JOIN_CLASS, TCJoin),
    ):
        try:
            registry.resolve(jar, cls_name)
        except TaskLoadError:
            registry.register_class(jar, cls_name, impl)
    return registry


def floyd_registry() -> TaskRegistry:
    """A fresh registry with the Floyd tasks bound."""
    return register_floyd_tasks(TaskRegistry())


def run_parallel_floyd(
    matrix: Sequence[Sequence[float]],
    *,
    n_workers: int = 5,
    cluster: Optional[Cluster] = None,
    transform: str = "xslt",
    mode: str = "shortest",
    timeout: float = 120.0,
    retries: int = 0,
) -> tuple[list[list[float]], PipelineResult]:
    """Full pipeline run of the Fig. 3 job on *matrix*.

    Returns ``(result_matrix, pipeline_result)``.  The input is staged in
    the matrix store so no files touch disk.  *retries* grants every
    task that retry budget -- required for runs on a chaos cluster."""
    key = _fresh_store_key("floyd")
    source = store_matrix(key, matrix)
    graph = build_fig3_model(
        n_workers=n_workers, matrix_source=source, sink="", mode=mode,
        retries=retries,
    )
    return _execute(graph, cluster, transform, timeout, runtime_args=None,
                    joiner="tctask999")


def run_parallel_floyd_dynamic(
    matrix: Sequence[Sequence[float]],
    *,
    n_workers: int = 5,
    cluster: Optional[Cluster] = None,
    transform: str = "xslt",
    mode: str = "shortest",
    timeout: float = 120.0,
    retries: int = 0,
) -> tuple[list[list[float]], PipelineResult]:
    """Full pipeline run of the Fig. 5 (dynamic invocation) job: the
    worker count is bound at run time through ``runtime_args``."""
    key = _fresh_store_key("floyd-dyn")
    source = store_matrix(key, matrix)
    graph = build_fig5_model(
        matrix_source=source, sink="", mode=mode, retries=retries
    )
    return _execute(
        graph,
        cluster,
        transform,
        timeout,
        runtime_args={"n_workers": n_workers},
        joiner="taskjoin",
    )


def _execute(graph, cluster, transform, timeout, runtime_args, joiner):
    pipeline = Pipeline(transform=transform)
    owns = cluster is None
    if owns:
        cluster = Cluster(4, registry=floyd_registry())
    else:
        ensure_floyd_tasks(cluster.registry)
    try:
        outcome = pipeline.run(
            graph, cluster, runtime_args=runtime_args, timeout=timeout
        )
    finally:
        if owns:
            cluster.shutdown()
    return outcome.results[joiner], outcome
