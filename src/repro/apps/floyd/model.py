"""Activity-diagram models of the guiding example (paper Figs. 3 and 5).

:func:`build_fig3_model` reproduces Fig. 3 -- explicit concurrency with a
fixed number of workers (tctask0 / tctask1..5 / tctask999 with the jars,
classes, memory and runmodel of Figs. 2 and 4).

:func:`build_fig5_model` reproduces Fig. 5 -- the same job with the
worker as a dynamic-invocation action state (multiplicity ``0..*``);
the run-time argument expression is supplied at execution time (the
paper: "a specific run-time argument expression would be specified
separately").
"""

from __future__ import annotations

from repro.core.uml.activity import ActivityGraph
from repro.core.uml.builder import ActivityBuilder

__all__ = [
    "SPLIT_JAR",
    "SPLIT_CLASS",
    "WORKER_JAR",
    "WORKER_CLASS",
    "JOIN_JAR",
    "JOIN_CLASS",
    "build_fig3_model",
    "build_fig5_model",
]

# the jar/class vocabulary of paper Figs. 2 and 4
SPLIT_JAR = "tasksplit.jar"
SPLIT_CLASS = "org.jhpc.cn2.transcloser.TaskSplit"
WORKER_JAR = "tctask.jar"
WORKER_CLASS = "org.jhpc.cn2.trnsclsrtask.TCTask"
JOIN_JAR = "taskjoin.jar"
JOIN_CLASS = "org.jhpc.cn2.transcloser.TaskJoin"


def build_fig3_model(
    *,
    n_workers: int = 5,
    matrix_source: str = "matrix.txt",
    sink: str = "matrix.txt",
    memory: int = 1000,
    runmodel: str = "RUN_AS_THREAD_IN_TM",
    name: str = "TransClosure",
    mode: str = "shortest",
    retries: int = 0,
) -> ActivityGraph:
    """The Fig. 3 diagram: split -> fork -> N workers -> join -> joiner.

    *mode* selects the worker kernel (``shortest`` | ``closure``); the
    non-default mode travels as a second CNX param on the splitter.
    *retries* gives every task that retry budget (the ``retries``
    tagged-value extension), which fault-tolerance runs rely on."""
    split_params = [("String", matrix_source)]
    if mode != "shortest":
        split_params.append(("String", mode))
    b = ActivityBuilder(name)
    split = b.task(
        "tctask0",
        jar=SPLIT_JAR,
        cls=SPLIT_CLASS,
        memory=memory,
        runmodel=runmodel,
        params=split_params,
        retries=retries,
    )
    workers = [
        b.task(
            f"tctask{i}",
            jar=WORKER_JAR,
            cls=WORKER_CLASS,
            memory=memory,
            runmodel=runmodel,
            params=[("Integer", str(i))],
            retries=retries,
        )
        for i in range(1, n_workers + 1)
    ]
    joiner = b.task(
        "tctask999",
        jar=JOIN_JAR,
        cls=JOIN_CLASS,
        memory=memory,
        runmodel=runmodel,
        params=[("String", sink)],
        retries=retries,
    )
    b.chain(b.initial(), split)
    b.fan_out_in(split, workers, joiner)
    b.chain(joiner, b.final())
    return b.build()


def build_fig5_model(
    *,
    matrix_source: str = "matrix.txt",
    sink: str = "matrix.txt",
    memory: int = 1000,
    runmodel: str = "RUN_AS_THREAD_IN_TM",
    multiplicity: str = "0..*",
    argument_expr: str = "[(i,) for i in range(1, n_workers + 1)]",
    name: str = "TransClosure",
    mode: str = "shortest",
    retries: int = 0,
) -> ActivityGraph:
    """The Fig. 5 diagram: the worker as a dynamic invocation.

    *argument_expr* yields one argument list per concurrent invocation at
    run time (``n_workers`` is supplied through ``runtime_args``);
    *retries* as in :func:`build_fig3_model`."""
    split_params = [("String", matrix_source)]
    if mode != "shortest":
        split_params.append(("String", mode))
    b = ActivityBuilder(name)
    split = b.task(
        "tasksplit",
        jar=SPLIT_JAR,
        cls=SPLIT_CLASS,
        memory=memory,
        runmodel=runmodel,
        params=split_params,
        retries=retries,
    )
    worker = b.dynamic_task(
        "tctask",
        jar=WORKER_JAR,
        cls=WORKER_CLASS,
        memory=memory,
        runmodel=runmodel,
        multiplicity=multiplicity,
        argument_expr=argument_expr,
        retries=retries,
    )
    joiner = b.task(
        "taskjoin",
        jar=JOIN_JAR,
        cls=JOIN_CLASS,
        memory=memory,
        runmodel=runmodel,
        params=[("String", sink)],
        retries=retries,
    )
    b.chain(b.initial(), split, worker, joiner, b.final())
    return b.build()
