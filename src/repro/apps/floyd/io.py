"""matrix.txt I/O and the in-memory matrix store.

The Fig. 2 descriptor passes ``matrix.txt`` to TaskSplit and TaskJoin.
We honor that contract: :func:`read_matrix`/:func:`write_matrix` handle
the file format (first line is N, then N whitespace-separated rows with
``inf`` for absent edges).

Tests and benchmarks want to avoid disk, so a parameter value of the
form ``store:<key>`` resolves against the process-wide
:class:`MatrixStore` instead -- the descriptor stays exactly the same
shape, only the "file name" differs.

Under the proc transport the store spans two processes: the
coordinator stages matrices before the job runs, then the worker forks.
Keys staged *after* the fork miss the worker's copy-on-write snapshot,
so :meth:`MatrixStore.get` falls back to the transport's blob channel
(``fetch_blob("matrix", key)``) and caches the answer; the
coordinator side of that channel is the resolver registered below.
"""

from __future__ import annotations

import math
import threading
from pathlib import Path
from typing import Sequence, Union

from repro.cn.transport import fetch_blob, register_blob_resolver, register_fork_reset

__all__ = ["read_matrix", "write_matrix", "MatrixStore", "resolve_matrix", "store_matrix"]

Matrix = list[list[float]]


def write_matrix(path: Union[str, Path], matrix: Sequence[Sequence[float]]) -> None:
    """Write *matrix* in matrix.txt format."""
    lines = [str(len(matrix))]
    for row in matrix:
        lines.append(" ".join("inf" if math.isinf(v) else repr(float(v)) for v in row))
    Path(path).write_text("\n".join(lines) + "\n")


def read_matrix(path: Union[str, Path]) -> Matrix:
    """Read a matrix.txt file."""
    text = Path(path).read_text()
    tokens = text.split()
    if not tokens:
        raise ValueError(f"{path}: empty matrix file")
    n = int(tokens[0])
    values = tokens[1:]
    if len(values) != n * n:
        raise ValueError(f"{path}: expected {n * n} values, found {len(values)}")
    matrix: Matrix = []
    it = iter(values)
    for _ in range(n):
        matrix.append([float(next(it)) for _ in range(n)])
    return matrix


class MatrixStore:
    """Process-wide named matrix registry (thread-safe singleton)."""

    _instance: "MatrixStore" = None  # type: ignore[assignment]
    _instance_lock = threading.Lock()

    def __init__(self) -> None:
        self._data: dict[str, Matrix] = {}
        self._lock = threading.Lock()

    @classmethod
    def instance(cls) -> "MatrixStore":
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    def put(self, key: str, matrix: Sequence[Sequence[float]]) -> str:
        with self._lock:
            self._data[key] = [list(map(float, row)) for row in matrix]
        return f"store:{key}"

    def get(self, key: str) -> Matrix:
        with self._lock:
            rows = self._data.get(key)
            if rows is not None:
                return [row[:] for row in rows]
        # Proc-transport fallback: a worker forked before this key was
        # staged asks the coordinator over the blob channel and caches
        # the result (fetch_blob raises KeyError outside a worker).
        try:
            fetched = fetch_blob("matrix", key)
        except KeyError:
            raise KeyError(f"no matrix stored under {key!r}") from None
        matrix = [list(map(float, row)) for row in fetched]
        with self._lock:
            self._data.setdefault(key, matrix)
        return [row[:] for row in matrix]

    def pop(self, key: str) -> Matrix:
        with self._lock:
            return self._data.pop(key)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


def store_matrix(key: str, matrix: Sequence[Sequence[float]]) -> str:
    """Stash *matrix* under *key*; returns the ``store:<key>`` source string."""
    return MatrixStore.instance().put(key, matrix)


def resolve_matrix(source: str) -> Matrix:
    """Resolve a TaskSplit parameter: ``store:<key>`` or a file path."""
    if source.startswith("store:"):
        return MatrixStore.instance().get(source[len("store:") :])
    return read_matrix(source)


def _serve_matrix_blob(key: str) -> Matrix:
    """Coordinator side of the worker blob channel: answer
    ``fetch_blob("matrix", key)`` RPCs from the staged store (KeyError
    propagates back to the worker as the cache-miss signal)."""
    store = MatrixStore.instance()
    with store._lock:  # conclint: waive CC402 -- resolver is store-private by design, runs in the transport demux thread
        rows = store._data.get(key)
    if rows is None:
        raise KeyError(key)
    return [row[:] for row in rows]


def _reset_store_locks() -> None:
    """Fork hook: the worker may have forked while another coordinator
    thread held a store lock; replace both with fresh unlocked ones."""
    MatrixStore._instance_lock = threading.Lock()
    instance = MatrixStore._instance
    if instance is not None:
        instance._lock = threading.Lock()  # conclint: waive CC402 -- post-fork re-arm, single-threaded at this point


register_blob_resolver("matrix", _serve_matrix_blob)
register_fork_reset(_reset_store_locks)
