"""Computational Neighborhood (CN) runtime: a simulated cluster with the
paper's architecture -- CNServer servants (JobManager + TaskManager),
multicast discovery, per-task message queues, task archives, tuple
spaces, and the client-side CN API facade."""

from .api import CNAPI, JobHandle
from .archive import TaskArchive, create_archive, load_archive
from .chaos import (
    ChaosPolicy,
    ExponentialBackoff,
    FaultRecord,
    InjectedFault,
    VirtualClock,
)
from .client import ClientResult, ClientRunner, evaluate_arguments, expand_dynamic_tasks
from .cluster import Cluster
from .durability import (
    DirectoryEntry,
    FileJournal,
    JobDirectory,
    JobSnapshot,
    JournalRecord,
    MemoryJournal,
    ReplicatedJournal,
    journal_factory_for_dir,
    replay_job,
)
from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .errors import (
    ArchiveError,
    BudgetExhausted,
    CnError,
    ConfigError,
    FrameCorrupt,
    FrameTruncated,
    JobError,
    JobTimeoutError,
    JournalError,
    MessageTimeout,
    NoWillingJobManager,
    NoWillingTaskManager,
    Overloaded,
    RemoteTaskError,
    ShutdownError,
    TaskFailedError,
    TaskLoadError,
    TransportError,
    UnknownTaskError,
    WorkerLost,
)
from .job import Job, TaskRuntime, TaskSpec, TaskState
from .jobmanager import FailureDetector, JobManager
from .messages import Message, MessageType, expected_response, is_well_defined
from .multicast import MulticastBus, Solicitation
from .queues import MessageQueue
from .registry import TaskRegistry
from .runmodel import RunModel
from .scheduler import Bid, PlacementRule, award_bids
from .server import CNServer
from .task import FunctionTask, Task, TaskContext
from .telemetry import (
    CriticalPath,
    MetricsRegistry,
    Span,
    SpanRecorder,
    Telemetry,
    chrome_trace,
    critical_path,
    orphan_spans,
    prometheus_text,
)
from .trace import JobTrace, TaskTrace, TraceEvent, collect_trace, render_timeline
from .taskmanager import TaskManager
from .tuplespace import TupleSpace, matches

__all__ = [
    "CNAPI",
    "JobHandle",
    "Cluster",
    "CNServer",
    "JobManager",
    "TaskManager",
    "TaskRegistry",
    "TaskArchive",
    "create_archive",
    "load_archive",
    "Task",
    "TaskContext",
    "FunctionTask",
    "JobTrace",
    "TaskTrace",
    "TraceEvent",
    "collect_trace",
    "render_timeline",
    "TaskSpec",
    "TaskState",
    "TaskRuntime",
    "Job",
    "Message",
    "MessageType",
    "is_well_defined",
    "expected_response",
    "MessageQueue",
    "MulticastBus",
    "Solicitation",
    "PlacementRule",
    "Bid",
    "award_bids",
    "TupleSpace",
    "matches",
    "RunModel",
    "ClientRunner",
    "ClientResult",
    "expand_dynamic_tasks",
    "evaluate_arguments",
    "CnError",
    "ArchiveError",
    "TaskLoadError",
    "NoWillingJobManager",
    "NoWillingTaskManager",
    "JobError",
    "JobTimeoutError",
    "TaskFailedError",
    "UnknownTaskError",
    "MessageTimeout",
    "ShutdownError",
    "Overloaded",
    "BudgetExhausted",
    "ConfigError",
    "TransportError",
    "FrameCorrupt",
    "FrameTruncated",
    "WorkerLost",
    "RemoteTaskError",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "ChaosPolicy",
    "ExponentialBackoff",
    "FaultRecord",
    "InjectedFault",
    "VirtualClock",
    "FailureDetector",
    "JournalRecord",
    "JournalError",
    "MemoryJournal",
    "FileJournal",
    "ReplicatedJournal",
    "JobDirectory",
    "DirectoryEntry",
    "JobSnapshot",
    "replay_job",
    "journal_factory_for_dir",
    "Telemetry",
    "MetricsRegistry",
    "SpanRecorder",
    "Span",
    "CriticalPath",
    "critical_path",
    "chrome_trace",
    "prometheus_text",
    "orphan_spans",
]
