"""CN messaging model.

"CN uses messages as the fundamental information between the CN and the
client.  CN has well-defined messages that define the Message Request,
expected Message Action and expected Message Response.  Besides the
well-defined messages, CN also allows user-defined messages that only
the application (client and its tasks) understands." (paper section 3)

The model deliberately resembles the Windows/X message loop the paper
cites: every task owns a queue, messages are small typed records, and
the framework's own protocol messages share the transport with
user-defined application messages.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Optional

__all__ = [
    "MessageType",
    "Message",
    "WELL_DEFINED",
    "is_well_defined",
    "expected_response",
    "payload_digest",
    "corrupt_copy",
    "CORRUPT_MARKER",
]

#: sentinel planted by :func:`corrupt_copy` -- the simulated bit-flip a
#: faulty link applies to a frame's payload while leaving the envelope
#: (serial, digest) intact
CORRUPT_MARKER = "__cn_corrupt__"


def payload_digest(payload: Any) -> Optional[int]:
    """CRC32 over the payload's canonical (pickled) frame bytes.

    This is the transport checksum: the router stamps it on outbound
    messages (:meth:`Message.seal`) and queues re-verify it at dequeue,
    so a frame corrupted in flight is detected *before* a task consumes
    it.  Returns None for unpicklable payloads -- they can never cross a
    real wire, so they ride unprotected in-process (the same graceful
    degradation the size accounting applies).
    """
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError, RecursionError):
        return None
    return zlib.crc32(blob)


def corrupt_copy(message: "Message") -> "Message":
    """A damaged copy of *message*: same serial and digest, payload
    replaced by a corruption sentinel -- what a fault on the link would
    deliver.  With checksums enabled the digest no longer matches and
    dequeue-time verification quarantines the frame; without checksums
    the damage flows through undetected (exactly the failure mode the
    checksum exists to close)."""
    return replace(message, payload=(CORRUPT_MARKER, message.serial))


class MessageType:
    """Well-defined CN message types plus the USER escape hatch."""

    # client -> framework requests
    CREATE_JOB = "CREATE_JOB"
    CREATE_TASK = "CREATE_TASK"
    START_TASK = "START_TASK"
    CANCEL_TASK = "CANCEL_TASK"
    QUERY_STATUS = "QUERY_STATUS"
    SHUTDOWN = "SHUTDOWN"

    # framework -> client responses / notifications
    JOB_CREATED = "JOB_CREATED"
    TASK_CREATED = "TASK_CREATED"
    TASK_STARTED = "TASK_STARTED"
    TASK_COMPLETED = "TASK_COMPLETED"
    TASK_FAILED = "TASK_FAILED"
    TASK_RETRY = "TASK_RETRY"
    TASK_CANCELLED = "TASK_CANCELLED"
    TASK_TIMEOUT = "TASK_TIMEOUT"
    STATUS = "STATUS"
    JOB_COMPLETED = "JOB_COMPLETED"
    JOB_FAILED = "JOB_FAILED"
    # fault-tolerance notifications (repository extension): a node was
    # declared dead by the failure detector / a dynamic job shrank its
    # worker multiplicity to fit degraded cluster capacity
    NODE_FAILED = "NODE_FAILED"
    JOB_DEGRADED = "JOB_DEGRADED"
    # durability notifications (repository extension): a successor
    # JobManager adopted the job after its manager died / a task attempt
    # resumed from an application checkpoint instead of from scratch
    MANAGER_ADOPTED = "MANAGER_ADOPTED"
    TASK_RESUMED = "TASK_RESUMED"
    # decentralized scheduling (repository extension): a JobManager
    # publishes a placement RULE describing a batch of homogeneous
    # tasks, nodes answer with BIDs, and the manager AWARDs tasks to
    # winning bidders (the paper's solicit is the degenerate 1-task rule)
    RULE = "RULE"
    BID = "BID"
    AWARD = "AWARD"

    # application-defined payloads; CN is a pure delivery mechanism
    USER = "USER"


# request -> (expected action description, expected response types)
WELL_DEFINED: dict[str, tuple[str, tuple[str, ...]]] = {
    MessageType.CREATE_JOB: (
        "select a JobManager and create the job",
        (MessageType.JOB_CREATED,),
    ),
    MessageType.CREATE_TASK: (
        "solicit a TaskManager, upload the archive, set up the task queue",
        (MessageType.TASK_CREATED,),
    ),
    MessageType.START_TASK: (
        "execute the task in its own thread",
        (MessageType.TASK_STARTED,),
    ),
    MessageType.CANCEL_TASK: (
        "interrupt the task if running",
        (MessageType.TASK_CANCELLED,),
    ),
    MessageType.QUERY_STATUS: (
        "report job/task status",
        (MessageType.STATUS,),
    ),
    MessageType.SHUTDOWN: ("stop the component", ()),
    MessageType.RULE: (
        "expand candidates locally, score them, and submit a bid",
        (MessageType.BID,),
    ),
    MessageType.AWARD: (
        "host the awarded tasks and confirm placement",
        (MessageType.TASK_CREATED,),
    ),
}


def is_well_defined(message_type: str) -> bool:
    """Whether *message_type* is part of the CN protocol (not USER)."""
    return message_type in WELL_DEFINED or message_type in {
        MessageType.JOB_CREATED,
        MessageType.TASK_CREATED,
        MessageType.TASK_STARTED,
        MessageType.TASK_COMPLETED,
        MessageType.TASK_FAILED,
        MessageType.TASK_RETRY,
        MessageType.TASK_CANCELLED,
        MessageType.TASK_TIMEOUT,
        MessageType.STATUS,
        MessageType.JOB_COMPLETED,
        MessageType.JOB_FAILED,
        MessageType.NODE_FAILED,
        MessageType.JOB_DEGRADED,
        MessageType.MANAGER_ADOPTED,
        MessageType.TASK_RESUMED,
        MessageType.BID,
    }


def expected_response(request_type: str) -> tuple[str, ...]:
    """The response types a well-defined request expects."""
    try:
        return WELL_DEFINED[request_type][1]
    except KeyError:
        raise KeyError(f"{request_type!r} is not a well-defined request") from None


_serial = itertools.count(1)
_serial_lock = threading.Lock()


def _next_serial() -> int:
    with _serial_lock:
        return next(_serial)


@dataclass(frozen=True)
class Message:
    """An immutable message record.

    ``sender`` / ``recipient`` are task names (or the reserved names
    ``client``, ``jobmanager``, ``taskmanager``).  ``correlation`` ties a
    response to its request.  ``serial`` gives a process-wide total order
    useful in tests and logs (a logical clock; no wall time involved, so
    runs are deterministic under a fixed schedule).

    ``ts`` is a monotonic timestamp taken at construction, so traces and
    the delivery ledger get real timing; ordering assertions must keep
    using ``serial`` (the logical clock), never ``ts``.  ``origin`` is
    the node that produced the message (None when built outside any
    node, e.g. by the client).  ``trace_ctx`` is the causal context --
    ``(trace_id, span_id)`` of the producing span -- stamped by the
    telemetry layer and propagated through queues, the bus, retries, and
    failover adoptions.  ``deadline`` is the end-to-end job deadline in
    cluster-clock time (absolute, not a duration): the router stamps it
    from the job budget and every hop downstream can compare it against
    the cluster clock to drop work that is already doomed.

    ``digest`` is the optional CRC32 transport checksum over the payload
    (:func:`payload_digest`), stamped by :meth:`seal` on the sending side
    and re-verified by queues at dequeue when checksums are enabled.
    None means the frame is unprotected (checksums off, or unpicklable
    payload) and verification passes it through.
    """

    type: str
    sender: str
    recipient: str
    payload: Any = None
    correlation: Optional[int] = None
    serial: int = field(default_factory=_next_serial)
    ts: float = field(default_factory=time.monotonic, compare=False)
    origin: Optional[str] = None
    trace_ctx: Optional[tuple[str, str]] = None
    deadline: Optional[float] = None
    digest: Optional[int] = field(default=None, compare=False)

    def seal(self) -> "Message":
        """A copy carrying the CRC32 digest of the current payload.

        Idempotent in effect: re-sealing an unmodified message computes
        the same digest.  If the payload cannot be pickled the digest
        stays None and the frame rides unprotected.
        """
        return replace(self, digest=payload_digest(self.payload))

    def digest_ok(self) -> bool:
        """Whether the payload still matches its sealed digest.

        Unsealed frames (digest None) vacuously pass -- absence of a
        checksum is "unprotected", not "corrupt".
        """
        if self.digest is None:
            return True
        return payload_digest(self.payload) == self.digest

    def is_user(self) -> bool:
        return self.type == MessageType.USER

    def reply(
        self,
        type: str,
        sender: str,
        payload: Any = None,
        *,
        origin: Optional[str] = None,
    ) -> "Message":
        """Build the response message correlated with this request.

        The reply inherits the request's ``trace_ctx`` (a response is
        causally downstream of the span that sent the request) and its
        ``deadline`` (answering a request does not buy more budget).
        """
        return Message(
            type=type,
            sender=sender,
            recipient=self.sender,
            payload=payload,
            correlation=self.serial,
            origin=origin,
            trace_ctx=self.trace_ctx,
            deadline=self.deadline,
        )

    @staticmethod
    def user(
        sender: str,
        recipient: str,
        payload: Any,
        *,
        origin: Optional[str] = None,
        trace_ctx: Optional[tuple[str, str]] = None,
    ) -> "Message":
        """A user-defined message; CN merely delivers it."""
        return Message(
            MessageType.USER,
            sender,
            recipient,
            payload,
            origin=origin,
            trace_ctx=trace_ctx,
        )
