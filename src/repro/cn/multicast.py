"""Simulated multicast discovery bus.

"Requests to JobManager are communicated using multicast.  JobManagers
respond to multicast requests for JobManagers if they have free
resources and are willing to be JobManagers." (paper section 3)

The bus is an in-process pub/sub channel: components subscribe with a
responder callable; :meth:`solicit` delivers the request to every
subscriber and collects the non-``None`` responses.  A configurable
per-subscriber artificial latency lets the placement benchmarks model
cluster sizes (the real system pays one LAN round-trip per responder;
we charge a deterministic simulated cost instead of wall-clock sleeps).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["MulticastBus", "Solicitation", "BusStats"]

Responder = Callable[["Solicitation"], Optional[Any]]


@dataclass(frozen=True)
class Solicitation:
    """A multicast request: what is being solicited and its requirements."""

    kind: str  # "jobmanager" | "taskmanager"
    requirements: dict
    sender: str


@dataclass
class BusStats:
    """Deterministic accounting used by the placement benchmarks."""

    solicitations: int = 0
    deliveries: int = 0
    responses: int = 0
    simulated_latency: float = 0.0  # accumulated virtual seconds


class MulticastBus:
    """In-process multicast with response collection."""

    def __init__(self, *, per_hop_latency: float = 0.0) -> None:
        self._subscribers: list[tuple[str, Responder]] = []
        self._lock = threading.RLock()
        self.per_hop_latency = per_hop_latency
        self.stats = BusStats()

    def subscribe(self, name: str, responder: Responder) -> None:
        with self._lock:
            self._subscribers.append((name, responder))

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            self._subscribers = [(n, r) for n, r in self._subscribers if n != name]

    def subscriber_names(self) -> list[str]:
        with self._lock:
            return [n for n, _ in self._subscribers]

    def solicit(self, solicitation: Solicitation) -> list[tuple[str, Any]]:
        """Deliver to all subscribers; collect willing (name, offer) pairs.

        Delivery order is subscription order, making runs deterministic;
        responders that raise are treated as unwilling (a crashed node
        must not take down discovery).
        """
        with self._lock:
            subscribers = list(self._subscribers)
        self.stats.solicitations += 1
        offers: list[tuple[str, Any]] = []
        for name, responder in subscribers:
            self.stats.deliveries += 1
            self.stats.simulated_latency += self.per_hop_latency
            try:
                offer = responder(solicitation)
            except Exception:
                continue
            if offer is not None:
                self.stats.responses += 1
                offers.append((name, offer))
        return offers
