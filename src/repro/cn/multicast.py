"""Simulated multicast discovery bus.

"Requests to JobManager are communicated using multicast.  JobManagers
respond to multicast requests for JobManagers if they have free
resources and are willing to be JobManagers." (paper section 3)

The bus is an in-process pub/sub channel: components subscribe with a
responder callable; :meth:`solicit` delivers the request to every
subscriber and collects the non-``None`` responses.  A configurable
per-subscriber artificial latency lets the placement benchmarks model
cluster sizes (the real system pays one LAN round-trip per responder;
we charge a deterministic simulated cost instead of wall-clock sleeps).

Fault-tolerance extensions:

* :meth:`publish` / :meth:`attach_listener` -- one-way event fan-out
  (heartbeats) alongside the request/response solicitations,
* :meth:`set_partition` -- a network partition: deliveries only cross
  between nodes in the same group; names that are not cluster nodes
  (clients, the portal) are outside the partition and reach everyone,
* an optional :class:`~repro.cn.chaos.ChaosPolicy` that may drop any
  individual delivery (lossy multicast), keyed deterministically by the
  bus-wide delivery index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..analysis.conc.runtime import make_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .chaos import ChaosPolicy

__all__ = ["MulticastBus", "Solicitation", "BusStats"]

Responder = Callable[["Solicitation"], Optional[Any]]
Listener = Callable[[str, dict], None]


def _node_of(name: str) -> str:
    """The node a bus participant belongs to (``node0/tm`` -> ``node0``)."""
    return name.split("/", 1)[0]


@dataclass(frozen=True)
class Solicitation:
    """A multicast request: what is being solicited and its requirements."""

    kind: str  # "jobmanager" | "taskmanager" | "rule" (bid scheduler)
    requirements: dict
    sender: str


@dataclass
class BusStats:
    """Deterministic accounting used by the placement benchmarks."""

    solicitations: int = 0
    deliveries: int = 0
    responses: int = 0
    simulated_latency: float = 0.0  # accumulated virtual seconds
    publishes: int = 0
    dropped: int = 0      # chaos-injected delivery losses
    partitioned: int = 0  # deliveries blocked by an active partition


class MulticastBus:
    """In-process multicast with response collection."""

    def __init__(
        self,
        *,
        per_hop_latency: float = 0.0,
        chaos: "Optional[ChaosPolicy]" = None,
    ) -> None:
        self._subscribers: list[tuple[str, Responder]] = []
        self._listeners: list[tuple[str, Listener]] = []
        self._lock = make_lock("MulticastBus._lock")
        self.per_hop_latency = per_hop_latency
        self.chaos = chaos
        self.stats = BusStats()
        self._groups: Optional[dict[str, int]] = None
        self._delivery_index = 0
        #: cluster Telemetry hub; set by Cluster wiring (None = no metrics)
        self.telemetry: Optional[Any] = None
        #: per-solicitation latency histogram, bound once at wiring time
        #: so the hot path pays one None-check when telemetry is off
        self._solicit_hist: Optional[Any] = None

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Register a scrape-time collector that folds :class:`BusStats`
        into the registry -- the publish/solicit hot paths already count
        into plain ints, so per-event metric increments would only pay
        the same cost twice."""
        if telemetry is None or not telemetry.enabled:
            self.telemetry = None
            self._solicit_hist = None
            return
        self.telemetry = telemetry
        self._solicit_hist = telemetry.metrics.histogram("cn_solicit_seconds")
        telemetry.metrics.add_collector(self._collect_bus_stats)

    def _collect_bus_stats(self) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        metrics.counter("cn_bus_publishes_total")._set_total(self.stats.publishes)
        metrics.counter("cn_bus_solicitations_total")._set_total(
            self.stats.solicitations
        )
        metrics.counter("cn_bus_dropped_total")._set_total(self.stats.dropped)

    def subscribe(self, name: str, responder: Responder) -> None:
        with self._lock:
            self._subscribers.append((name, responder))

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            self._subscribers = [(n, r) for n, r in self._subscribers if n != name]

    def subscriber_names(self) -> list[str]:
        with self._lock:
            return [n for n, _ in self._subscribers]

    # -- event listeners (heartbeats) -----------------------------------------
    def attach_listener(self, name: str, listener: Listener) -> None:
        """Register a one-way event listener (no response collected)."""
        with self._lock:
            self._listeners.append((name, listener))

    def detach_listener(self, name: str) -> None:
        with self._lock:
            self._listeners = [(n, f) for n, f in self._listeners if n != name]

    def publish(self, topic: str, payload: dict, *, sender: str = "") -> int:
        """Deliver an event to every reachable listener; returns the
        number of successful deliveries.  Listeners that raise are
        skipped (a crashed node must not take down the subnet)."""
        with self._lock:
            listeners = list(self._listeners)
        self.stats.publishes += 1
        delivered = 0
        for name, listener in listeners:
            if not self.reachable(sender, name):
                self.stats.partitioned += 1
                continue
            if self._chaos_drops(sender, name):
                continue
            try:
                listener(topic, payload)
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- a crashed listener must not take down the subnet
                continue
            delivered += 1
        return delivered

    # -- partitions ---------------------------------------------------------------
    def set_partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the subnet: deliveries cross only within a group.
        Participants not named in any group (clients, the portal) are
        outside the partition and stay reachable from everywhere."""
        mapping: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[_node_of(name)] = index
        with self._lock:
            self._groups = mapping

    def heal_partition(self) -> None:
        with self._lock:
            self._groups = None

    def readmit(self, name: str) -> None:
        """Return one node to the default reachability set (heal-on-
        revive): a rebooted machine rejoins the open subnet rather than
        inheriting the partition group it died in.  If that empties the
        partition map the partition is fully healed."""
        node = _node_of(name)
        with self._lock:
            if self._groups is not None:
                self._groups.pop(node, None)
                if not self._groups:
                    self._groups = None

    def reachable(self, sender: str, receiver: str) -> bool:
        with self._lock:
            groups = self._groups
        if groups is None:
            return True
        sender_group = groups.get(_node_of(sender))
        receiver_group = groups.get(_node_of(receiver))
        if sender_group is None or receiver_group is None:
            return True  # at least one endpoint is outside the partition
        return sender_group == receiver_group

    # -- solicitations -----------------------------------------------------------
    def solicit(self, solicitation: Solicitation) -> list[tuple[str, Any]]:
        """Deliver to all subscribers; collect willing (name, offer) pairs.

        Delivery order is subscription order, making runs deterministic;
        responders that raise are treated as unwilling (a crashed node
        must not take down discovery).
        """
        with self._lock:
            subscribers = list(self._subscribers)
        self.stats.solicitations += 1
        hist = self._solicit_hist
        start = time.perf_counter() if hist is not None else 0.0
        offers: list[tuple[str, Any]] = []
        for name, responder in subscribers:
            if not self.reachable(solicitation.sender, name):
                self.stats.partitioned += 1
                continue
            if self._chaos_drops(solicitation.sender, name):
                continue
            self.stats.deliveries += 1
            self.stats.simulated_latency += self.per_hop_latency
            try:
                offer = responder(solicitation)
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- a crashed responder must not take down discovery
                continue
            if offer is not None:
                self.stats.responses += 1
                offers.append((name, offer))
        if hist is not None:
            hist.observe(time.perf_counter() - start)
        return offers

    def _chaos_drops(self, sender: str, receiver: str) -> bool:
        chaos = self.chaos
        if chaos is None or not chaos.enabled:
            return False
        with self._lock:
            self._delivery_index += 1
            index = self._delivery_index
        if chaos.bus_drop(sender, receiver, index):
            self.stats.dropped += 1
            return True
        return False
