"""Task archives: the Python analogue of the paper's task JAR files.

"A Task is typically packaged as a self-sufficient JAR file that has a
class that conforms to the Task interface defined by CN API" (paper
section 3).  Our archives are zip files with the same contract:

* ``CN-MANIFEST.json`` -- maps fully-qualified class names (dotted, Java
  style, e.g. ``org.jhpc.cn2.trnsclsrtask.TCTask``) to the Python module
  and attribute implementing them,
* one or more ``.py`` source files.

:func:`create_archive` builds one from source text; :func:`load_archive`
opens and verifies one; :meth:`TaskArchive.load_class` materializes a
task class by executing the packaged module in an isolated namespace
(archives are self-sufficient: they may import the standard library,
numpy, and ``repro.cn`` itself, but not each other).
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Mapping, Optional, Type

from .errors import ArchiveError, TaskLoadError
from .task import Task

__all__ = ["TaskArchive", "create_archive", "load_archive", "MANIFEST_NAME"]

MANIFEST_NAME = "CN-MANIFEST.json"


class TaskArchive:
    """An opened, verified task archive."""

    def __init__(self, name: str, manifest: dict, sources: dict[str, str]) -> None:
        self.name = name
        self.manifest = manifest
        self.sources = sources
        self._class_cache: dict[str, Type[Task]] = {}

    @property
    def classes(self) -> dict[str, dict]:
        return self.manifest.get("classes", {})

    def provides(self, class_name: str) -> bool:
        return class_name in self.classes

    def load_class(self, class_name: str) -> Type[Task]:
        """Resolve *class_name* to the packaged task class.

        The module executes once per archive instance and is cached;
        repeated task creations reuse the same class object, matching the
        JVM semantics of loading a class once per classloader.
        """
        if class_name in self._class_cache:
            return self._class_cache[class_name]
        entry = self.classes.get(class_name)
        if entry is None:
            raise TaskLoadError(
                f"archive {self.name!r} does not provide class {class_name!r} "
                f"(has: {sorted(self.classes)})"
            )
        module_file = entry.get("module")
        attribute = entry.get("attribute")
        if module_file not in self.sources:
            raise ArchiveError(
                f"archive {self.name!r} manifest points at missing module "
                f"{module_file!r}"
            )
        namespace: dict = {"__name__": f"cn_archive_{self.name.replace('.', '_')}"}
        try:
            exec(compile(self.sources[module_file], module_file, "exec"), namespace)
        except Exception as exc:  # noqa: BLE001  # conclint: waive CC302 -- archive modules are arbitrary user code; converted to TaskLoadError
            raise TaskLoadError(
                f"archive {self.name!r} module {module_file!r} failed to execute: {exc}"
            ) from exc
        cls = namespace.get(attribute)
        if cls is None:
            raise TaskLoadError(
                f"archive {self.name!r} module {module_file!r} has no attribute "
                f"{attribute!r}"
            )
        if not (isinstance(cls, type) and issubclass(cls, Task)):
            raise TaskLoadError(
                f"{class_name!r} in archive {self.name!r} does not implement the "
                "Task interface"
            )
        self._class_cache[class_name] = cls
        return cls

    def to_bytes(self) -> bytes:
        """Serialize back to zip bytes (what the JobManager 'uploads')."""
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_NAME, json.dumps(self.manifest, indent=2))
            for filename, source in self.sources.items():
                zf.writestr(filename, source)
        return buf.getvalue()


def create_archive(
    name: str,
    classes: Mapping[str, str],
    sources: Mapping[str, str],
    *,
    path: Optional[Path] = None,
) -> TaskArchive:
    """Build an archive.

    *classes* maps fully-qualified class names to ``module.py:Attribute``
    locators; *sources* maps module file names to Python source text.
    When *path* is given the zip is also written to disk.
    """
    manifest: dict = {"name": name, "classes": {}}
    for class_name, locator in classes.items():
        module_file, _, attribute = locator.partition(":")
        if not module_file or not attribute:
            raise ArchiveError(
                f"bad locator {locator!r} for {class_name!r}; expected 'file.py:Attr'"
            )
        if module_file not in sources:
            raise ArchiveError(f"locator {locator!r} references missing source file")
        manifest["classes"][class_name] = {"module": module_file, "attribute": attribute}
    archive = TaskArchive(name, manifest, dict(sources))
    if path is not None:
        Path(path).write_bytes(archive.to_bytes())
    return archive


def load_archive(source: bytes | str | Path, *, name: Optional[str] = None) -> TaskArchive:
    """Open an archive from zip bytes or a file path and verify its manifest."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        data = path.read_bytes()
        default_name = path.name
    else:
        data = source
        default_name = name or "archive.jar"
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as zf:
            names = zf.namelist()
            if MANIFEST_NAME not in names:
                raise ArchiveError(f"{default_name}: no {MANIFEST_NAME} in archive")
            manifest = json.loads(zf.read(MANIFEST_NAME).decode())
            sources = {
                n: zf.read(n).decode()
                for n in names
                if n != MANIFEST_NAME and n.endswith(".py")
            }
    except zipfile.BadZipFile as exc:
        raise ArchiveError(f"{default_name}: not a zip archive: {exc}") from exc
    archive_name = name or manifest.get("name") or default_name
    for class_name, entry in manifest.get("classes", {}).items():
        if not isinstance(entry, dict) or "module" not in entry or "attribute" not in entry:
            raise ArchiveError(
                f"{archive_name}: malformed manifest entry for {class_name!r}"
            )
    return TaskArchive(archive_name, manifest, sources)
