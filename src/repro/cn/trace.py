"""Execution traces: structured views of a job's message history.

The client queue already receives every well-defined lifecycle message
(JOB_CREATED, TASK_CREATED/STARTED/COMPLETED/FAILED/RETRY/CANCELLED,
STATUS).  This module turns that stream into analysis-friendly records
and renderings:

* :func:`collect_trace` -- drain a job's client queue into
  :class:`TraceEvent` records (logical ordering by message serial),
* :class:`JobTrace` -- per-task lifecycle summaries (placement node,
  attempts, final state) plus consistency checks,
* :func:`render_timeline` -- a deterministic ASCII lifecycle table,
  the text analogue of a scheduler Gantt chart.

Everything here is read-only over the message stream; tracing never
perturbs scheduling.

The module also keeps the *undeliverable* log: lifecycle notifications
the JobManager could not deliver because the job side was already torn
down (closed client queue).  These used to be silently swallowed; now
they are recorded so tests and operators can see what was dropped.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from .api import JobHandle
from .messages import Message, MessageType

__all__ = [
    "TraceEvent",
    "TaskTrace",
    "JobTrace",
    "collect_trace",
    "render_timeline",
    "note_undeliverable",
    "undeliverable_events",
    "clear_undeliverable",
]

_LIFECYCLE = {
    MessageType.TASK_CREATED: "created",
    MessageType.TASK_STARTED: "started",
    MessageType.TASK_COMPLETED: "completed",
    MessageType.TASK_FAILED: "failed",
    MessageType.TASK_RETRY: "retry",
    MessageType.TASK_CANCELLED: "cancelled",
    MessageType.TASK_TIMEOUT: "timeout",
    MessageType.TASK_RESUMED: "resumed",
}

# -- undeliverable notifications ------------------------------------------------
_undeliverable: deque = deque(maxlen=256)
_undeliverable_lock = threading.Lock()


def note_undeliverable(job_id: str, message: Message, exc: Exception) -> None:
    """Record a lifecycle notification that could not reach its queue
    (job torn down).  Bounded; oldest entries fall off."""
    with _undeliverable_lock:
        _undeliverable.append(
            {
                "job_id": job_id,
                "type": message.type,
                "recipient": message.recipient,
                "serial": message.serial,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )


def undeliverable_events() -> list[dict]:
    with _undeliverable_lock:
        return list(_undeliverable)


def clear_undeliverable() -> None:
    with _undeliverable_lock:
        _undeliverable.clear()


@dataclass(frozen=True)
class TraceEvent:
    """One lifecycle event, ordered by the message's logical serial.

    ``ts`` carries the producing message's monotonic timestamp (0.0 for
    messages predating the timing extension); ordering must keep using
    ``serial``, the logical clock.
    """

    serial: int
    kind: str  # created | started | completed | failed | retry | cancelled | job-created | status
    task: Optional[str]
    node: Optional[str]
    detail: dict
    ts: float = 0.0


@dataclass
class TaskTrace:
    """Condensed lifecycle of one task."""

    name: str
    node: Optional[str] = None
    starts: int = 0
    retries: int = 0
    timeouts: int = 0
    #: attempts that resumed from an application checkpoint (durability)
    resumes: int = 0
    #: checkpoint tags the resumes restored from, in arrival order
    resumed_from: list = field(default_factory=list)
    final: Optional[str] = None  # completed | failed | cancelled

    @property
    def attempts(self) -> int:
        return self.starts


@dataclass
class JobTrace:
    """All events of one job plus per-task summaries."""

    job_id: str
    events: list[TraceEvent] = field(default_factory=list)
    tasks: dict[str, TaskTrace] = field(default_factory=dict)

    def task(self, name: str) -> TaskTrace:
        return self.tasks[name]

    def adoptions(self) -> list[TraceEvent]:
        """Manager-failover adoptions observed by this job's client."""
        return [e for e in self.events if e.kind == "adopted"]

    def consistency_problems(self) -> list[str]:
        """Sanity conditions every well-formed trace satisfies."""
        problems: list[str] = []
        for task in self.tasks.values():
            if task.final == "completed" and task.starts == 0:
                problems.append(f"{task.name}: completed without a start event")
            if task.retries and task.starts < task.retries + 1:
                problems.append(
                    f"{task.name}: {task.retries} retries but only "
                    f"{task.starts} starts"
                )
        serials = [e.serial for e in self.events]
        if serials != sorted(serials):
            problems.append("events out of logical order")
        return problems


def collect_trace(handle: JobHandle) -> JobTrace:
    """Drain *handle*'s client queue into a :class:`JobTrace`.

    Call after the job finishes (or at any quiescent point); messages are
    consumed from the queue, so collect once and keep the trace.
    """
    trace = JobTrace(job_id=handle.job_id)
    for message in sorted(handle.job.client_queue.drain(), key=lambda m: m.serial):
        event = _to_event(message)
        if event is None:
            continue
        trace.events.append(event)
        if event.task is None:
            continue
        task = trace.tasks.setdefault(event.task, TaskTrace(event.task))
        if event.kind == "created" and event.node:
            task.node = event.node
        elif event.kind == "started":
            task.starts += 1
            if event.node:
                task.node = event.node
        elif event.kind == "retry":
            task.retries += 1
        elif event.kind == "timeout":
            task.timeouts += 1
        elif event.kind == "resumed":
            task.resumes += 1
            task.resumed_from.append(event.detail.get("tag"))
        elif event.kind in ("completed", "failed", "cancelled"):
            task.final = event.kind
    return trace


def _to_event(message: Message) -> Optional[TraceEvent]:
    ts = getattr(message, "ts", 0.0)
    if message.type == MessageType.JOB_CREATED:
        return TraceEvent(
            message.serial, "job-created", None, None, dict(message.payload or {}), ts
        )
    if message.type == MessageType.STATUS:
        return TraceEvent(
            message.serial, "status", None, None, dict(message.payload or {}), ts
        )
    if message.type == MessageType.NODE_FAILED:
        payload = message.payload if isinstance(message.payload, dict) else {}
        return TraceEvent(
            message.serial, "node-failed", None, payload.get("node"), dict(payload), ts
        )
    if message.type == MessageType.JOB_DEGRADED:
        return TraceEvent(
            message.serial, "degraded", None, None, dict(message.payload or {}), ts
        )
    if message.type == MessageType.MANAGER_ADOPTED:
        return TraceEvent(
            message.serial, "adopted", None, None, dict(message.payload or {}), ts
        )
    kind = _LIFECYCLE.get(message.type)
    if kind is None:
        return None  # user traffic is not lifecycle
    payload = message.payload if isinstance(message.payload, dict) else {}
    return TraceEvent(
        message.serial,
        kind,
        payload.get("task"),
        payload.get("node"),
        {k: v for k, v in payload.items() if k not in ("task", "node", "result")},
        ts,
    )


def render_timeline(trace: JobTrace) -> str:
    """Deterministic ASCII lifecycle table for *trace*."""
    lines = [f"job {trace.job_id}", ""]
    header = (
        f"{'task':<16} {'node':<12} {'starts':>6} {'retries':>7} "
        f"{'timeouts':>8}  final"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(trace.tasks):
        task = trace.tasks[name]
        lines.append(
            f"{task.name:<16} {(task.node or '?'):<12} {task.starts:>6} "
            f"{task.retries:>7} {task.timeouts:>8}  {task.final or 'pending'}"
        )
    lines.append("")
    lines.append("event sequence:")
    for event in trace.events:
        subject = event.task or "-"
        lines.append(f"  #{event.serial:<6} {event.kind:<12} {subject}")
    return "\n".join(lines) + "\n"
