"""Tuple-space coordination (Linda-style).

The paper notes that "CN also supports communication via tuple spaces"
(section 3) without detailing them; we implement the classic Linda
primitives so the repository can compare message-passing and tuple-space
coordination for the same workload (an ablation DESIGN.md calls out):

* ``out(t)``    -- deposit a tuple,
* ``in_(p)``    -- blocking withdraw of a tuple matching pattern *p*,
* ``rd(p)``     -- blocking read without withdrawal,
* ``inp/rdp``   -- non-blocking variants returning ``None`` on miss.

A pattern is a tuple the same length as candidates where ``None`` is a
wildcard and any other entry must compare equal; a type object matches
any value of that type (``(k, int, None)`` styles).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..analysis.conc.annotations import guarded_by
from ..analysis.conc.runtime import make_condition, make_lock
from .errors import MessageTimeout

__all__ = ["TupleSpace", "matches"]


def matches(pattern: Sequence[Any], candidate: Sequence[Any]) -> bool:
    """Whether *candidate* matches *pattern* (length, wildcards, types)."""
    if len(pattern) != len(candidate):
        return False
    for want, have in zip(pattern, candidate):
        if want is None:
            continue
        if isinstance(want, type):
            if not isinstance(have, want):
                return False
            continue
        if want != have:
            return False
    return True


class TupleSpace:
    """A shared associative store with blocking pattern withdrawal."""

    def __init__(self) -> None:
        self._tuples: list[tuple] = []
        self._lock = make_lock("TupleSpace._lock", reentrant=False)
        self._changed = make_condition("TupleSpace._lock", self._lock)

    def out(self, t: Sequence[Any]) -> None:
        """Deposit tuple *t* (sequence is frozen to a tuple)."""
        with self._changed:
            self._tuples.append(tuple(t))
            self._changed.notify_all()

    @guarded_by("_lock")
    def _take(self, pattern: Sequence[Any], remove: bool) -> Optional[tuple]:
        for index, candidate in enumerate(self._tuples):
            if matches(pattern, candidate):
                if remove:
                    # every call site sits inside `with self._changed`, and the
                    # @guarded_by declaration above enforces it dynamically
                    # under verify_locking=True.
                    # conclint: waive CC103 -- caller must hold _lock (see above)
                    return self._tuples.pop(index)
                return candidate
        return None

    def in_(self, pattern: Sequence[Any], timeout: Optional[float] = None) -> tuple:
        """Withdraw a matching tuple, blocking until one appears."""
        with self._changed:
            result = self._take(pattern, remove=True)
            while result is None:
                if not self._changed.wait(timeout):
                    raise MessageTimeout(f"in_({pattern!r}) timed out after {timeout}s")
                result = self._take(pattern, remove=True)
            return result

    def rd(self, pattern: Sequence[Any], timeout: Optional[float] = None) -> tuple:
        """Read (copy) a matching tuple, blocking until one appears."""
        with self._changed:
            result = self._take(pattern, remove=False)
            while result is None:
                if not self._changed.wait(timeout):
                    raise MessageTimeout(f"rd({pattern!r}) timed out after {timeout}s")
                result = self._take(pattern, remove=False)
            return result

    def inp(self, pattern: Sequence[Any]) -> Optional[tuple]:
        """Non-blocking withdraw; ``None`` if nothing matches."""
        with self._changed:
            return self._take(pattern, remove=True)

    def rdp(self, pattern: Sequence[Any]) -> Optional[tuple]:
        """Non-blocking read; ``None`` if nothing matches."""
        with self._changed:
            return self._take(pattern, remove=False)

    def count(self, pattern: Optional[Sequence[Any]] = None) -> int:
        """Number of stored tuples (matching *pattern* when given)."""
        with self._lock:
            if pattern is None:
                return len(self._tuples)
            return sum(1 for t in self._tuples if matches(pattern, t))

    def snapshot(self) -> list[tuple]:
        """A copy of the current contents (for inspection/tests)."""
        with self._lock:
            return list(self._tuples)
