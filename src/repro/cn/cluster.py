"""Cluster assembly: a neighborhood of CNServers on one multicast bus.

"One could install CN servers on all the machines of a subnet and a user
could run their client programs from any machine on the subnet." (paper
section 3)

:class:`Cluster` builds N homogeneous (or caller-specified) CNServers,
wires every JobManager to every TaskManager (the subnet is flat), and
owns lifecycle.  It is intentionally cheap to construct so tests and
benchmarks can spin up clusters of various sizes.

Fault tolerance: the cluster owns the shared :class:`VirtualClock` and
drives the failure-detection loop.  Each :meth:`tick` advances virtual
time, fires any chaos-scheduled node crashes, publishes one heartbeat
per live TaskManager on the bus (every CNServer relays them into its
failure detector), runs each live JobManager's detection period, and
expires per-task deadlines.  Tests call :meth:`tick` explicitly for
determinism; :meth:`start_heartbeats` runs the same loop on a background
thread for wall-clock runs.  :meth:`kill_node` / :meth:`revive_node` /
:meth:`partition` are the operator-style fault controls.
"""

from __future__ import annotations

import os
import threading
from contextlib import AbstractContextManager
from typing import Callable, Optional, Sequence

from ..analysis.conc.runtime import (
    LockVerifier,
    install_verifier,
    make_lock,
    uninstall_verifier,
)
from .chaos import ChaosPolicy, ExponentialBackoff, VirtualClock
from .errors import ConfigError
from .transport import Transport, create_transport, transport_from_env
from .durability import (
    JobDirectory,
    MemoryJournal,
    ReplicatedJournal,
    journal_factory_for_dir,
)
from .multicast import MulticastBus
from .registry import TaskRegistry
from .server import CNServer
from .telemetry import Telemetry, sample_cluster

__all__ = ["Cluster"]

_DEFAULT = object()  # sentinel: "build a fresh enabled Telemetry hub"


class Cluster(AbstractContextManager):
    """A simulated CN deployment: bus + servers + shared task registry."""

    def __init__(
        self,
        nodes: int = 4,
        *,
        registry: Optional[TaskRegistry] = None,
        memory_per_node: int = 8000,
        slots_per_node: int = 64,
        per_hop_latency: float = 0.0,
        node_names: Optional[Sequence[str]] = None,
        chaos: Optional[ChaosPolicy] = None,
        clock: Optional[VirtualClock] = None,
        failure_k: int = 3,
        tick_period: float = 1.0,
        retry_backoff: Optional[ExponentialBackoff] = None,
        durable: bool = True,
        journal_factory: Optional[Callable[[str], MemoryJournal]] = None,
        journal_dir: Optional[str] = None,
        journal_group_commit: int = 0,
        telemetry: Optional[Telemetry] = _DEFAULT,  # type: ignore[assignment]
        verify_locking: Optional[bool] = None,
        queue_maxsize: int = 0,
        queue_policy: str = "block",
        checksums: bool = False,
        transport: "str | Transport | None" = None,
        transport_options: Optional[dict] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("a cluster needs at least one node")
        #: opt-in runtime lock-order/deadlock verifier (conclint part 2).
        #: None defers to the CN_VERIFY_LOCKING environment variable, so a
        #: whole test suite can be re-run instrumented without edits.
        #: Installed *before* any component is built: locks created deep
        #: inside Job/MessageQueue constructors come out instrumented.
        if verify_locking is None:
            verify_locking = os.environ.get("CN_VERIFY_LOCKING", "") not in ("", "0")
        #: execution backend selection (transport subsystem).  An explicit
        #: name/instance is authoritative; None defers to CN_TRANSPORT so
        #: whole suites can be re-run against the proc backend, in which
        #: case clusters using in-process-only features (chaos, a caller
        #: clock, the lock verifier) quietly keep the inproc backend
        #: instead of refusing to construct.
        env_selected = transport is None
        if transport is None:
            transport = transport_from_env()
        incompatible = []
        if chaos is not None:
            incompatible.append("chaos fault injection (ChaosPolicy)")
        if clock is not None:
            incompatible.append("a caller-driven VirtualClock")
        if verify_locking:
            incompatible.append("the runtime lock verifier (verify_locking)")
        transport_name = transport if isinstance(transport, str) else transport.name
        if transport_name != "inproc" and incompatible:
            if env_selected:
                transport = "inproc"
            else:
                raise ConfigError(
                    f"the {transport_name!r} transport executes tasks in "
                    "worker processes and cannot honor in-process-only "
                    f"features: {', '.join(incompatible)}. Use the default "
                    "inproc transport for fault injection, virtual time, "
                    "and lock verification."
                )
        #: placement protocol selection.  An explicit name is
        #: authoritative; None defers to CN_SCHEDULER so whole suites can
        #: be re-swept under the bid scheduler (the paper's solicit
        #: protocol is the degenerate 1-task rule, so both modes are
        #: compatible with every other feature).
        if scheduler is None:
            scheduler = os.environ.get("CN_SCHEDULER", "").strip() or "solicit"
        if scheduler not in ("solicit", "bid"):
            raise ConfigError(
                f"unknown scheduler {scheduler!r}; expected 'solicit' or 'bid'"
            )
        self.scheduler = scheduler
        if isinstance(transport, str):
            transport = create_transport(transport, **(transport_options or {}))
        self.transport: Transport = transport
        self.transport.bind_cluster(self)
        self.lock_verifier: Optional[LockVerifier] = (
            install_verifier() if verify_locking else None
        )
        self.registry = registry if registry is not None else TaskRegistry()
        self.chaos = chaos
        self.clock = clock if clock is not None else VirtualClock()
        self.tick_period = tick_period
        #: the cluster's observability hub: always-on by default, pass
        #: ``telemetry=None`` (or a disabled hub) to strip instrumentation
        if telemetry is _DEFAULT:
            telemetry = Telemetry()
        self.telemetry: Optional[Telemetry] = telemetry
        active = telemetry if telemetry is not None and telemetry.enabled else None
        if self.lock_verifier is not None and active is not None:
            # held-time histograms land in the shared metrics registry as
            # cn_lock_held_seconds{lock=<Class._lock>}
            self.lock_verifier.attach_metrics(active.metrics)
        self.bus = MulticastBus(per_hop_latency=per_hop_latency, chaos=chaos)
        self.bus.set_telemetry(active)
        names = list(node_names) if node_names else [f"node{i}" for i in range(nodes)]
        if len(names) != nodes:
            raise ValueError(f"{nodes} nodes but {len(names)} names")
        self.servers = [
            CNServer(
                name,
                self.bus,
                self.registry,
                memory_capacity=memory_per_node,
                slots=slots_per_node,
                chaos=chaos,
                clock=self.clock,
                failure_k=failure_k,
                retry_backoff=retry_backoff,
                queue_maxsize=queue_maxsize,
                queue_policy=queue_policy,
                checksums=checksums,
                transport=self.transport,
                scheduler=scheduler,
            )
            for name in names
        ]
        #: whether the data plane seals/verifies CRC frame digests
        self.checksums = checksums
        #: graceful-degradation knob: the admission controller lowers this
        #: below 1.0 when the cluster approaches saturation, and the client
        #: runner scales its dynamic-expansion memory budget by it so new
        #: jobs are admitted smaller instead of shed outright
        self.degrade_factor = 1.0
        self._started = False
        self._dead: set[str] = set()
        self._ticks = 0
        self._tick_lock = make_lock("Cluster._tick_lock")
        self._pumper: Optional[threading.Thread] = None
        self._pumper_stop = threading.Event()
        #: cluster-wide job_id -> (manager, Job) binding; JobHandles
        #: resolve through this so failover re-binds clients transparently
        self.directory = JobDirectory()
        if journal_dir is not None and journal_factory is None:
            journal_factory = journal_factory_for_dir(journal_dir)
        self.durable = durable or journal_factory is not None
        for server in self.servers:
            # chaos-triggered node death goes through the full kill path
            server.taskmanager.crash_hook = (
                lambda name=server.name: self.kill_node(name)
            )
            server.set_telemetry(active)
            # optional journal group-commit (delivery records buffered and
            # batched; flushed on non-delivery events + the tick barrier)
            server.jobmanager.journal_group_commit = max(0, journal_group_commit)
            if self.durable:
                backend = (
                    journal_factory(server.name)
                    if journal_factory is not None
                    else MemoryJournal()
                )
                server.attach_durability(
                    ReplicatedJournal(backend, self.bus, origin=server.name),
                    self.directory,
                )
            else:
                # directory still wired: handles resolve even non-durably
                server.jobmanager.directory = self.directory

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "Cluster":
        if self._started:
            return self
        self.transport.start()  # proc workers still fork lazily per node
        for server in self.servers:
            server.start()
        # flat subnet: every JobManager may upload to every TaskManager
        for manager in self.servers:
            for peer in self.servers:
                manager.connect_peer(peer)
        self._started = True
        return self

    def shutdown(self) -> None:
        self.stop_heartbeats()
        self.transport.stop()
        for server in self.servers:
            server.shutdown()
            journal = server.journal
            if journal is not None:
                close = getattr(journal.backend, "close", None)
                if close is not None:
                    close()  # FileJournal: flush and release the handle
        self._started = False
        verifier = self.lock_verifier
        if verifier is not None:
            self.lock_verifier = None  # idempotent across repeated shutdowns
            uninstall_verifier()
            # raises LockOrderError (with both witness stacks per edge) if
            # any interleaving of this run could deadlock
            verifier.check()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- fault controls ----------------------------------------------------------
    def kill_node(self, name: str) -> None:
        """Abrupt node death: the TaskManager crashes (dropping all its
        hosted tasks) and the server falls off the bus, so it stops
        answering solicitations and stops heartbeating.  Detection and
        recovery happen on subsequent :meth:`tick` calls."""
        server = self.server(name)
        if name in self._dead:
            return
        self._dead.add(name)
        server.taskmanager.crash()
        server.leave_subnet()

    def revive_node(self, name: str) -> None:
        """Bring a dead node back empty; its next heartbeat resurrects it
        in every failure detector and it becomes placeable again.

        Revival also re-admits the node into the default reachability
        set: if a partition was imposed while the node was dead (or it
        was killed mid-partition), stale group membership must not keep
        the rebooted machine isolated from peers outside its old group.
        """
        server = self.server(name)
        if name not in self._dead:
            return
        self._dead.discard(name)
        server.taskmanager.revive()
        server.rejoin_subnet()
        self.bus.readmit(name)
        if self.chaos is not None:
            self.chaos.note_revive(name)
        for peer in self.alive_servers():
            peer.jobmanager.register_taskmanager(server.taskmanager)
            server.jobmanager.register_taskmanager(peer.taskmanager)

    def partition(self, *groups: Sequence[str]) -> None:
        """Split the subnet into isolated groups of node names."""
        self.bus.set_partition(groups)
        if self.chaos is not None:
            # imposed topology changes belong in the structured fault log
            # too, or simulation traces cannot explain delivery gaps
            self.chaos.note_partition(groups)

    def heal_partition(self) -> None:
        self.bus.heal_partition()
        if self.chaos is not None:
            self.chaos.note_heal()

    def alive_servers(self) -> list[CNServer]:
        return [s for s in self.servers if s.name not in self._dead]

    def dead_nodes(self) -> set[str]:
        return set(self._dead)

    # -- failure-detection loop -------------------------------------------------
    def tick(self, steps: int = 1) -> None:
        """One (or more) failure-detection periods, entirely deterministic:
        advance the virtual clock, fire scheduled chaos node crashes,
        publish heartbeats, run every live JobManager's detector, expire
        task deadlines."""
        for _ in range(steps):
            with self._tick_lock:
                self._ticks += 1
                tick = self._ticks
                self.clock.advance(self.tick_period)
                now = self.clock.now()
                if self.chaos is not None and self.chaos.enabled:
                    for node in self.chaos.nodes_to_crash(tick):
                        if node in {s.name for s in self.servers}:
                            self.kill_node(node)
                beats = []
                for server in self.alive_servers():
                    beat = server.taskmanager.beat()
                    if beat is not None:
                        beats.append((server.taskmanager.name, beat))
                alive = self.alive_servers()
            # heartbeat fan-out after releasing the tick lock: publish runs
            # listener callbacks (failure detectors, journal relays) that
            # must not execute under Cluster._tick_lock (conclint CC201)
            for sender, beat in beats:
                self.bus.publish("heartbeat", beat, sender=sender)
            # detection + recovery outside the tick lock: recovery can
            # solicit the bus and start task threads
            for server in alive:
                server.jobmanager.on_tick()
            for server in alive:
                server.taskmanager.expire_deadlines(now)
            t = self.telemetry
            if t is not None and t.enabled:
                # per-node gauges (free memory/slots, hosted tasks, queue
                # backpressure, heartbeat lag) refresh once per period
                sample_cluster(t.metrics, self)
                for node, wire in self.transport.stats().items():
                    # per-node wire gauges, namespaced by node id so the
                    # proc backend's workers never collide on a series
                    scoped = t.metrics.namespaced(node)
                    scoped.gauge("cn_transport_frames_sent").set(
                        wire.get("frames_sent", 0)
                    )
                    scoped.gauge("cn_transport_frames_received").set(
                        wire.get("frames_received", 0)
                    )
                    scoped.gauge("cn_transport_bytes_sent").set(
                        wire.get("bytes_sent", 0)
                    )
                    scoped.gauge("cn_transport_bytes_received").set(
                        wire.get("bytes_received", 0)
                    )

    def start_heartbeats(self, interval: float = 0.05) -> None:
        """Run :meth:`tick` on a daemon thread every *interval* wall-clock
        seconds -- for runs that cannot call tick explicitly (the portal,
        examples).  Virtual time still advances by ``tick_period`` per
        tick, so deadlines stay in virtual seconds."""
        if self._pumper is not None and self._pumper.is_alive():
            return
        self._pumper_stop.clear()

        def pump() -> None:
            while not self._pumper_stop.wait(interval):
                self.tick()

        self._pumper = threading.Thread(
            target=pump, name="cn-heartbeat-pumper", daemon=True
        )
        self._pumper.start()

    def stop_heartbeats(self) -> None:
        self._pumper_stop.set()
        pumper = self._pumper
        if pumper is not None and pumper.is_alive():
            pumper.join(timeout=2.0)
        self._pumper = None

    # -- conveniences --------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        return [s.name for s in self.servers]

    def server(self, name: str) -> CNServer:
        for s in self.servers:
            if s.name == name:
                return s
        raise KeyError(f"no server named {name!r}")

    def total_free_memory(self) -> int:
        """Aggregate free memory across *live* nodes (a crashed node's
        capacity is not placeable and must not be advertised)."""
        return sum(s.taskmanager.free_memory for s in self.alive_servers())

    def total_memory(self) -> int:
        """Aggregate memory capacity across live nodes."""
        return sum(s.taskmanager.memory_capacity for s in self.alive_servers())

    def total_queued_messages(self) -> int:
        """Messages resident in hosted task queues across live nodes --
        the aggregate backpressure half of the saturation signal."""
        return sum(s.taskmanager.queued_messages() for s in self.alive_servers())

    def __repr__(self) -> str:
        return f"<Cluster {len(self.servers)} node(s)>"
