"""Cluster assembly: a neighborhood of CNServers on one multicast bus.

"One could install CN servers on all the machines of a subnet and a user
could run their client programs from any machine on the subnet." (paper
section 3)

:class:`Cluster` builds N homogeneous (or caller-specified) CNServers,
wires every JobManager to every TaskManager (the subnet is flat), and
owns lifecycle.  It is intentionally cheap to construct so tests and
benchmarks can spin up clusters of various sizes.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from typing import Optional, Sequence

from .multicast import MulticastBus
from .registry import TaskRegistry
from .server import CNServer

__all__ = ["Cluster"]


class Cluster(AbstractContextManager):
    """A simulated CN deployment: bus + servers + shared task registry."""

    def __init__(
        self,
        nodes: int = 4,
        *,
        registry: Optional[TaskRegistry] = None,
        memory_per_node: int = 8000,
        slots_per_node: int = 64,
        per_hop_latency: float = 0.0,
        node_names: Optional[Sequence[str]] = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.registry = registry if registry is not None else TaskRegistry()
        self.bus = MulticastBus(per_hop_latency=per_hop_latency)
        names = list(node_names) if node_names else [f"node{i}" for i in range(nodes)]
        if len(names) != nodes:
            raise ValueError(f"{nodes} nodes but {len(names)} names")
        self.servers = [
            CNServer(
                name,
                self.bus,
                self.registry,
                memory_capacity=memory_per_node,
                slots=slots_per_node,
            )
            for name in names
        ]
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "Cluster":
        if self._started:
            return self
        for server in self.servers:
            server.start()
        # flat subnet: every JobManager may upload to every TaskManager
        for manager in self.servers:
            for peer in self.servers:
                manager.connect_peer(peer)
        self._started = True
        return self

    def shutdown(self) -> None:
        for server in self.servers:
            server.shutdown()
        self._started = False

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- conveniences --------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        return [s.name for s in self.servers]

    def server(self, name: str) -> CNServer:
        for s in self.servers:
            if s.name == name:
                return s
        raise KeyError(f"no server named {name!r}")

    def total_free_memory(self) -> int:
        return sum(s.taskmanager.free_memory for s in self.servers)

    def __repr__(self) -> str:
        return f"<Cluster {len(self.servers)} node(s)>"
