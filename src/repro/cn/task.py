"""The CN Task interface and the context handed to running tasks.

"A Task is defined to be a unit of work that the user wants to perform"
(paper section 3).  User task classes subclass :class:`Task` (or simply
provide a compatible ``run``) and are packaged into archives; the
TaskManager instantiates them with their descriptor parameters and runs
``run(context)`` on a dedicated thread.

The :class:`TaskContext` exposes the CN API surface a task sees:

* its own name, its job's task roster,
* intertask messaging -- ``send``, ``broadcast``, ``recv``,
  ``recv_user`` (the CNAPI channel of section 2), and
* the job's tuple space (the alternative coordination channel section 3
  mentions).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Sequence

from .errors import UnknownTaskError
from .messages import Message, MessageType
from .queues import MessageQueue
from .tuplespace import TupleSpace

__all__ = ["Task", "TaskContext", "FunctionTask"]


class Task(abc.ABC):
    """Base class for user tasks.

    Subclasses receive their CNX ``<param>`` values as constructor
    arguments (coerced per the declared types) and implement :meth:`run`.
    The return value becomes the task's result, delivered to the client
    in the TASK_COMPLETED message and stored on the job.
    """

    #: the running attempt's context, set by the TaskManager just before
    #: ``run``; lets :meth:`checkpoint`/:meth:`restore` work without the
    #: task threading its context everywhere
    _ctx: Optional["TaskContext"] = None

    @abc.abstractmethod
    def run(self, ctx: "TaskContext") -> Any:
        """Execute the unit of work; the return value is the task result."""

    def on_cancel(self) -> None:  # pragma: no cover - cooperative hook
        """Called when the task is cancelled; override for cleanup."""

    # -- checkpoint API (durability extension) ---------------------------------
    def checkpoint(self, state: Any, tag: Any = None) -> bool:
        """Persist *state* through the job journal so a restarted attempt
        can pick up mid-algorithm.  Returns False when the cluster runs
        without durability (the call is then a no-op)."""
        return self._ctx.checkpoint(state, tag) if self._ctx is not None else False

    def restore(self) -> Any:
        """The latest checkpointed state for this task, or None.  Call at
        the top of :meth:`run`; a non-None return means this attempt is a
        recovery and should resume instead of starting from scratch."""
        return self._ctx.restore() if self._ctx is not None else None


class FunctionTask(Task):
    """Adapter turning a plain callable into a Task (handy in tests)."""

    def __init__(self, *params: Any) -> None:
        self.params = params

    fn: Optional[Callable[..., Any]] = None

    def run(self, ctx: "TaskContext") -> Any:
        if type(self).fn is None:
            raise NotImplementedError("FunctionTask subclass must set fn")
        return type(self).fn(ctx, *self.params)  # type: ignore[misc]


class TaskContext:
    """Everything a running task may touch.

    The context is created by the TaskManager; ``_route`` is the
    job-level router delivering messages to sibling tasks or the client.
    """

    def __init__(
        self,
        *,
        task_name: str,
        job_id: str,
        node_name: str,
        peers: Sequence[str],
        queue: MessageQueue,
        route: Callable[[Message], None],
        route_many: Optional[Callable[[Sequence[Message]], None]] = None,
        tuple_space: TupleSpace,
        params: Sequence[Any] = (),
        dependencies: Optional[dict[str, tuple[str, ...]]] = None,
        attempt_epoch: int = 0,
        manager_epoch: int = 1,
        checkpoint_save: Optional[Callable[[Any, Any], None]] = None,
        checkpoint_load: Optional[Callable[[], Optional[tuple[Any, Any]]]] = None,
    ) -> None:
        self.task_name = task_name
        self.job_id = job_id
        self.node_name = node_name
        self.peers = list(peers)
        self.params = list(params)
        self._queue = queue
        self._route = route
        self._route_many = route_many
        self.tuple_space = tuple_space
        self.cancelled = False
        # job-wide dependency map (task -> its depends), letting tasks
        # discover their role in the DAG without naming conventions
        self.dependencies = dict(dependencies or {})
        #: this attempt's placement epoch -- strictly increasing across
        #: re-placements (and across manager adoptions), so receivers can
        #: prefer the newest attempt's messages when replay duplicates them
        self.attempt_epoch = attempt_epoch
        #: the managing JobManager's fencing epoch (bumped on adoption)
        self.manager_epoch = manager_epoch
        self._checkpoint_save = checkpoint_save
        self._checkpoint_load = checkpoint_load
        # telemetry bindings, set by the TaskManager when the cluster has
        # an enabled Telemetry hub (None otherwise; every hook degrades
        # to a no-op so task code never tests for telemetry itself)
        self._telemetry: Optional[Any] = None
        self._span: Optional[Any] = None
        self._origin = node_name.split("/")[0]

    # -- telemetry -------------------------------------------------------------
    def bind_telemetry(self, telemetry: Any, span: Any) -> None:
        """Attach this attempt's span + the metrics registry (TaskManager
        hook; tasks use :meth:`event` / :meth:`counter`)."""
        self._telemetry = telemetry
        self._span = span

    @property
    def trace_ctx(self) -> tuple[str, str]:
        """The causal context stamped on every message this task sends."""
        if self._span is not None:
            return (self._span.trace_id, self._span.span_id)
        return (self.job_id, f"task:{self.task_name}")

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event on this attempt's span (no-op without
        telemetry) -- the in-task annotation channel for timelines."""
        if self._telemetry is not None and self._span is not None:
            self._telemetry.spans.add_event(self._span, name, **attrs)

    def counter(self, name: str, **labels: Any) -> Any:
        """A live counter from the cluster registry, or a no-op stand-in;
        bind once outside loops (``hits = ctx.counter("app_hits")``)."""
        if self._telemetry is not None:
            return self._telemetry.metrics.counter(name, **labels)
        from .telemetry.metrics import NULL_COUNTER

        return NULL_COUNTER

    # -- DAG introspection ------------------------------------------------------
    def my_dependencies(self) -> list[str]:
        """Names of the tasks this task depends on (its data sources)."""
        return list(self.dependencies.get(self.task_name, ()))

    def my_dependents(self) -> list[str]:
        """Names of the tasks that depend on this task (its consumers)."""
        return [
            name
            for name, deps in self.dependencies.items()
            if self.task_name in deps
        ]

    # -- messaging ------------------------------------------------------------
    def send(self, recipient: str, payload: Any) -> None:
        """Send a user-defined message to a sibling task or ``client``."""
        if recipient != "client" and recipient not in self.peers:
            raise UnknownTaskError(
                f"{self.task_name!r} cannot send to unknown task {recipient!r}"
            )
        self._route(
            Message.user(
                self.task_name,
                recipient,
                payload,
                origin=self._origin,
                trace_ctx=self.trace_ctx,
            )
        )

    def _fan_out(self, messages: Sequence[Message]) -> None:
        """Hand a fan-out to the job's batched router (one lock, one
        journal append, payload interning); falls back to per-message
        routing when the hosting runtime predates ``route_many``."""
        if not messages:
            return
        if self._route_many is not None:
            self._route_many(messages)
            return
        for message in messages:
            self._route(message)

    def multicast(self, recipients: Sequence[str], payload: Any) -> int:
        """Send one user-defined *payload* to each of *recipients* as a
        single data-plane fan-out: every message shares the payload
        object by reference (zero-copy -- it is sized once, journaled
        once, delivered per recipient).  Returns the number of messages
        sent.  Recipients are validated up front, so an unknown name
        fails the whole call before anything is routed."""
        trace_ctx = self.trace_ctx
        for recipient in recipients:
            if recipient != "client" and recipient not in self.peers:
                raise UnknownTaskError(
                    f"{self.task_name!r} cannot send to unknown task "
                    f"{recipient!r}"
                )
        self._fan_out(
            [
                Message.user(
                    self.task_name,
                    recipient,
                    payload,
                    origin=self._origin,
                    trace_ctx=trace_ctx,
                )
                for recipient in recipients
            ]
        )
        return len(recipients)

    def send_many(self, pairs: Sequence[tuple[str, Any]]) -> int:
        """Send ``(recipient, payload)`` pairs as one data-plane fan-out
        (the scatter counterpart of :meth:`multicast`: distinct payloads,
        one lock/journal batch).  Returns the number of messages sent."""
        trace_ctx = self.trace_ctx
        for recipient, _ in pairs:
            if recipient != "client" and recipient not in self.peers:
                raise UnknownTaskError(
                    f"{self.task_name!r} cannot send to unknown task "
                    f"{recipient!r}"
                )
        self._fan_out(
            [
                Message.user(
                    self.task_name,
                    recipient,
                    payload,
                    origin=self._origin,
                    trace_ctx=trace_ctx,
                )
                for recipient, payload in pairs
            ]
        )
        return len(pairs)

    def broadcast(self, payload: Any, *, include_self: bool = False) -> None:
        """Send a user-defined message to every task in the job (one
        batched fan-out; the payload is shared by reference)."""
        self.multicast(
            [
                peer
                for peer in self.peers
                if include_self or peer != self.task_name
            ],
            payload,
        )

    def recv(self, timeout: Optional[float] = None) -> Message:
        """Next message addressed to this task (any type)."""
        return self._queue.get(timeout)

    def recv_user(self, timeout: Optional[float] = None) -> Message:
        """Next USER message (protocol traffic is skipped, stays queued)."""
        return self._queue.get_matching(Message.is_user, timeout)

    def recv_matching(
        self, predicate: Callable[[Message], bool], timeout: Optional[float] = None
    ) -> Message:
        """Selective receive; non-matching messages remain queued."""
        return self._queue.get_matching(predicate, timeout)

    def pending(self) -> int:
        return len(self._queue)

    # -- checkpointing (durability extension) --------------------------------
    def checkpoint(self, state: Any, tag: Any = None) -> bool:
        """Persist application *state* through the job journal (replicated
        to peer managers).  Returns False -- and does nothing -- when the
        cluster runs without durability."""
        if self._checkpoint_save is None:
            return False
        self._checkpoint_save(state, tag)
        return True

    def restore(self) -> Any:
        """Load this task's latest checkpointed state, or None.

        A successful restore also routes a TASK_RESUMED notification to
        the client, so traces can verify that recovery resumed from the
        checkpoint rather than re-running from scratch."""
        if self._checkpoint_load is None:
            return None
        found = self._checkpoint_load()
        if found is None:
            return None
        tag, state = found
        self._route(
            Message(
                MessageType.TASK_RESUMED,
                sender=self.task_name,
                recipient="client",
                payload={
                    "task": self.task_name,
                    "node": self.node_name,
                    "tag": tag,
                    "attempt_epoch": self.attempt_epoch,
                },
                origin=self._origin,
                trace_ctx=self.trace_ctx,
            )
        )
        if self._span is not None:
            self.event("resumed-from-checkpoint", tag=tag)
        return state

    def __repr__(self) -> str:
        return f"<TaskContext {self.task_name!r} on {self.node_name!r}>"
