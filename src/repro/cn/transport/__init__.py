"""Pluggable execution backends for the CN runtime.

The public surface:

* :class:`Transport` / :class:`Endpoint` / :class:`WireCodec` /
  :class:`TaskExecutor` -- the backend interface (:mod:`.base`);
* :class:`InProcTransport` -- the default single-process backend,
  byte-for-byte the seed semantics (:mod:`.inproc`);
* :class:`ProcTransport` -- real multiprocessing workers over a
  length-prefixed pickle-protocol-5 frame codec (:mod:`.proc`);
* :func:`create_transport` / ``CN_TRANSPORT`` -- selection, used by
  ``Cluster(transport=...)``;
* :func:`fetch_blob` / :func:`register_blob_resolver` /
  :func:`register_fork_reset` -- the hooks application-layer modules use
  to stay worker-compatible without the transport importing them.
"""

from .base import (
    ENV_VAR,
    Endpoint,
    TaskExecutor,
    Transport,
    TRANSPORTS,
    WireCodec,
    create_transport,
    transport_from_env,
)
from .codec import (
    FrameCodec,
    LoopbackEndpoint,
    SocketEndpoint,
    loopback_pair,
    pack_frame,
    unpack_frame,
)
from .inproc import InlineExecutor, InProcTransport
from .proc import ProcExecutor, ProcTransport, register_blob_resolver
from .worker import fetch_blob, in_worker, register_fork_reset

__all__ = [
    "ENV_VAR",
    "Endpoint",
    "TaskExecutor",
    "Transport",
    "TRANSPORTS",
    "WireCodec",
    "create_transport",
    "transport_from_env",
    "FrameCodec",
    "LoopbackEndpoint",
    "SocketEndpoint",
    "loopback_pair",
    "pack_frame",
    "unpack_frame",
    "InlineExecutor",
    "InProcTransport",
    "ProcExecutor",
    "ProcTransport",
    "register_blob_resolver",
    "fetch_blob",
    "in_worker",
    "register_fork_reset",
]
