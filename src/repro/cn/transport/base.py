"""The execution-backend interface: Transport / Endpoint / WireCodec.

Until this subsystem existed the "wire" between the coordinator and a
task's execution site was an implicit Python function call: the
TaskManager instantiated the task class and ran ``run(context)`` inline
on a thread.  That is now one *backend* behind an explicit seam:

* :class:`WireCodec` -- turns arbitrary payload objects into frame
  segments and back (the proc backend's codec speaks pickle protocol 5
  with out-of-band buffers; see :mod:`.codec`);
* :class:`Endpoint` -- one bidirectional frame channel (a socket to a
  worker process, or an in-memory loopback pair);
* :class:`TaskExecutor` -- runs one task attempt to completion given its
  hosting and context, returning the result or raising exactly what the
  inline ``instance.run(context)`` would have raised -- so the
  TaskManager's retry / deadline / epoch-fence machinery upstream of the
  seam is backend-agnostic;
* :class:`Transport` -- the backend itself: owns worker lifecycle, hands
  each TaskManager its executor, reports health and wire statistics.

Selection happens at cluster construction: ``Cluster(transport="proc")``
asks :func:`create_transport`; ``transport=None`` defers to the
``CN_TRANSPORT`` environment variable (so a whole test suite can be
re-run against the proc backend without edits) and falls back to
``"inproc"``, which preserves the seed behavior byte-for-byte.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..job import Job
    from ..task import TaskContext
    from ..taskmanager import HostedTask, TaskManager

__all__ = [
    "WireCodec",
    "Endpoint",
    "TaskExecutor",
    "Transport",
    "TRANSPORTS",
    "create_transport",
    "transport_from_env",
    "ENV_VAR",
]

#: environment variable consulted when ``Cluster(transport=None)``
ENV_VAR = "CN_TRANSPORT"


class WireCodec(abc.ABC):
    """Object <-> frame-segment codec for one wire format."""

    @abc.abstractmethod
    def encode(self, obj: Any) -> tuple[bytes, list[Any]]:
        """Serialize *obj* to ``(body, out_of_band_buffers)``."""

    @abc.abstractmethod
    def decode(self, body: Any, buffers: list[Any]) -> Any:
        """Rebuild the object from its body and out-of-band buffers."""


class Endpoint(abc.ABC):
    """One bidirectional frame channel between two parties.

    ``send`` must be safe to call from multiple threads; ``recv`` has a
    single reader (the demux loop on each side).  Payloads must survive
    the codec: anything process-local (locks, open files, lambdas) is a
    bug at the call site, which the conclint CC404 pass flags statically.
    """

    @abc.abstractmethod
    def send(self, obj: Any) -> None:
        """Frame and write one object; raises TransportError when closed."""

    @abc.abstractmethod
    def recv(self) -> Optional[Any]:
        """Next decoded frame, or None on clean end-of-stream."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the channel (idempotent)."""

    def stats(self) -> dict[str, int]:
        """Cumulative ``{frames_sent, frames_received, bytes_sent,
        bytes_received}`` for telemetry; zeroes by default."""
        return {
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }


class TaskExecutor(abc.ABC):
    """Runs one task attempt for a TaskManager.

    The contract mirrors the historical inline call exactly: return the
    task's result, or raise whatever ``instance.run(context)`` raised --
    including :class:`~repro.cn.errors.ShutdownError` for a cancelled /
    timed-out attempt -- so every outcome lands in the TaskManager's
    existing retry / failure / cancellation arms.
    """

    @abc.abstractmethod
    def execute(
        self,
        manager: "TaskManager",
        hosted: "HostedTask",
        context: "TaskContext",
    ) -> Any:
        """Run the attempt to completion; returns the task result."""

    def healthy(self) -> bool:
        """Whether this node's execution substrate is still usable; a
        False return silences the node's heartbeat so the ordinary
        failure detection / recovery path takes over."""
        return True


class Transport(abc.ABC):
    """An execution backend: worker lifecycle + per-node executors."""

    #: registry key ("inproc", "proc")
    name: str = "?"

    @abc.abstractmethod
    def executor_for(self, manager: "TaskManager") -> TaskExecutor:
        """The executor this TaskManager runs attempts through."""

    def start(self) -> None:
        """Bring the backend up (workers may also start lazily)."""

    def stop(self) -> None:
        """Tear the backend down; must be idempotent."""

    def healthy(self, node: str) -> bool:
        """Whether *node*'s execution substrate is alive."""
        return True

    def stats(self) -> dict[str, Any]:
        """Wire statistics for telemetry sampling (empty when trivial)."""
        return {}

    #: hooks the proc executor uses to reach coordinator-side state;
    #: populated by the Cluster wiring (kept here so InProc need not care)
    def bind_cluster(self, cluster: Any) -> None:
        """Give the backend a back-reference to the owning cluster."""


#: name -> factory; factories take the keyword options of their backend
TRANSPORTS: dict[str, Callable[..., Transport]] = {}


def register_transport(name: str, factory: Callable[..., Transport]) -> None:
    TRANSPORTS[name] = factory


def create_transport(name: str, **options: Any) -> Transport:
    """Instantiate a registered backend by name."""
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORTS))
        raise ConfigError(
            f"unknown transport {name!r}; known backends: {known}"
        ) from None
    return factory(**options)


def transport_from_env(default: str = "inproc") -> str:
    """The backend name the environment selects (``CN_TRANSPORT``)."""
    value = os.environ.get(ENV_VAR, "").strip()
    return value if value else default
