"""ProcTransport: TaskManagers execute on real multiprocessing workers.

The paper's deployment model is one CNServer per machine; this backend
makes the node boundary a *process* boundary, so CPU-bound task code
escapes the GIL and an N-node cluster really uses N cores.  The split:

* **coordinator** (this process) -- everything the control plane owns
  today stays byte-for-byte: multicast solicitation and placement, the
  hosted queues with their shed/replay/poison policies, the delivery
  ledger and write-ahead journal, heartbeats, deadline watchdogs,
  retries, epoch fences, failover adoption;
* **workers** (one forked process per node, started lazily at the first
  attempt routed to that node) -- run the task bodies.  An ``exec``
  frame carries the attempt; a per-attempt pump thread forwards the
  coordinator-side hosted queue over the wire (so every queue policy
  and chaos-free delivery semantics are applied *before* a message
  crosses); ``route``/``rpc``/``metric`` frames come back.

A worker process dying is detected structurally: the executor turns
unhealthy, the node's heartbeat falls silent, and the ordinary failure
detector declares the node dead and re-places its work -- real process
death flows through the same recovery path as a simulated crash.

Messages that cross the wire keep their coordinator-assigned serials;
messages *produced* in a worker are re-serialized on arrival so the
process-wide total order (ledger/dedup identity) stays coordinator-owned.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import socket
import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import (
    ConfigError,
    MessageTimeout,
    ShutdownError,
    TransportError,
    WorkerLost,
    RemoteTaskError,
)
from ..messages import _next_serial
from ..runmodel import RunModel
from .base import TaskExecutor, Transport, register_transport
from .codec import FrameCodec, SocketEndpoint
from .inproc import InlineExecutor
from .worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import TaskContext
    from ..taskmanager import HostedTask, TaskManager

__all__ = ["ProcTransport", "ProcExecutor", "register_blob_resolver"]

#: namespace -> resolver for the generic worker blob-fetch RPC; modules
#: owning coordinator-side state register here at import (e.g. the
#: matrix store), keeping the transport free of app-layer imports
_BLOB_RESOLVERS: dict[str, Callable[[str], Any]] = {}


def register_blob_resolver(namespace: str, fn: Callable[[str], Any]) -> None:
    _BLOB_RESOLVERS[namespace] = fn


_exec_seq = itertools.count(1)


class _ExecState:
    """Coordinator-side bookkeeping for one remote attempt."""

    def __init__(
        self, exec_id: str, job: Any, task: str, context: "TaskContext", queue: Any
    ) -> None:
        self.exec_id = exec_id
        self.job = job
        self.task = task
        self.context = context
        self.queue = queue
        self.done = threading.Event()
        self.ok = False
        self.result: Any = None
        self.error: Optional[tuple[str, str, str]] = None  # kind, text, tb


class WorkerHandle:
    """One node's worker process: socket, demux loop, in-flight attempts."""

    def __init__(self, transport: "ProcTransport", node: str) -> None:
        self.transport = transport
        self.node = node
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.endpoint: Optional[SocketEndpoint] = None
        self._demux: Optional[threading.Thread] = None
        self._execs: dict[str, _ExecState] = {}
        self._lock = threading.Lock()
        self._failed = False
        self._stopped = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        parent_sock, child_sock = socket.socketpair()
        ctx = multiprocessing.get_context(self.transport.start_method)
        self.process = ctx.Process(
            target=worker_main,
            args=(child_sock, self.node, self.transport.shm_threshold),
            name=f"cn-worker-{self.node}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self.endpoint = SocketEndpoint(
            parent_sock,
            codec=FrameCodec(),
            shm_threshold=self.transport.shm_threshold,
        )
        self._demux = threading.Thread(
            target=self._demux_loop, name=f"cn-demux-{self.node}", daemon=True
        )
        self._demux.start()

    def alive(self) -> bool:
        with self._lock:
            if self._failed or self._stopped:
                return False
        process = self.process
        return process is not None and process.is_alive()

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        endpoint, process = self.endpoint, self.process
        if endpoint is not None:
            try:
                endpoint.send(("stop", {}))
            except TransportError:
                pass  # conclint: waive CC303 -- worker already gone; stopping anyway
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        if endpoint is not None:
            endpoint.close()
        self._fail_outstanding("worker stopped")

    # -- submission -------------------------------------------------------------
    def execute(
        self,
        manager: "TaskManager",
        hosted: "HostedTask",
        context: "TaskContext",
        cls_blob: bytes,
    ) -> Any:
        job, runtime = hosted.job, hosted.runtime
        exec_id = f"{job.job_id}/{runtime.name}#{hosted.epoch}:{next(_exec_seq)}"
        state = _ExecState(exec_id, job, runtime.name, context, runtime.queue)
        with self._lock:
            if self._failed or self._stopped:
                raise WorkerLost(f"worker for node {self.node!r} is gone")
            self._execs[exec_id] = state
        try:
            self._send(
                "exec",
                {
                    "exec_id": exec_id,
                    "job_id": job.job_id,
                    "task": runtime.name,
                    "cls_blob": cls_blob,
                    "params": list(runtime.spec.params),
                    "peers": job.task_names(),
                    "dependencies": context.dependencies,
                    "node_name": manager.name,
                    "attempt_epoch": hosted.epoch,
                    "manager_epoch": job.manager_epoch,
                },
            )
        except TransportError as exc:
            with self._lock:
                self._execs.pop(exec_id, None)
            raise WorkerLost(f"worker for node {self.node!r}: {exc}") from exc
        pump = threading.Thread(
            target=self._pump, args=(state,), name=f"cn-pump-{exec_id}", daemon=True
        )
        pump.start()
        return self._wait(state)

    def _wait(self, state: _ExecState) -> Any:
        while not state.done.wait(timeout=0.2):
            if not self.alive():
                # demux normally fails outstanding execs on EOF; this is
                # the belt-and-braces path for an abrupt worker death
                self._fail_outstanding("worker process died")
        if state.ok:
            return state.result
        kind, text, tb = state.error  # type: ignore[misc]
        if kind == "ShutdownError":
            raise ShutdownError(text)
        if kind == "WorkerLost":
            raise WorkerLost(text)
        raise RemoteTaskError(state.task, kind, tb)

    def _pump(self, state: _ExecState) -> None:
        """Forward the coordinator-side hosted queue to the worker.

        Every delivery semantic (bounded-queue policies, shed/replay,
        digest quarantine) already ran when the message entered the
        hosted queue; the pump only moves accepted messages across."""
        queue = state.queue
        while not state.done.is_set():
            try:
                message = queue.get(timeout=0.05)
            except MessageTimeout:
                continue
            except ShutdownError:
                self._send_quiet("queue-closed", {"exec_id": state.exec_id})
                return
            try:
                self._send("msg", {"exec_id": state.exec_id, "message": message})
            except TransportError:
                return  # worker gone; _wait surfaces WorkerLost

    # -- demux ------------------------------------------------------------------
    def _demux_loop(self) -> None:
        endpoint = self.endpoint
        assert endpoint is not None
        while True:
            try:
                frame = endpoint.recv()
            except TransportError:
                break
            if frame is None:
                break
            op, data = frame
            if op == "outcome":
                self._on_outcome(data)
            elif op == "route":
                self._on_route(data)
            elif op == "rpc":
                threading.Thread(
                    target=self._on_rpc, args=(data,), daemon=True
                ).start()
            elif op == "metric":
                self._on_metric(data)
            elif op == "event":
                self._on_event(data)
            elif op == "batch":
                self._on_batch(data)
        self._fail_outstanding("worker connection closed")

    def _on_outcome(self, data: dict) -> None:
        with self._lock:
            state = self._execs.pop(data["exec_id"], None)
        if state is None:
            return
        if data["ok"]:
            state.ok = True
            state.result = data["result"]
        else:
            state.error = (data["kind"], data["text"], data["tb"])
        state.done.set()

    def _on_route(self, data: dict) -> None:
        with self._lock:
            state = self._execs.get(data["exec_id"])
        if state is None:
            return  # attempt finished/fenced; its late sends are zombies
        # worker-built messages get coordinator serials: the process-wide
        # total order (ledger and dedup identity) has a single owner
        messages = [replace(m, serial=_next_serial()) for m in data["messages"]]
        try:
            if len(messages) == 1:
                state.job.route(messages[0])
            else:
                state.job.route_many(messages)
        except ShutdownError:
            # a destination queue is closed (job tearing down): tell the
            # worker so the attempt unblocks exactly as it would inline
            self._send_quiet("queue-closed", {"exec_id": state.exec_id})

    def _on_rpc(self, data: dict) -> None:
        with self._lock:
            state = self._execs.get(data["exec_id"]) if data["exec_id"] else None
        reply: dict[str, Any] = {"rpc_id": data["rpc_id"]}
        try:
            value = self._dispatch_rpc(state, data["op"], list(data["args"]))
        except Exception as exc:  # noqa: BLE001  # conclint: waive CC302 -- the RPC boundary must return every error to the worker by name
            reply.update(ok=False, kind=type(exc).__name__, text=str(exc))
        else:
            reply.update(ok=True, value=value)
        self._send_quiet("rpc-reply", reply)

    def _dispatch_rpc(
        self, state: Optional[_ExecState], op: str, args: list
    ) -> Any:
        if op == "blob":
            namespace, key = args
            try:
                resolver = _BLOB_RESOLVERS[namespace]
            except KeyError:
                raise KeyError(f"{namespace}:{key}") from None
            return resolver(key)
        if state is None:
            raise ShutdownError("rpc for an attempt that is no longer running")
        space = state.job.tuple_space
        if op == "tuple_out":
            return space.out(args[0])
        if op == "tuple_in":
            return space.in_(args[0], args[1])
        if op == "tuple_rd":
            return space.rd(args[0], args[1])
        if op == "tuple_inp":
            return space.inp(args[0])
        if op == "tuple_rdp":
            return space.rdp(args[0])
        if op == "tuple_count":
            return space.count(args[0])
        if op == "tuple_snapshot":
            return space.snapshot()
        if op == "checkpoint_save":
            return state.job.save_checkpoint(state.task, args[0], args[1])
        if op == "checkpoint_load":
            return state.job.load_checkpoint(state.task)
        raise ConfigError(f"unknown worker rpc {op!r}")

    def _on_metric(self, data: dict) -> None:
        telemetry = self.transport.telemetry()
        if telemetry is None:
            return
        scoped = telemetry.metrics.namespaced(self.node)
        scoped.counter(data["name"], **data["labels"]).inc(data["amount"])

    def _on_event(self, data: dict) -> None:
        with self._lock:
            state = self._execs.get(data["exec_id"])
        if state is None:
            return
        state.context.event(data["name"], **data["attrs"])

    def _on_batch(self, data: dict) -> None:
        """A coalesced telemetry batch: N metric/event frames that
        crossed the wire as one (worker-side buffering)."""
        frames = data["frames"]
        for op, frame in frames:
            if op == "metric":
                self._on_metric(frame)
            elif op == "event":
                self._on_event(frame)
        if len(frames) > 1:
            telemetry = self.transport.telemetry()
            if telemetry is not None:
                telemetry.metrics.namespaced(self.node).counter(
                    "cn_transport_frames_coalesced_total"
                ).inc(len(frames) - 1)

    # -- plumbing ---------------------------------------------------------------
    def _send(self, op: str, data: dict) -> None:
        endpoint = self.endpoint
        if endpoint is None:
            raise TransportError(f"worker for {self.node!r} never started")
        endpoint.send((op, data))

    def _send_quiet(self, op: str, data: dict) -> None:
        try:
            self._send(op, data)
        except TransportError:
            pass  # conclint: waive CC303 -- peer already gone; nothing to unblock

    def _fail_outstanding(self, reason: str) -> None:
        with self._lock:
            self._failed = True
            victims = list(self._execs.values())
            self._execs.clear()
        for state in victims:
            state.error = ("WorkerLost", f"{reason} ({self.node})", reason)
            state.done.set()


class ProcExecutor(TaskExecutor):
    """Per-node executor shipping attempts to the node's worker."""

    def __init__(self, transport: "ProcTransport", node: str) -> None:
        self.transport = transport
        self.node = node
        self._inline = InlineExecutor()

    def execute(
        self,
        manager: "TaskManager",
        hosted: "HostedTask",
        context: "TaskContext",
    ) -> Any:
        spec = hosted.runtime.spec
        if spec.runmodel is RunModel.RUN_IN_JOBMANAGER:
            # manager-site tasks are control-plane work; they stay inline
            return self._inline.execute(manager, hosted, context)
        try:
            cls_blob = pickle.dumps(hosted.task_class, protocol=5)
        except (pickle.PicklingError, AttributeError, TypeError):
            # a class pickle cannot reference (defined inside a function,
            # say) cannot cross the process boundary; run it inline and
            # count the downgrade so the gap is visible
            self.transport.note_inline_fallback()
            return self._inline.execute(manager, hosted, context)
        handle = self.transport.ensure_worker(self.node)
        return handle.execute(manager, hosted, context, cls_blob)

    def healthy(self) -> bool:
        return self.transport.node_healthy(self.node)


class ProcTransport(Transport):
    """The multi-process execution backend (one forked worker per node).

    Workers fork lazily on the first attempt shipped to their node, so
    the fork snapshot includes everything the application registered or
    staged before running the job (task classes, matrices, ...).
    """

    name = "proc"

    def __init__(
        self,
        *,
        start_method: str = "fork",
        shm_threshold: Optional[int] = 256 * 1024,
    ) -> None:
        if start_method != "fork":
            raise ConfigError(
                "the proc transport requires the fork start method (workers "
                "inherit the task registry and staged application state); "
                f"got {start_method!r}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "this platform has no fork start method; the proc transport "
                "is unavailable"
            )
        self.start_method = start_method
        #: codec buffers at/above this ride SharedMemory segments instead
        #: of the socket stream (None disables the spill path)
        self.shm_threshold = shm_threshold
        self._cluster: Any = None
        self._handles: dict[str, WorkerHandle] = {}
        self._lock = threading.Lock()
        self._stopped = False
        #: attempts executed inline because their class cannot cross the
        #: process boundary (read by tests and the telemetry sampler)
        self.inline_fallbacks = 0

    # -- cluster wiring ---------------------------------------------------------
    def bind_cluster(self, cluster: Any) -> None:
        self._cluster = cluster

    def telemetry(self) -> Optional[Any]:
        cluster = self._cluster
        telemetry = getattr(cluster, "telemetry", None)
        if telemetry is not None and getattr(telemetry, "enabled", False):
            return telemetry
        return None

    def executor_for(self, manager: "TaskManager") -> TaskExecutor:
        node = manager.name.split("/")[0]
        return ProcExecutor(self, node)

    def note_inline_fallback(self) -> None:
        with self._lock:
            self.inline_fallbacks += 1

    # -- workers ----------------------------------------------------------------
    def ensure_worker(self, node: str) -> WorkerHandle:
        with self._lock:
            if self._stopped:
                raise ShutdownError("proc transport is stopped")
            handle = self._handles.get(node)
            if handle is None:
                handle = WorkerHandle(self, node)
                handle.start()
                self._handles[node] = handle
        return handle

    def node_healthy(self, node: str) -> bool:
        with self._lock:
            handle = self._handles.get(node)
        # a node whose worker has not started yet is healthy (it will
        # fork on first use); one whose worker died is not
        return handle is None or handle.alive()

    def healthy(self, node: str) -> bool:
        return self.node_healthy(node)

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.stop()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            handles = dict(self._handles)
        out: dict[str, Any] = {}
        for node, handle in handles.items():
            endpoint = handle.endpoint
            if endpoint is not None:
                out[node] = endpoint.stats()
        return out

    def worker_pids(self) -> dict[str, int]:
        """node -> OS pid of its forked worker (only nodes that forked).

        The structural proof the tests and PERF15 lean on: distinct pids
        distinct from the coordinator mean execution really left the
        process."""
        with self._lock:
            handles = dict(self._handles)
        return {
            node: handle.process.pid
            for node, handle in handles.items()
            if handle.process is not None and handle.process.pid is not None
        }


register_transport("proc", ProcTransport)
