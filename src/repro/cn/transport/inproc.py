"""InProcTransport: the historical single-process backend, made explicit.

This backend preserves the seed semantics byte-for-byte: a task attempt
is instantiated and run inline on the TaskManager's task thread, in the
same interpreter, sharing payload objects by reference.  It stays the
default, and it remains the substrate the deterministic simulation and
chaos harnesses run on -- fault injection, the virtual clock, and the
runtime lock verifier all assume one process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .base import TaskExecutor, Transport, register_transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..task import TaskContext
    from ..taskmanager import HostedTask, TaskManager

__all__ = ["InProcTransport", "InlineExecutor"]


class InlineExecutor(TaskExecutor):
    """Run the attempt inline: exactly the historical TaskManager body."""

    def execute(
        self,
        manager: "TaskManager",
        hosted: "HostedTask",
        context: "TaskContext",
    ) -> Any:
        instance = manager._instantiate(hosted.task_class, hosted.runtime)  # conclint: waive CC402 -- executor is the manager's own run stage, node-local by definition
        instance._ctx = context  # enables Task.checkpoint/restore  # conclint: waive CC402 -- historical inline wiring; instance and context share this node
        return instance.run(context)


class InProcTransport(Transport):
    """All execution stays in the coordinator process (the default)."""

    name = "inproc"

    def __init__(self) -> None:
        self._executor = InlineExecutor()

    def executor_for(self, manager: "TaskManager") -> TaskExecutor:
        return self._executor

    def bind_cluster(self, cluster: Any) -> None:  # nothing to wire
        pass


register_transport("inproc", InProcTransport)
