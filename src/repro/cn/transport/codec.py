"""Length-prefixed frame codec: pickle protocol 5 + CRC32 + SharedMemory.

Wire format of one frame::

    MAGIC "CNF1" | u32 nsegs
    nsegs x descriptor: u8 kind | u64 length | u32 crc32
    nsegs x stream payload (in descriptor order)

Segment 0 is the pickle *body*; segments 1.. are the out-of-band
``PickleBuffer`` segments protocol 5 peeled off large contiguous blobs
(numpy arrays land here without ever being copied into the pickle
stream).  Each segment's CRC32 is the same integrity primitive the data
plane uses for ``Message.seal()`` -- a frame corrupted in flight fails
its checksum at decode and is rejected (:class:`FrameCorrupt`) instead
of poisoning a worker.

Two segment kinds:

* ``inline`` (0) -- ``length`` raw bytes follow in the stream.  On
  decode they are read into fresh buffers and handed to
  ``pickle.loads(buffers=...)``, so numpy arrays alias the received
  buffers directly: zero-copy on the receive side.
* ``shm`` (1) -- the stream carries only a SharedMemory segment *name*;
  ``length``/``crc`` describe the bytes parked in the segment.  Buffers
  at or above ``shm_threshold`` ride this path so multi-megabyte blocks
  skip the socket's small transfer window.  The receiver copies out,
  verifies, and unlinks; the sender sweeps any segment the receiver
  never consumed (worker death) at close.

Sizing reuses :func:`repro.cn.job.payload_nbytes` (the data-plane
accounting helper): payloads it sizes below ``oob_threshold`` are
pickled without the buffer-callback machinery, keeping tiny control
frames single-segment.
"""

from __future__ import annotations

import io
import pickle
import secrets
import struct
import threading
import zlib
from typing import Any, Optional

from ..errors import FrameCorrupt, FrameTruncated, TransportError
from ..job import payload_nbytes
from .base import Endpoint, WireCodec

__all__ = [
    "FrameCodec",
    "SocketEndpoint",
    "LoopbackEndpoint",
    "loopback_pair",
    "pack_frame",
    "unpack_frame",
]

MAGIC = b"CNF1"
_HEADER = struct.Struct("!4sI")  # magic, segment count
_SEGMENT = struct.Struct("!BQI")  # kind, length, crc32
_KIND_INLINE = 0
_KIND_SHM = 1

#: refuse absurd frames instead of attempting a huge allocation on a
#: corrupted length field (1 GiB per segment is far beyond any workload)
MAX_SEGMENT = 1 << 30
MAX_SEGMENTS = 1 << 16


class FrameCodec(WireCodec):
    """Pickle-protocol-5 codec with out-of-band buffer extraction."""

    def __init__(self, *, oob_threshold: int = 2048) -> None:
        #: payloads the data-plane sizer can prove smaller than this are
        #: pickled in-band (single segment, no buffer bookkeeping)
        self.oob_threshold = oob_threshold

    def encode(self, obj: Any) -> tuple[bytes, list[Any]]:
        sized = payload_nbytes(obj)
        if sized is not None and sized < self.oob_threshold:
            return pickle.dumps(obj, protocol=5), []
        buffers: list[pickle.PickleBuffer] = []
        body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        return body, [b.raw() for b in buffers]

    def decode(self, body: Any, buffers: list[Any]) -> Any:
        return pickle.loads(body, buffers=buffers)


def _segments_for(
    obj: Any, codec: FrameCodec, shm_threshold: Optional[int]
) -> tuple[list[tuple[int, bytes, int, int]], list[str]]:
    """Frame *obj* into ``(kind, stream_payload, length, crc)`` segments.

    Returns the segments plus the names of any SharedMemory segments
    created (so the sender can sweep unconsumed ones at close).
    """
    body, raw_buffers = codec.encode(obj)
    segments: list[tuple[int, bytes, int, int]] = [
        (_KIND_INLINE, body, len(body), zlib.crc32(body))
    ]
    shm_names: list[str] = []
    for raw in raw_buffers:
        view = memoryview(raw).cast("B")
        length = view.nbytes
        crc = zlib.crc32(view)
        if shm_threshold is not None and length >= shm_threshold:
            name = _spill_to_shm(view)
            shm_names.append(name)
            segments.append((_KIND_SHM, name.encode("ascii"), length, crc))
        else:
            segments.append((_KIND_INLINE, view, length, crc))
    return segments, shm_names


def _spill_to_shm(view: memoryview) -> str:
    from multiprocessing import shared_memory

    name = f"cnf_{secrets.token_hex(8)}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=view.nbytes)
    try:
        seg.buf[: view.nbytes] = view
    finally:
        seg.close()
    # Ownership transfers to the receiver (it unlinks after copying out),
    # so withdraw the segment from this side's resource tracker -- the
    # tracker is shared with forked workers and would warn about the
    # receiver's unlink at exit.  The endpoint's close-time sweep covers
    # segments a dead receiver never consumed.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")  # conclint: waive CC402 -- stdlib tracker key is the private posix name; no public accessor exists
    except Exception:  # noqa: BLE001  # conclint: waive CC302 -- tracker bookkeeping is best-effort; a failed unregister only risks a spurious warning
        pass
    return name


def _consume_shm(name: str, length: int, crc: int) -> bytearray:
    """Copy a spilled segment out of shared memory, verify, unlink."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise FrameTruncated(f"shared-memory segment {name!r} vanished") from None
    try:
        data = bytearray(seg.buf[:length])
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # another reader raced the unlink
            pass
    if zlib.crc32(data) != crc:
        raise FrameCorrupt(f"shared-memory segment {name!r} failed its CRC32")
    return data


def _sweep_shm(names: set[str]) -> None:
    """Best-effort unlink of segments the receiver never consumed."""
    from multiprocessing import shared_memory

    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue  # consumed normally
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


def pack_frame(
    obj: Any, codec: Optional[FrameCodec] = None, *, shm_threshold: Optional[int] = None
) -> bytes:
    """One full frame as bytes (test/loopback convenience)."""
    codec = codec if codec is not None else FrameCodec()
    segments, _ = _segments_for(obj, codec, shm_threshold)
    out = io.BytesIO()
    out.write(_HEADER.pack(MAGIC, len(segments)))
    for kind, payload, length, crc in segments:
        out.write(_SEGMENT.pack(kind, length, crc))
    for kind, payload, _length, _crc in segments:
        out.write(payload)
    return out.getvalue()


def unpack_frame(
    data: Any, codec: Optional[FrameCodec] = None
) -> tuple[Any, int]:
    """Decode one frame from a bytes-like; returns ``(obj, consumed)``.

    Inline segments are *views* into *data* handed straight to
    ``pickle.loads(buffers=...)`` -- the zero-copy receive path.
    Truncation raises :class:`FrameTruncated`; a CRC32 or magic mismatch
    raises :class:`FrameCorrupt`.
    """
    codec = codec if codec is not None else FrameCodec()
    view = memoryview(data).cast("B")
    if view.nbytes < _HEADER.size:
        raise FrameTruncated("frame shorter than its fixed header")
    magic, nsegs = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise FrameCorrupt(f"bad frame magic {bytes(magic)!r}")
    if nsegs < 1 or nsegs > MAX_SEGMENTS:
        raise FrameCorrupt(f"implausible segment count {nsegs}")
    offset = _HEADER.size
    descriptors = []
    for _ in range(nsegs):
        if view.nbytes < offset + _SEGMENT.size:
            raise FrameTruncated("frame ended inside a segment descriptor")
        kind, length, crc = _SEGMENT.unpack_from(view, offset)
        offset += _SEGMENT.size
        if kind not in (_KIND_INLINE, _KIND_SHM):
            raise FrameCorrupt(f"unknown segment kind {kind}")
        if length > MAX_SEGMENT:
            raise FrameCorrupt(f"implausible segment length {length}")
        descriptors.append((kind, length, crc))
    buffers: list[Any] = []
    for kind, length, crc in descriptors:
        if kind == _KIND_INLINE:
            if view.nbytes < offset + length:
                raise FrameTruncated("frame ended inside a segment payload")
            segment = view[offset : offset + length]
            offset += length
        else:
            # shm descriptor: the stream payload is the fixed-format ascii
            # segment name ("cnf_" + 16 hex); length/crc describe the
            # bytes parked inside the segment itself
            if view.nbytes < offset + _SHM_NAME_LEN:
                raise FrameTruncated("frame ended inside a shm segment name")
            name = bytes(view[offset : offset + _SHM_NAME_LEN]).decode("ascii")
            offset += _SHM_NAME_LEN
            segment = memoryview(_consume_shm(name, length, crc))
        if kind == _KIND_INLINE and zlib.crc32(segment) != crc:
            raise FrameCorrupt("segment failed its CRC32 integrity check")
        buffers.append(segment)
    body, oob = buffers[0], buffers[1:]
    return codec.decode(body, oob), offset


_SHM_NAME_LEN = len("cnf_") + 16  # "cnf_" + token_hex(8)


def _read_exact(sock: Any, n: int) -> Optional[bytearray]:
    """Read exactly *n* bytes; None on EOF at offset 0, raises
    :class:`FrameTruncated` on EOF mid-read."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            chunk = sock.recv_into(view[got:], n - got)
        except (OSError, ValueError) as exc:
            if got == 0:
                return None  # peer closed between frames
            raise FrameTruncated(f"stream error mid-frame: {exc}") from exc
        if chunk == 0:
            if got == 0:
                return None
            raise FrameTruncated(f"stream ended mid-frame ({got}/{n} bytes)")
        got += chunk
    return buf


class SocketEndpoint(Endpoint):
    """Frame channel over a stream socket (the proc backend's wire).

    ``send`` is thread-safe (task pumps, RPC replies, and control frames
    interleave); ``recv`` is called only by the side's demux loop.
    """

    def __init__(
        self,
        sock: Any,
        *,
        codec: Optional[FrameCodec] = None,
        shm_threshold: Optional[int] = None,
    ) -> None:
        self._sock = sock
        self._codec = codec if codec is not None else FrameCodec()
        self._shm_threshold = shm_threshold
        self._send_lock = threading.Lock()
        self._closed = False
        #: shm segments shipped but possibly never consumed by the peer
        self._outstanding_shm: set[str] = set()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, obj: Any) -> None:
        segments, shm_names = _segments_for(obj, self._codec, self._shm_threshold)
        header = io.BytesIO()
        header.write(_HEADER.pack(MAGIC, len(segments)))
        for kind, _payload, length, crc in segments:
            header.write(_SEGMENT.pack(kind, length, crc))
        with self._send_lock:
            if self._closed:
                _sweep_shm(set(shm_names))
                raise TransportError("endpoint is closed")
            self._outstanding_shm.update(shm_names)
            try:
                self._sock.sendall(header.getvalue())
                sent = header.tell()
                for kind, payload, length, _crc in segments:
                    self._sock.sendall(payload)
                    sent += len(payload) if kind == _KIND_SHM else length
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from exc
            self.frames_sent += 1
            self.bytes_sent += sent

    def recv(self) -> Optional[Any]:
        head = _read_exact(self._sock, _HEADER.size)
        if head is None:
            return None
        magic, nsegs = _HEADER.unpack(bytes(head))
        if magic != MAGIC:
            raise FrameCorrupt(f"bad frame magic {bytes(magic)!r}")
        if nsegs < 1 or nsegs > MAX_SEGMENTS:
            raise FrameCorrupt(f"implausible segment count {nsegs}")
        raw = _read_exact(self._sock, nsegs * _SEGMENT.size)
        if raw is None:
            raise FrameTruncated("stream ended before segment descriptors")
        descriptors = [
            _SEGMENT.unpack_from(raw, i * _SEGMENT.size) for i in range(nsegs)
        ]
        received = _HEADER.size + len(raw)
        buffers: list[Any] = []
        for kind, length, crc in descriptors:
            if kind == _KIND_INLINE:
                if length > MAX_SEGMENT:
                    raise FrameCorrupt(f"implausible segment length {length}")
                segment = _read_exact(self._sock, length)
                if segment is None:
                    raise FrameTruncated("stream ended before a segment payload")
                if zlib.crc32(segment) != crc:
                    raise FrameCorrupt("segment failed its CRC32 integrity check")
                received += length
                buffers.append(memoryview(segment))
            elif kind == _KIND_SHM:
                namebuf = _read_exact(self._sock, _SHM_NAME_LEN)
                if namebuf is None:
                    raise FrameTruncated("stream ended before a shm segment name")
                name = bytes(namebuf).decode("ascii")
                buffers.append(memoryview(_consume_shm(name, length, crc)))
                received += _SHM_NAME_LEN
            else:
                raise FrameCorrupt(f"unknown segment kind {kind}")
        self.frames_received += 1
        self.bytes_received += received
        body, oob = buffers[0], buffers[1:]
        return self._codec.decode(body, oob)

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
            sweep = set(self._outstanding_shm)
            self._outstanding_shm.clear()
        _sweep_shm(sweep)
        try:
            self._sock.close()
        except OSError:
            pass

    def stats(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class LoopbackEndpoint(Endpoint):
    """In-memory endpoint pair running frames through the full codec.

    Every frame is packed to bytes and unpacked on the other side, so a
    loopback exercises exactly the serialization constraints of the real
    wire -- which makes it the codec's test harness and a second,
    independent implementation of the :class:`Endpoint` interface.
    """

    def __init__(self, *, codec: Optional[FrameCodec] = None) -> None:
        import collections

        self._codec = codec if codec is not None else FrameCodec()
        self._inbox: "collections.deque[bytes]" = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self.peer: Optional["LoopbackEndpoint"] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, obj: Any) -> None:
        peer = self.peer
        if peer is None:
            raise TransportError("loopback endpoint is not paired")
        frame = pack_frame(obj, self._codec)
        with peer._cond:  # conclint: waive CC402 -- peer is the same class; a loopback pair is one object in two halves
            if self._closed or peer._closed:  # conclint: waive CC402 -- same-class pair state
                raise TransportError("endpoint is closed")
            peer._inbox.append(frame)  # conclint: waive CC402 -- same-class pair state
            peer._cond.notify()  # conclint: waive CC402 -- same-class pair state
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def recv(self) -> Optional[Any]:
        with self._cond:
            while not self._inbox:
                if self._closed:
                    return None
                self._cond.wait()
            frame = self._inbox.popleft()
        obj, consumed = unpack_frame(frame, self._codec)
        self.frames_received += 1
        self.bytes_received += consumed
        return obj

    def close(self) -> None:
        for side in (self, self.peer):
            if side is None:
                continue
            with side._cond:  # conclint: waive CC402 -- closing both halves of the same-class pair
                side._closed = True  # conclint: waive CC402 -- same-class pair state
                side._cond.notify_all()  # conclint: waive CC402 -- same-class pair state

    def stats(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


def loopback_pair(
    codec: Optional[FrameCodec] = None,
) -> tuple[LoopbackEndpoint, LoopbackEndpoint]:
    """A connected pair of in-memory endpoints."""
    a = LoopbackEndpoint(codec=codec)
    b = LoopbackEndpoint(codec=codec)
    a.peer, b.peer = b, a
    return a, b
