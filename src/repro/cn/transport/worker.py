"""The proc backend's worker process: task execution outside the GIL.

One worker process runs per cluster node.  The coordinator keeps the
whole control plane -- placement, retries, deadlines, the delivery
ledger, the journal -- and ships only the *execution* of task attempts
here, over a socket speaking the frame codec.  The worker:

* receives ``exec`` frames, unpickles the task class, and runs the
  attempt on a local thread with a :class:`RemoteTaskContext` whose
  messaging/tuple-space/checkpoint surface proxies back over the wire;
* receives ``msg`` frames (the coordinator pumps the attempt's hosted
  queue over) into a local :class:`~repro.cn.queues.MessageQueue`, so
  ``recv_matching`` and friends behave exactly as in-process;
* answers cancellation (``queue-closed``) by closing the local queue,
  which unblocks the task with the same ``ShutdownError`` it would see
  in-process;
* reports the attempt's outcome -- result or exception (class name +
  remote traceback) -- in a single ``outcome`` frame.

Workers are forked, so they inherit the coordinator's loaded modules,
task registry, and staged application state.  Locks captured mid-flight
by the fork are re-armed at startup (:func:`register_fork_reset`), and
anything the fork snapshot is missing can be pulled lazily through the
generic blob RPC (:func:`fetch_blob`).
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Optional

from ..errors import ShutdownError, TaskLoadError, TransportError
from ..queues import MessageQueue
from ..task import TaskContext
from .base import Endpoint
from .codec import FrameCodec, SocketEndpoint

__all__ = [
    "worker_main",
    "WorkerRuntime",
    "RemoteTaskContext",
    "register_fork_reset",
    "fetch_blob",
    "in_worker",
]

#: callables run at worker startup to re-arm state a fork may have
#: captured in an unusable condition (e.g. a lock held by another
#: coordinator thread at fork time); modules owning such state register
#: a reset at import
_FORK_RESETS: list[Callable[[], None]] = []

#: the running worker's runtime; None in the coordinator process
_ACTIVE: Optional["WorkerRuntime"] = None


def register_fork_reset(fn: Callable[[], None]) -> None:
    """Register *fn* to run when a forked worker process starts."""
    _FORK_RESETS.append(fn)


def in_worker() -> bool:
    """Whether this process is a proc-backend worker."""
    return _ACTIVE is not None


def fetch_blob(namespace: str, key: str) -> Any:
    """Pull a named blob from the coordinator over the worker's RPC
    channel.  Raises KeyError outside a worker, or when the coordinator
    has no resolver for *namespace*/*key* -- callers treat it as a plain
    cache miss."""
    runtime = _ACTIVE
    if runtime is None:
        raise KeyError(key)
    return runtime.rpc(None, "blob", namespace, key)


class _RemoteCounter:
    """Counter stand-in forwarding increments as metric frames."""

    __slots__ = ("_runtime", "_exec_id", "_name", "_labels")

    def __init__(
        self, runtime: "WorkerRuntime", exec_id: str, name: str, labels: dict
    ) -> None:
        self._runtime = runtime
        self._exec_id = exec_id
        self._name = name
        self._labels = labels

    def inc(self, amount: float = 1.0) -> None:
        self._runtime.send_metric(self._exec_id, self._name, self._labels, amount)

    # the registry Counter surface tasks may poke; remote values are
    # merged coordinator-side, so local reads see nothing
    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return 0.0


class RemoteTupleSpace:
    """The job tuple space, proxied over the wire as blocking RPCs.

    Blocking semantics are preserved: ``in_``/``rd`` park the *worker*
    task thread while the coordinator-side operation blocks on the real
    space; a timeout there raises the same ``MessageTimeout`` here.
    """

    def __init__(self, runtime: "WorkerRuntime", exec_id: str) -> None:
        self._runtime = runtime
        self._exec_id = exec_id

    def _call(self, op: str, *args: Any) -> Any:
        return self._runtime.rpc(self._exec_id, op, *args)

    def out(self, t) -> None:
        self._call("tuple_out", tuple(t))

    def in_(self, pattern, timeout: Optional[float] = None) -> tuple:
        return tuple(self._call("tuple_in", tuple(pattern), timeout))

    def rd(self, pattern, timeout: Optional[float] = None) -> tuple:
        return tuple(self._call("tuple_rd", tuple(pattern), timeout))

    def inp(self, pattern) -> Optional[tuple]:
        found = self._call("tuple_inp", tuple(pattern))
        return None if found is None else tuple(found)

    def rdp(self, pattern) -> Optional[tuple]:
        found = self._call("tuple_rdp", tuple(pattern))
        return None if found is None else tuple(found)

    def count(self, pattern=None) -> int:
        return self._call("tuple_count", None if pattern is None else tuple(pattern))

    def snapshot(self) -> list[tuple]:
        return [tuple(t) for t in self._call("tuple_snapshot")]


class RemoteTaskContext(TaskContext):
    """A TaskContext whose runtime surface crosses the wire.

    Subclasses the real context so the entire messaging API (``send``,
    ``multicast``, ``send_many``, ``broadcast``, selective receive,
    checkpoint/restore) runs the exact in-process code paths -- only the
    injected ``route`` / ``route_many`` / ``tuple_space`` / checkpoint
    callables differ.  Telemetry is forwarded as metric frames and
    merged into the coordinator registry under this node's namespace.
    """

    def __init__(self, runtime: "WorkerRuntime", exec_id: str, **kwargs: Any) -> None:
        self._runtime = runtime
        self._exec_id = exec_id
        super().__init__(**kwargs)

    def counter(self, name: str, **labels: Any) -> Any:
        return _RemoteCounter(self._runtime, self._exec_id, name, labels)

    def event(self, name: str, **attrs: Any) -> None:
        self._runtime.send_event(self._exec_id, name, attrs)


class _Exec:
    """One attempt running in this worker."""

    def __init__(self, exec_id: str, queue: MessageQueue) -> None:
        self.exec_id = exec_id
        self.queue = queue
        self.context: Optional[RemoteTaskContext] = None


class WorkerRuntime:
    """The worker's frame loop plus its executing attempts."""

    def __init__(self, endpoint: Endpoint, node: str) -> None:
        self.endpoint = endpoint
        self.node = node
        self._execs: dict[str, _Exec] = {}
        self._lock = threading.Lock()
        self._rpc_seq = 0
        self._rpc_waits: dict[int, list] = {}  # rpc_id -> [Event, ok, value]
        self._stopping = False
        #: metric/event frames buffered for coalescing; flushed whenever
        #: the buffer reaches :attr:`flush_threshold` frames, and always
        #: before the attempt's outcome frame (so the coordinator's
        #: registry observes every metric an outcome implies) and at
        #: shutdown.  Telemetry frames are fire-and-forget, so delaying
        #: them is safe; rpc/outcome/route frames are never buffered.
        self._frame_buffer: list[tuple[str, dict]] = []
        self.flush_threshold = 32

    # -- outbound helpers (any thread) -----------------------------------------
    def _send(self, op: str, data: dict) -> None:
        try:
            self.endpoint.send((op, data))
        except TransportError:
            # the coordinator is gone; the process is about to exit anyway
            pass  # conclint: waive CC303 -- orphaned worker, nothing to notify

    def _buffer_frame(self, op: str, data: dict) -> None:
        """Queue a telemetry frame, coalescing chatter into one wire
        frame per ``flush_threshold`` instead of one frame each."""
        with self._lock:
            self._frame_buffer.append((op, data))
            if len(self._frame_buffer) < self.flush_threshold:
                return
            frames = self._frame_buffer
            self._frame_buffer = []
        self._send("batch", {"frames": frames})

    def flush_frames(self) -> None:
        """Drain buffered telemetry frames to the coordinator now."""
        with self._lock:
            frames = self._frame_buffer
            self._frame_buffer = []
        if not frames:
            return
        if len(frames) == 1:
            self._send(*frames[0])
        else:
            self._send("batch", {"frames": frames})

    def send_metric(
        self, exec_id: str, name: str, labels: dict, amount: float
    ) -> None:
        self._buffer_frame(
            "metric",
            {"exec_id": exec_id, "name": name, "labels": labels, "amount": amount},
        )

    def send_event(self, exec_id: str, name: str, attrs: dict) -> None:
        self._buffer_frame("event", {"exec_id": exec_id, "name": name, "attrs": attrs})

    def rpc(self, exec_id: Optional[str], op: str, *args: Any) -> Any:
        """Synchronous request to the coordinator; raises what the
        coordinator-side operation raised (mapped back by class name)."""
        with self._lock:
            if self._stopping:
                raise ShutdownError("worker runtime is stopping")
            self._rpc_seq += 1
            rpc_id = self._rpc_seq
            slot = [threading.Event(), False, None]
            self._rpc_waits[rpc_id] = slot
        self._send(
            "rpc", {"rpc_id": rpc_id, "exec_id": exec_id, "op": op, "args": args}
        )
        slot[0].wait()
        ok, value = slot[1], slot[2]
        if ok:
            return value
        kind, text = value
        raise _error_by_name(kind, text)

    # -- frame loop (main thread) ----------------------------------------------
    def run(self) -> None:
        while True:
            try:
                frame = self.endpoint.recv()
            except TransportError:
                break
            if frame is None:
                break
            op, data = frame
            if op == "exec":
                self._start_exec(data)
            elif op == "msg":
                self._deliver(data)
            elif op == "queue-closed":
                self._cancel(data["exec_id"])
            elif op == "rpc-reply":
                self._rpc_reply(data)
            elif op == "stop":
                break
        self._shutdown()

    def _shutdown(self) -> None:
        self.flush_frames()
        with self._lock:
            self._stopping = True
            execs = list(self._execs.values())
            waits = list(self._rpc_waits.values())
            self._rpc_waits.clear()
        for slot in waits:
            slot[1] = False
            slot[2] = ("ShutdownError", "worker runtime is stopping")
            slot[0].set()
        for ex in execs:
            if ex.context is not None:
                ex.context.cancelled = True
            ex.queue.close()

    # -- frame handlers ---------------------------------------------------------
    def _start_exec(self, data: dict) -> None:
        exec_id = data["exec_id"]
        queue = MessageQueue(owner=f"{exec_id}@{self.node}")
        ex = _Exec(exec_id, queue)
        context = RemoteTaskContext(
            self,
            exec_id,
            task_name=data["task"],
            job_id=data["job_id"],
            node_name=data["node_name"],
            peers=data["peers"],
            queue=queue,
            route=self._route_one(exec_id),
            route_many=self._route_many(exec_id),
            tuple_space=RemoteTupleSpace(self, exec_id),
            params=data["params"],
            dependencies=data["dependencies"],
            attempt_epoch=data["attempt_epoch"],
            manager_epoch=data["manager_epoch"],
            checkpoint_save=lambda state, tag=None, _id=exec_id: self.rpc(
                _id, "checkpoint_save", state, tag
            ),
            checkpoint_load=lambda _id=exec_id: self.rpc(_id, "checkpoint_load"),
        )
        ex.context = context
        with self._lock:
            self._execs[exec_id] = ex
        thread = threading.Thread(
            target=self._run_exec,
            args=(ex, data),
            name=f"cn-worker-{exec_id}",
            daemon=True,
        )
        thread.start()

    def _route_one(self, exec_id: str):
        def route(message) -> None:
            self._send("route", {"exec_id": exec_id, "messages": [message]})

        return route

    def _route_many(self, exec_id: str):
        def route_many(messages) -> None:
            self._send("route", {"exec_id": exec_id, "messages": list(messages)})

        return route_many

    def _run_exec(self, ex: _Exec, data: dict) -> None:
        import pickle

        outcome: dict
        try:
            task_class = pickle.loads(data["cls_blob"])
            try:
                instance = task_class(*data["params"])
            except TypeError as exc:
                raise TaskLoadError(
                    f"cannot construct {task_class.__name__} for task "
                    f"{data['task']!r} with params {data['params']!r}: {exc}"
                ) from exc
            # conclint: waive CC402 -- instance and context share this worker
            instance._ctx = ex.context
            result = instance.run(ex.context)
        except BaseException as exc:  # noqa: BLE001  # conclint: waive CC302 -- every exception must become an outcome frame, never kill the worker loop
            outcome = {
                "exec_id": ex.exec_id,
                "ok": False,
                "kind": type(exc).__name__,
                "text": str(exc),
                "tb": traceback.format_exc(),
            }
        else:
            outcome = {"exec_id": ex.exec_id, "ok": True, "result": result}
        with self._lock:
            self._execs.pop(ex.exec_id, None)
        # attempt-end barrier: buffered metric/event frames must land
        # before the outcome they causally precede
        self.flush_frames()
        self._send("outcome", outcome)

    def _deliver(self, data: dict) -> None:
        with self._lock:
            ex = self._execs.get(data["exec_id"])
        if ex is None:
            return  # outcome raced the pump; the attempt is already gone
        try:
            ex.queue.put(data["message"])
        except ShutdownError:  # conclint: waive CC303 -- late delivery to a cancelled attempt is dropped by design
            pass

    def _cancel(self, exec_id: str) -> None:
        with self._lock:
            ex = self._execs.get(exec_id)
        if ex is None:
            return
        if ex.context is not None:
            ex.context.cancelled = True
        ex.queue.close()

    def _rpc_reply(self, data: dict) -> None:
        with self._lock:
            slot = self._rpc_waits.pop(data["rpc_id"], None)
        if slot is None:
            return
        if data["ok"]:
            slot[1], slot[2] = True, data["value"]
        else:
            slot[1], slot[2] = False, (data["kind"], data["text"])
        slot[0].set()


def _error_by_name(kind: str, text: str) -> Exception:
    """Rebuild a coordinator-side error by class name (CN errors keep
    their type so worker code can catch MessageTimeout etc.)."""
    from .. import errors as errors_mod

    exc_cls = getattr(errors_mod, kind, None)
    if isinstance(exc_cls, type) and issubclass(exc_cls, Exception):
        try:
            return exc_cls(text)
        except TypeError:
            # rich constructor signature; degrade to the base CN error
            return errors_mod.CnError(f"{kind}: {text}")
    if kind == "KeyError":
        return KeyError(text)
    return RuntimeError(f"{kind}: {text}")


def worker_main(sock: Any, node: str, shm_threshold: Optional[int]) -> None:
    """Entry point of the forked worker process."""
    global _ACTIVE
    # re-arm locks the fork may have captured while held elsewhere
    from multiprocessing import resource_tracker

    from .. import messages

    messages._serial_lock = threading.Lock()  # conclint: waive CC402 -- fork re-arms the module's own lock
    # The coordinator's threads take the resource tracker's RLock on every
    # SharedMemory create/register; a lazy worker fork landing inside that
    # critical section leaves the child's copy locked with no owner, and
    # the first shm attach here (consuming a spilled frame segment) would
    # deadlock in ensure_running().  The tracker pipe itself is fine to
    # share (writes are atomic and complete), so a fresh lock is enough.
    resource_tracker._resource_tracker._lock = threading.RLock()  # conclint: waive CC402 -- post-fork re-arm of the stdlib tracker's own lock; no public reset exists
    for reset in list(_FORK_RESETS):
        reset()
    _disarm_inherited_verifier()
    endpoint = SocketEndpoint(
        sock, codec=FrameCodec(), shm_threshold=shm_threshold
    )
    runtime = WorkerRuntime(endpoint, node)
    _ACTIVE = runtime
    try:
        runtime.run()
    finally:
        _ACTIVE = None
        endpoint.close()


def _disarm_inherited_verifier() -> None:
    """A lock verifier installed in the coordinator is meaningless here
    (and its inherited state may be mid-update); drop it."""
    from ...analysis.conc import runtime as conc_runtime

    uninstall = getattr(conc_runtime, "uninstall_verifier", None)
    if uninstall is not None:
        try:
            uninstall()
        except (RuntimeError, ValueError):
            pass  # conclint: waive CC303 -- no verifier was installed; nothing to disarm
