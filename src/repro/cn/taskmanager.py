"""TaskManager: hosts and executes tasks on one node.

"TaskManager executes the various Tasks of various Jobs and is
transparent to the user. ... TaskManager in turn sets up a message queue
for each Task and then executes each Task in a separate thread when the
User program requests to start the Task." (paper section 3)

Resource model: a TaskManager has a memory capacity (the unit matches
the descriptor's ``<memory>`` values) and a bounded number of execution
slots.  Hosting a task reserves its memory immediately (the JAR is
"uploaded" and the queue exists even before start); a slot is consumed
only while the task thread runs.  Both are released on terminal states.

Fault tolerance: the TaskManager is both a fault *site* (an attached
:class:`~repro.cn.chaos.ChaosPolicy` can crash or stall tasks at start,
or crash the whole node) and a failure *participant*: it emits
heartbeats (:meth:`beat`), can :meth:`crash` and :meth:`revive`, and
runs the per-task deadline watchdog (:meth:`expire_deadlines`).  Every
hosting carries an *epoch* -- a zombie attempt (its node crashed or the
task was re-placed elsewhere) discards its outcome instead of publishing
over the live attempt's state.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Optional, Type

from ..analysis.conc.runtime import make_lock
from .chaos import ChaosPolicy, InjectedFault, VirtualClock
from .errors import BudgetExhausted, CnError, ShutdownError, TaskLoadError
from .job import Job, TaskRuntime, TaskState
from .messages import Message, MessageType
from .queues import MessageQueue
from .runmodel import RunModel
from .scheduler import Bid, PlacementRule
from .task import Task, TaskContext
from .transport.base import TaskExecutor
from .transport.inproc import InlineExecutor

__all__ = ["TaskManager", "HostedTask"]


class HostedTask:
    """Bookkeeping for one task hosted by this TaskManager."""

    def __init__(
        self, job: Job, runtime: TaskRuntime, task_class: Type[Task], epoch: int
    ) -> None:
        self.job = job
        self.runtime = runtime
        self.task_class = task_class
        self.thread: Optional[threading.Thread] = None
        self.context: Optional[TaskContext] = None
        #: the placement generation this hosting belongs to; stale when
        #: it no longer matches ``runtime.epoch``
        self.epoch = epoch
        #: virtual-clock time the task thread started (deadline anchor)
        self.started_at: Optional[float] = None
        #: set by the deadline watchdog before cancelling; routes the
        #: resulting ShutdownError into the retry path
        self.timed_out = False
        #: set on cancel/crash/timeout; wakes chaos-stalled tasks
        self.cancel_event = threading.Event()


class TaskManager:
    """One node's task execution component."""

    def __init__(
        self,
        name: str,
        *,
        memory_capacity: int = 8000,
        slots: int = 64,
        chaos: Optional[ChaosPolicy] = None,
        clock: Optional[VirtualClock] = None,
        queue_maxsize: int = 0,
        queue_policy: str = "block",
        checksums: bool = False,
        executor: Optional[TaskExecutor] = None,
    ) -> None:
        self.name = name
        #: the execution backend seam: attempts run through this instead
        #: of an implicit inline call (transport subsystem); the default
        #: preserves the historical in-process semantics exactly
        self.executor: TaskExecutor = (
            executor if executor is not None else InlineExecutor()
        )
        self.memory_capacity = memory_capacity
        self.slots = slots
        self.chaos = chaos
        self.clock = clock if clock is not None else VirtualClock()
        #: backpressure configuration applied to every hosted task queue
        #: (0 = unbounded, the seed default; see MessageQueue policies)
        self.queue_maxsize = queue_maxsize
        self.queue_policy = queue_policy
        #: verify CRC frame digests at dequeue and quarantine mismatches
        #: as per-job dead letters (see Job.note_poison)
        self.checksums = checksums
        #: task attempts dropped before execution because the job budget
        #: had already expired (cheaper than running doomed work)
        self.budget_drops = 0
        #: set by the Cluster: invoked when chaos decides this node dies
        self.crash_hook: Optional[Callable[[], None]] = None
        self._memory_used = 0
        self._slots_used = 0
        self._hosted: dict[tuple[str, str], HostedTask] = {}
        #: archives (JAR names) already unpacked on this node -- makes
        #: the bid scheduler's "do I have this?" locality check O(1)
        self._archive_cache: set = set()
        self._lock = make_lock("TaskManager._lock")
        self._shutdown = False
        self._crashed = False
        self._beats = 0
        self._starts = 0
        #: cluster Telemetry hub (set by CNServer wiring); attempt spans
        #: are driven off job.telemetry, this is for node-level sampling
        self.telemetry: Optional[Any] = None

    # -- capacity -----------------------------------------------------------
    @property
    def free_memory(self) -> int:
        with self._lock:
            return self.memory_capacity - self._memory_used

    @property
    def free_slots(self) -> int:
        with self._lock:
            return self.slots - self._slots_used

    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._crashed

    def can_host(self, memory: int, runmodel: RunModel) -> bool:
        with self._lock:
            if self._shutdown or self._crashed:
                return False
            if not self.executor.healthy():
                return False  # execution substrate (worker process) died
            if memory > self.memory_capacity - self._memory_used:
                return False
            if runmodel.occupies_slot and self._slots_used >= self.slots:
                return False
            return True

    def compute_bid(self, rule: "PlacementRule") -> Optional["Bid"]:
        """Score a placement rule locally and return this node's bid.

        This is the decentralized half of the bid scheduler: the node --
        not the JobManager -- expands the rule against its own state and
        answers with how many of the rule's tasks it could take and how
        good a home it would be.  Locality is O(1) per probe: archive
        presence comes from :attr:`_archive_cache` and upstream-producer
        presence from the ``_hosted`` map.  Returns None when the node
        cannot take any task from the rule (the solicit scheduler's
        "no offer").
        """
        runmodel = RunModel.parse(rule.runmodel)
        with self._lock:
            if self._shutdown or self._crashed:
                return None
            if not self.executor.healthy():
                return None
            free_mem = self.memory_capacity - self._memory_used
            if rule.memory > free_mem:
                return None
            if rule.memory > 0:
                capacity = min(rule.count, free_mem // rule.memory)
            else:
                capacity = rule.count
            if runmodel.occupies_slot:
                free_slots = self.slots - self._slots_used
                if free_slots <= 0:
                    return None
                capacity = min(capacity, free_slots)
            if capacity <= 0:
                return None
            load = sum(
                1 for h in self._hosted.values() if not h.runtime.state.terminal
            )
            locality = 1 if rule.jar in self._archive_cache else 0
            for dep in rule.depends:
                if (rule.job_id, dep) in self._hosted:
                    locality += 1
            return Bid(
                taskmanager=self.name,
                capacity=capacity,
                free_memory=free_mem,
                load=load,
                locality=locality,
            )

    # -- liveness --------------------------------------------------------------
    def beat(self) -> Optional[dict]:
        """One heartbeat (published on the bus by Cluster.tick); a crashed
        or shut-down node is silent."""
        with self._lock:
            if self._crashed or self._shutdown:
                return None
            if not self.executor.healthy():
                # a dead worker process silences the node: the ordinary
                # failure detector declares it and recovery re-places work
                return None
            self._beats += 1
            return {
                "node": self.name,
                "beat": self._beats,
                "hosted": len(self._hosted),
            }

    def crash(self) -> None:
        """Simulate abrupt node death: drop all hostings, zero accounting,
        wake/cancel every running task thread.  Threads keep running as
        zombies until they notice, but the epoch fence discards their
        outcomes (see :meth:`_apply_outcome`)."""
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
            hosted = list(self._hosted.values())
            self._hosted.clear()
            self._memory_used = 0
            self._slots_used = 0
        for h in hosted:
            if h.context is not None:
                h.context.cancelled = True
            h.cancel_event.set()
            # only close queues this hosting still owns -- a task already
            # re-placed elsewhere has a fresh queue that must stay open
            if h.epoch == h.runtime.epoch and h.runtime.queue is not None:
                h.runtime.queue.close()

    def revive(self) -> None:
        """Bring a crashed node back empty (a rebooted machine)."""
        with self._lock:
            self._crashed = False
            self._memory_used = 0
            self._slots_used = 0
            self._hosted.clear()
            self._archive_cache.clear()

    # -- hosting --------------------------------------------------------------
    def host_task(self, job: Job, runtime: TaskRuntime, task_class: Type[Task]) -> None:
        """Accept a task: reserve memory, create its message queue.

        This is the receiving end of the JobManager's archive upload; the
        class object stands in for the unpacked JAR.
        """
        with self._lock:
            if self._shutdown:
                raise ShutdownError(f"TaskManager {self.name!r} is shut down")
            if self._crashed:
                raise ShutdownError(f"TaskManager {self.name!r} has crashed")
            if not self.can_host(runtime.spec.memory, runtime.spec.runmodel):
                raise CnError(
                    f"TaskManager {self.name!r} cannot host {runtime.name!r}: "
                    f"free memory {self.free_memory}, requested {runtime.spec.memory}"
                )
            self._memory_used += runtime.spec.memory
            runtime.queue = MessageQueue(
                owner=f"{job.job_id}/{runtime.name}",
                maxsize=self.queue_maxsize,
                policy=self.queue_policy,
                # evictions are journaled through the job so the delivery
                # ledger can re-offer them (shed-then-replay, not loss);
                # the queue invokes this after releasing its own lock
                on_shed=lambda m, _job=job, _name=runtime.name: _job.note_shed(
                    _name, m
                ),
                chaos=self.chaos,
                # corrupt frames are quarantined at dequeue and recorded
                # as per-job dead letters (again after the queue lock)
                verify_digests=self.checksums,
                on_poison=lambda m, _job=job, _name=runtime.name: _job.note_poison(
                    _name, m
                ),
            )
            runtime.node_name = self.name
            runtime.state = TaskState.CREATED
            runtime.epoch += 1
            self._archive_cache.add(runtime.spec.jar)
            self._hosted[(job.job_id, runtime.name)] = HostedTask(
                job, runtime, task_class, runtime.epoch
            )

    def start_task(
        self,
        job: Job,
        name: str,
        *,
        on_terminal: Optional[Callable[[Job, TaskRuntime], None]] = None,
        claim_only: bool = False,
    ) -> bool:
        """Run the task on its own thread (per its run model).

        With ``claim_only`` a task that is not in CREATED state -- or
        whose hosting vanished underneath a node crash -- is simply not
        started (returns False) instead of raising; the scheduler paths
        (start_job, completion cascade, recovery) race benignly on the
        same ready set and use this to claim each task exactly once."""
        with self._lock:
            hosted = self._hosted.get((job.job_id, name))
            if hosted is None:
                if claim_only:
                    return False
                raise CnError(f"TaskManager {self.name!r} does not host {name!r}")
            runtime = hosted.runtime
            if runtime.state is not TaskState.CREATED:
                if claim_only:
                    return False
                raise CnError(
                    f"task {name!r} cannot start from state {runtime.state.value}"
                )
            if runtime.spec.runmodel.occupies_slot:
                self._slots_used += 1
            runtime.state = TaskState.RUNNING
            hosted.started_at = self.clock.now()
            self._starts += 1
            starts = self._starts
        thread = threading.Thread(
            target=self._run_task,
            args=(hosted, on_terminal),
            name=f"cn-task-{job.job_id}-{name}",
            daemon=True,
        )
        hosted.thread = thread
        job.route(
            Message(
                MessageType.TASK_STARTED,
                sender=self.name,
                recipient="client",
                payload={"task": name, "node": self.name},
                origin=self.name.split("/")[0],
                trace_ctx=(job.job_id, f"task:{name}"),
            )
        )
        thread.start()
        chaos = self.chaos
        if chaos is not None and chaos.enabled and chaos.node_crash_due(self.name, starts):
            hook = self.crash_hook
            if hook is not None:
                hook()  # Cluster.kill_node: crash + leave the subnet
            else:
                self.crash()
        return True

    def _run_task(
        self,
        hosted: HostedTask,
        on_terminal: Optional[Callable[[Job, TaskRuntime], None]],
    ) -> None:
        job, runtime = hosted.job, hosted.runtime
        context = TaskContext(
            task_name=runtime.name,
            job_id=job.job_id,
            node_name=self.name,
            peers=job.task_names(),
            queue=runtime.queue,  # type: ignore[arg-type]
            route=job.route,
            route_many=job.route_many,
            tuple_space=job.tuple_space,
            params=runtime.spec.params,
            dependencies={
                name: job.tasks[name].spec.depends for name in job.task_names()
            },
            attempt_epoch=hosted.epoch,
            manager_epoch=job.manager_epoch,
            checkpoint_save=lambda state, tag=None: job.save_checkpoint(
                runtime.name, state, tag
            ),
            checkpoint_load=lambda: job.load_checkpoint(runtime.name),
        )
        hosted.context = context
        outcome_type = MessageType.TASK_COMPLETED
        payload: dict[str, Any]
        runtime.attempts += 1
        attempt = runtime.attempts
        t = job.telemetry
        span = None
        if t is not None:
            # one attempt span per hosting epoch, sibling of any earlier
            # attempts under the same logical task span
            span = t.spans.begin(
                job.job_id,
                f"attempt:{runtime.name}#{hosted.epoch}",
                name=f"{runtime.name}#{hosted.epoch}",
                kind="attempt",
                parent_id=f"task:{runtime.name}",
                node=self.name.split("/")[0],
                task=runtime.name,
                epoch=hosted.epoch,
                attempt=attempt,
            )
            context.bind_telemetry(t, span)
        retrying = False
        state = TaskState.COMPLETED
        result: Any = None
        error: Optional[str] = None
        try:
            budget = job.deadline
            if budget is not None:
                now = self.clock.now()
                if now >= budget:
                    with self._lock:
                        self.budget_drops += 1
                    raise BudgetExhausted(runtime.name, deadline=budget, now=now)
            chaos = self.chaos
            if chaos is not None and chaos.enabled:
                if chaos.should_crash_task(job.job_id, runtime.name, attempt):
                    raise InjectedFault(
                        f"chaos: injected crash of {runtime.name!r} "
                        f"(attempt {attempt}) on {self.name}"
                    )
                if chaos.should_stall(job.job_id, runtime.name, attempt):
                    # a hung task: block until something cancels us (the
                    # deadline watchdog, a node crash, job cancellation)
                    hosted.cancel_event.wait()
                    raise ShutdownError(
                        f"chaos-stalled task {runtime.name!r} cancelled"
                    )
            # the execution-backend seam: inline for inproc (identical to
            # the historical instantiate-and-run), shipped to the node's
            # worker process for proc -- either way the call returns the
            # result or raises exactly what instance.run(context) raised
            result = self.executor.execute(self, hosted, context)
        except BudgetExhausted as exc:
            # the end-to-end job budget is already spent: executing (or
            # retrying -- equally doomed) would burn the resources a
            # saturated cluster is short of, so fail immediately
            state = TaskState.FAILED
            error = str(exc)
            outcome_type = MessageType.TASK_FAILED
            payload = {
                "task": runtime.name,
                "error": error,
                "reason": "budget-exhausted",
            }
        except ShutdownError:
            if hosted.timed_out and attempt <= runtime.spec.max_retries:
                # deadline expiry with retry budget: back into the retry path
                state = TaskState.RETRYING
                retrying = True
                error = (
                    f"deadline {runtime.spec.deadline}s exceeded on {self.name} "
                    f"(attempt {attempt})"
                )
                outcome_type = MessageType.TASK_RETRY
                payload = {
                    "task": runtime.name,
                    "attempt": attempt,
                    "max_retries": runtime.spec.max_retries,
                    "error": error,
                    "reason": "timeout",
                }
            elif hosted.timed_out:
                state = TaskState.FAILED
                error = (
                    f"deadline {runtime.spec.deadline}s exceeded on {self.name} "
                    f"(attempt {attempt}); retry budget exhausted"
                )
                outcome_type = MessageType.TASK_FAILED
                payload = {"task": runtime.name, "error": error}
            else:
                state = TaskState.CANCELLED
                outcome_type = MessageType.TASK_CANCELLED
                payload = {"task": runtime.name}
        except Exception:  # noqa: BLE001  # conclint: waive CC302 -- any user-task exception becomes a captured failure outcome
            error = traceback.format_exc()
            if attempt <= runtime.spec.max_retries and not context.cancelled:
                # failure with retry budget left: hand back to the
                # JobManager for re-placement instead of failing the job
                state = TaskState.RETRYING
                retrying = True
                outcome_type = MessageType.TASK_RETRY
                payload = {
                    "task": runtime.name,
                    "attempt": attempt,
                    "max_retries": runtime.spec.max_retries,
                    "error": error,
                }
            else:
                state = TaskState.FAILED
                outcome_type = MessageType.TASK_FAILED
                payload = {"task": runtime.name, "error": error}
        else:
            payload = {"task": runtime.name, "result": result}
        finally:
            self._release(runtime)
        applied = self._apply_outcome(hosted, state, result, error)
        if span is not None:
            if applied:
                t.spans.end(span, state=state.value)
                t.metrics.histogram(
                    "cn_task_duration_seconds", node=self.name.split("/")[0]
                ).observe(span.end - span.start)
                t.metrics.counter(
                    "cn_task_outcomes_total", outcome=state.value
                ).inc()
            else:
                # the fence discarded this run; mark the span so the
                # critical-path fold can skip it as a zombie
                t.spans.end(span, fenced=True)
        if not applied:
            return  # zombie attempt: node crashed / task re-placed; discard
        outcome_message = Message(
            outcome_type,
            sender=self.name,
            recipient="client",
            payload=payload,
            origin=self.name.split("/")[0],
            trace_ctx=(job.job_id, f"attempt:{runtime.name}#{hosted.epoch}"),
        )
        try:
            job.route(outcome_message)
        except ShutdownError as exc:
            # client queue already closed (job torn down mid-flight): the
            # drop must land in the undeliverable ledger, not vanish
            from .trace import note_undeliverable  # local: trace imports api

            note_undeliverable(job.job_id, outcome_message, exc)
        # journal (on_terminal) before note_terminal: the finished event may
        # wake a client that immediately shuts the cluster (and the journal
        # backend) down, so the terminal records must already be on disk
        if on_terminal is not None:
            on_terminal(job, runtime)
        if not retrying:
            job.note_terminal(runtime.name)

    def _apply_outcome(
        self,
        hosted: HostedTask,
        state: TaskState,
        result: Any,
        error: Optional[str],
    ) -> bool:
        """Atomically publish a run's outcome unless the hosting went
        stale (node crash, eviction, re-placement) while it ran."""
        runtime = hosted.runtime
        with self._lock:
            if self._crashed or runtime.epoch != hosted.epoch:
                return False
            key = (hosted.job.job_id, runtime.name)
            if self._hosted.get(key) is not hosted:
                return False
            if state is TaskState.COMPLETED:
                runtime.result = result
            if error is not None:
                runtime.error = error
            runtime.state = state
        return True

    # -- deadlines ------------------------------------------------------------
    def _effective_deadline(self, h: HostedTask) -> Optional[float]:
        """The watchdog deadline for one hosting, in seconds from its
        start: the per-task spec deadline capped by whatever remains of
        the end-to-end job budget at the moment the attempt started."""
        deadline = h.runtime.spec.deadline
        job_deadline = h.job.deadline
        if job_deadline is not None and h.started_at is not None:
            remaining = job_deadline - h.started_at
            deadline = remaining if deadline is None else min(deadline, remaining)
        return deadline

    def expire_deadlines(self, now: Optional[float] = None) -> list[str]:
        """Cancel running tasks past their deadline into the retry path.

        The deadline is the *effective* one: the per-task spec deadline
        capped by the remaining job budget (a task must not outlive its
        job's end-to-end deadline even if its own allowance is larger).
        Driven by :meth:`Cluster.tick`; *now* is virtual-clock time.
        Returns the names of the tasks timed out on this call."""
        if now is None:
            now = self.clock.now()
        expired: list[tuple[HostedTask, float]] = []
        with self._lock:
            if self._crashed or self._shutdown:
                return []
            for h in self._hosted.values():
                deadline = self._effective_deadline(h)
                if (
                    deadline is not None
                    and not h.timed_out
                    and h.runtime.state is TaskState.RUNNING
                    and h.started_at is not None
                    and now - h.started_at >= deadline
                    and h.epoch == h.runtime.epoch
                ):
                    h.timed_out = True
                    expired.append((h, deadline))
        for h, deadline in expired:
            timeout_message = Message(
                MessageType.TASK_TIMEOUT,
                sender=self.name,
                recipient="client",
                payload={
                    "task": h.runtime.name,
                    "node": self.name,
                    "deadline": deadline,
                    "attempt": h.runtime.attempts,
                },
            )
            try:
                h.job.route(timeout_message)
            except ShutdownError as exc:
                # job torn down between expiry scan and notification: ledger
                # the drop instead of silently losing the timeout event
                from .trace import note_undeliverable  # local: trace imports api

                note_undeliverable(h.job.job_id, timeout_message, exc)
            if h.context is not None:
                h.context.cancelled = True
            h.cancel_event.set()
            if h.runtime.queue is not None:
                h.runtime.queue.close()
        return [h.runtime.name for h, _ in expired]

    def evict(self, job: Job, name: str) -> None:
        """Forget a hosted task (used when a retry re-places elsewhere)."""
        with self._lock:
            self._hosted.pop((job.job_id, name), None)

    def evict_job(self, job_id: str) -> list[str]:
        """Evict and cancel every hosting of *job_id* on this node.

        Used by a successor JobManager adopting the job after a failover:
        any attempts the dead manager placed here become zombies -- their
        queues close, their threads unblock with ShutdownError, and the
        hosted-identity fence in :meth:`_apply_outcome` discards whatever
        outcome they produce.  Returns the evicted task names."""
        with self._lock:
            victims = [
                (key, h) for key, h in self._hosted.items() if key[0] == job_id
            ]
            for key, h in victims:
                del self._hosted[key]
                if h.thread is None and not self._crashed:
                    # placed but never started: no task thread exists to
                    # release the memory reservation on exit
                    self._memory_used -= h.runtime.spec.memory
        names = []
        for (_, name), h in victims:
            if h.context is not None:
                h.context.cancelled = True
            h.cancel_event.set()
            if h.runtime.queue is not None:
                h.runtime.queue.close()
            names.append(name)
        return names

    def _instantiate(self, task_class: Type[Task], runtime: TaskRuntime) -> Task:
        try:
            return task_class(*runtime.spec.params)
        except TypeError as exc:
            raise TaskLoadError(
                f"cannot construct {task_class.__name__} for task "
                f"{runtime.name!r} with params {runtime.spec.params!r}: {exc}"
            ) from exc

    def _release(self, runtime: TaskRuntime) -> None:
        with self._lock:
            if self._crashed:
                return  # crash already zeroed the accounting
            self._memory_used -= runtime.spec.memory
            if runtime.spec.runmodel.occupies_slot:
                self._slots_used -= 1

    # -- cancellation / shutdown ---------------------------------------------------
    def cancel_task(self, job: Job, name: str) -> None:
        """Cooperatively cancel: flag the context and close the queue so a
        blocked receive unblocks with ShutdownError."""
        with self._lock:
            hosted = self._hosted.get((job.job_id, name))
        if hosted is None:
            return
        if hosted.context is not None:
            hosted.context.cancelled = True
        hosted.cancel_event.set()
        if hosted.runtime.queue is not None:
            hosted.runtime.queue.close()

    def hosted_count(self) -> int:
        with self._lock:
            return len(
                [h for h in self._hosted.values() if not h.runtime.state.terminal]
            )

    def queued_messages(self) -> int:
        """Messages sitting in this node's hosted task queues right now --
        the per-node backpressure signal the telemetry samplers gauge."""
        with self._lock:
            hosted = list(self._hosted.values())
        total = 0
        for h in hosted:
            queue = h.runtime.queue
            if queue is not None and h.epoch == h.runtime.epoch:
                total += len(queue)
        return total

    def queue_overload_stats(self) -> tuple[int, int]:
        """``(rejected, shed)`` totals across this node's live hosted task
        queues -- the backpressure counters the telemetry samplers gauge.
        Point-in-time over current hostings (an evicted hosting retires
        its queue's counts); the authoritative cumulative count per job is
        ``Job.messages_shed`` / the journal's ``shed`` records."""
        with self._lock:
            hosted = list(self._hosted.values())
        rejected = shed = 0
        for h in hosted:
            queue = h.runtime.queue
            if queue is not None:
                rejected += queue.rejected
                shed += queue.shed
        return rejected, shed

    def queue_poisoned(self) -> int:
        """Frames quarantined by digest verification across this node's
        live hosted task queues (same point-in-time caveat as
        :meth:`queue_overload_stats`; the durable count per job is the
        journal's ``dead-letter`` records)."""
        with self._lock:
            hosted = list(self._hosted.values())
        total = 0
        for h in hosted:
            queue = h.runtime.queue
            if queue is not None:
                total += queue.poisoned
        return total

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            hosted = list(self._hosted.values())
        for h in hosted:
            if h.context is not None:
                h.context.cancelled = True
            h.cancel_event.set()
            if h.runtime.queue is not None:
                h.runtime.queue.close()

    def __repr__(self) -> str:
        return (
            f"<TaskManager {self.name!r} mem {self._memory_used}/"
            f"{self.memory_capacity} slots {self._slots_used}/{self.slots}>"
        )
