"""TaskManager: hosts and executes tasks on one node.

"TaskManager executes the various Tasks of various Jobs and is
transparent to the user. ... TaskManager in turn sets up a message queue
for each Task and then executes each Task in a separate thread when the
User program requests to start the Task." (paper section 3)

Resource model: a TaskManager has a memory capacity (the unit matches
the descriptor's ``<memory>`` values) and a bounded number of execution
slots.  Hosting a task reserves its memory immediately (the JAR is
"uploaded" and the queue exists even before start); a slot is consumed
only while the task thread runs.  Both are released on terminal states.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Optional, Type

from .errors import CnError, ShutdownError, TaskLoadError
from .job import Job, TaskRuntime, TaskState
from .messages import Message, MessageType
from .queues import MessageQueue
from .runmodel import RunModel
from .task import Task, TaskContext

__all__ = ["TaskManager", "HostedTask"]


class HostedTask:
    """Bookkeeping for one task hosted by this TaskManager."""

    def __init__(self, job: Job, runtime: TaskRuntime, task_class: Type[Task]) -> None:
        self.job = job
        self.runtime = runtime
        self.task_class = task_class
        self.thread: Optional[threading.Thread] = None
        self.context: Optional[TaskContext] = None


class TaskManager:
    """One node's task execution component."""

    def __init__(
        self,
        name: str,
        *,
        memory_capacity: int = 8000,
        slots: int = 64,
    ) -> None:
        self.name = name
        self.memory_capacity = memory_capacity
        self.slots = slots
        self._memory_used = 0
        self._slots_used = 0
        self._hosted: dict[tuple[str, str], HostedTask] = {}
        self._lock = threading.RLock()
        self._shutdown = False

    # -- capacity -----------------------------------------------------------
    @property
    def free_memory(self) -> int:
        with self._lock:
            return self.memory_capacity - self._memory_used

    @property
    def free_slots(self) -> int:
        with self._lock:
            return self.slots - self._slots_used

    def can_host(self, memory: int, runmodel: RunModel) -> bool:
        with self._lock:
            if self._shutdown:
                return False
            if memory > self.memory_capacity - self._memory_used:
                return False
            if runmodel.occupies_slot and self._slots_used >= self.slots:
                return False
            return True

    # -- hosting --------------------------------------------------------------
    def host_task(self, job: Job, runtime: TaskRuntime, task_class: Type[Task]) -> None:
        """Accept a task: reserve memory, create its message queue.

        This is the receiving end of the JobManager's archive upload; the
        class object stands in for the unpacked JAR.
        """
        with self._lock:
            if self._shutdown:
                raise ShutdownError(f"TaskManager {self.name!r} is shut down")
            if not self.can_host(runtime.spec.memory, runtime.spec.runmodel):
                raise CnError(
                    f"TaskManager {self.name!r} cannot host {runtime.name!r}: "
                    f"free memory {self.free_memory}, requested {runtime.spec.memory}"
                )
            self._memory_used += runtime.spec.memory
            runtime.queue = MessageQueue(owner=f"{job.job_id}/{runtime.name}")
            runtime.node_name = self.name
            runtime.state = TaskState.CREATED
            self._hosted[(job.job_id, runtime.name)] = HostedTask(job, runtime, task_class)

    def start_task(
        self,
        job: Job,
        name: str,
        *,
        on_terminal: Optional[Callable[[Job, TaskRuntime], None]] = None,
        claim_only: bool = False,
    ) -> bool:
        """Run the task on its own thread (per its run model).

        With ``claim_only`` a task that is not in CREATED state is simply
        not started (returns False) instead of raising -- the scheduler
        paths (start_job, completion cascade) race benignly on the same
        ready set and use this to claim each task exactly once."""
        with self._lock:
            hosted = self._hosted.get((job.job_id, name))
            if hosted is None:
                raise CnError(f"TaskManager {self.name!r} does not host {name!r}")
            runtime = hosted.runtime
            if runtime.state is not TaskState.CREATED:
                if claim_only:
                    return False
                raise CnError(
                    f"task {name!r} cannot start from state {runtime.state.value}"
                )
            if runtime.spec.runmodel.occupies_slot:
                self._slots_used += 1
            runtime.state = TaskState.RUNNING
        thread = threading.Thread(
            target=self._run_task,
            args=(hosted, on_terminal),
            name=f"cn-task-{job.job_id}-{name}",
            daemon=True,
        )
        hosted.thread = thread
        job.route(
            Message(
                MessageType.TASK_STARTED,
                sender=self.name,
                recipient="client",
                payload={"task": name, "node": self.name},
            )
        )
        thread.start()
        return True

    def _run_task(
        self,
        hosted: HostedTask,
        on_terminal: Optional[Callable[[Job, TaskRuntime], None]],
    ) -> None:
        job, runtime = hosted.job, hosted.runtime
        context = TaskContext(
            task_name=runtime.name,
            job_id=job.job_id,
            node_name=self.name,
            peers=job.task_names(),
            queue=runtime.queue,  # type: ignore[arg-type]
            route=job.route,
            tuple_space=job.tuple_space,
            params=runtime.spec.params,
            dependencies={
                name: job.tasks[name].spec.depends for name in job.task_names()
            },
        )
        hosted.context = context
        outcome_type = MessageType.TASK_COMPLETED
        payload: dict[str, Any]
        runtime.attempts += 1
        retrying = False
        try:
            instance = self._instantiate(hosted.task_class, runtime)
            result = instance.run(context)
        except ShutdownError:
            runtime.state = TaskState.CANCELLED
            outcome_type = MessageType.TASK_CANCELLED
            payload = {"task": runtime.name}
        except Exception:
            runtime.error = traceback.format_exc()
            if runtime.attempts <= runtime.spec.max_retries and not context.cancelled:
                # failure with retry budget left: hand back to the
                # JobManager for re-placement instead of failing the job
                runtime.state = TaskState.RETRYING
                retrying = True
                outcome_type = MessageType.TASK_RETRY
                payload = {
                    "task": runtime.name,
                    "attempt": runtime.attempts,
                    "max_retries": runtime.spec.max_retries,
                    "error": runtime.error,
                }
            else:
                runtime.state = TaskState.FAILED
                outcome_type = MessageType.TASK_FAILED
                payload = {"task": runtime.name, "error": runtime.error}
        else:
            runtime.result = result
            runtime.state = TaskState.COMPLETED
            payload = {"task": runtime.name, "result": result}
        finally:
            self._release(runtime)
        try:
            job.route(
                Message(outcome_type, sender=self.name, recipient="client", payload=payload)
            )
        except ShutdownError:
            pass
        if not retrying:
            job.note_terminal(runtime.name)
        if on_terminal is not None:
            on_terminal(job, runtime)

    def evict(self, job: Job, name: str) -> None:
        """Forget a hosted task (used when a retry re-places elsewhere)."""
        with self._lock:
            self._hosted.pop((job.job_id, name), None)

    def _instantiate(self, task_class: Type[Task], runtime: TaskRuntime) -> Task:
        try:
            return task_class(*runtime.spec.params)
        except TypeError as exc:
            raise TaskLoadError(
                f"cannot construct {task_class.__name__} for task "
                f"{runtime.name!r} with params {runtime.spec.params!r}: {exc}"
            ) from exc

    def _release(self, runtime: TaskRuntime) -> None:
        with self._lock:
            self._memory_used -= runtime.spec.memory
            if runtime.spec.runmodel.occupies_slot:
                self._slots_used -= 1

    # -- cancellation / shutdown ---------------------------------------------------
    def cancel_task(self, job: Job, name: str) -> None:
        """Cooperatively cancel: flag the context and close the queue so a
        blocked receive unblocks with ShutdownError."""
        with self._lock:
            hosted = self._hosted.get((job.job_id, name))
        if hosted is None:
            return
        if hosted.context is not None:
            hosted.context.cancelled = True
        if hosted.runtime.queue is not None:
            hosted.runtime.queue.close()

    def hosted_count(self) -> int:
        with self._lock:
            return len(
                [h for h in self._hosted.values() if not h.runtime.state.terminal]
            )

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            hosted = list(self._hosted.values())
        for h in hosted:
            if h.context is not None:
                h.context.cancelled = True
            if h.runtime.queue is not None:
                h.runtime.queue.close()

    def __repr__(self) -> str:
        return (
            f"<TaskManager {self.name!r} mem {self._memory_used}/"
            f"{self.memory_capacity} slots {self._slots_used}/{self.slots}>"
        )
