"""Web-portal prototype (paper Fig. 1, last component).

"Prototype: Web interface to the CN cluster that accepts UML model in
XMI format, translates the model to an executable, executes [the] model
and displays or makes the results available for download."

Two layers:

* :class:`Portal` -- the in-process service: accepts XMI submissions,
  runs the Fig. 6 pipeline against its cluster, and keeps every
  submission's artifacts (CNX, generated client, results) available for
  download.  This is what tests and the second deployment configuration
  ("through a web portal so that the user does not need to log on to the
  subnet") exercise.
* :class:`PortalHTTPServer` -- a thin stdlib ``http.server`` wrapper
  exposing the same operations over HTTP (POST /submit with the XMI
  document as the request body; GET /submissions; GET
  /submission/<id>/<artifact>).
"""

from __future__ import annotations

import io
import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional

from repro.core.transform.pipeline import Pipeline

from ..analysis.conc.runtime import make_lock
from .admission import AdmissionController
from .cluster import Cluster
from .registry import TaskRegistry
from .telemetry import chrome_trace, write_jsonl

__all__ = ["Portal", "Submission", "PortalHTTPServer", "main"]

#: largest request body the HTTP layer will read (anything bigger is
#: refused with 413 before a byte of it is parsed)
MAX_BODY_BYTES = 2 * 1024 * 1024

#: content types accepted on POST /submit.  An absent header and the
#: urllib default (x-www-form-urlencoded) stay accepted for
#: compatibility with existing clients; anything else must look like
#: XML or plain text.
_ACCEPTED_CONTENT_TYPES = (
    "application/x-www-form-urlencoded",
    "application/xml",
    "application/xmi+xml",
    "text/xml",
    "text/plain",
)


@dataclass
class Submission:
    """One accepted XMI submission and everything produced from it."""

    submission_id: int
    #: pending | rejected | done | failed | throttled | saturated
    status: str = "pending"
    #: tenant the submission was accounted to (admission control)
    tenant: str = "anon"
    #: seconds the client should wait before retrying (throttled /
    #: saturated rejections; becomes the HTTP Retry-After header)
    retry_after: float = 0.0
    xmi_text: str = ""
    cnx_text: str = ""
    python_source: str = ""
    java_source: str = ""
    results: list[dict[str, Any]] = field(default_factory=list)
    error: str = ""
    #: static-analysis findings (dicts, see Diagnostic.to_dict); a
    #: submission with error-severity findings is rejected before the
    #: pipeline runs, warnings ride along on accepted submissions
    diagnostics: list[dict[str, Any]] = field(default_factory=list)
    #: chaos faults injected while this submission ran (dicts, see
    #: FaultRecord.to_dict); empty when the cluster has no chaos policy
    fault_events: list[dict[str, Any]] = field(default_factory=list)
    #: manager-failover adoptions recorded in the replicated job journal
    #: while this submission ran (job_id, successor, previous, epoch)
    failover_events: list[dict[str, Any]] = field(default_factory=list)
    #: poison-message quarantines journaled while this submission ran
    #: (job_id, task, serial, digests) -- corrupt frames the transport
    #: checksums caught and dead-lettered instead of delivering
    dead_letter_events: list[dict[str, Any]] = field(default_factory=list)
    #: Chrome trace_event JSON for the jobs this submission ran (load in
    #: chrome://tracing or Perfetto); empty when telemetry is disabled
    timeline: str = ""
    #: the same capture in the JSONL interchange format the
    #: ``python -m repro.telemetry`` CLI consumes
    telemetry_jsonl: str = ""

    def artifacts(self) -> dict[str, str]:
        return {
            "xmi": self.xmi_text,
            "cnx": self.cnx_text,
            "client.py": self.python_source,
            "client.java": self.java_source,
            "diagnostics": json.dumps(self.diagnostics, indent=2),
            "faults": json.dumps(self.fault_events, indent=2),
            "failovers": json.dumps(self.failover_events, indent=2),
            "dead-letters": json.dumps(self.dead_letter_events, indent=2),
            "timeline": self.timeline,
            "telemetry.jsonl": self.telemetry_jsonl,
        }

    def summary(self) -> dict[str, Any]:
        return {
            "id": self.submission_id,
            "status": self.status,
            "tenant": self.tenant,
            "jobs": len(self.results),
            "error": self.error.splitlines()[-1] if self.error else "",
            "diagnostics": len(self.diagnostics),
            "faults": len(self.fault_events),
            "failovers": len(self.failover_events),
            "dead_letters": len(self.dead_letter_events),
        }


class Portal:
    """The in-process portal service."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        *,
        registry: Optional[TaskRegistry] = None,
        transform: str = "xslt",
        timeout: float = 120.0,
        heartbeats: bool = False,
        admission: Optional[AdmissionController] = None,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        self._owns_cluster = cluster is None
        self.cluster = cluster if cluster is not None else Cluster(4, registry=registry)
        self.cluster.start()
        if heartbeats:
            # portal runs cannot call Cluster.tick explicitly; pump the
            # failure-detection loop on a background thread instead
            self.cluster.start_heartbeats()
        self.pipeline = Pipeline(transform=transform)
        self.timeout = timeout
        #: overload protection in front of submit(); None = admit all
        #: (the seed behavior, and what most unit tests want)
        self.admission = admission
        self.max_body_bytes = max_body_bytes
        self._submissions: dict[int, Submission] = {}
        self._counter = 0
        self._lock = make_lock("Portal._lock", reentrant=False)

    # -- operations ----------------------------------------------------------
    def submit(
        self,
        xmi_text: str,
        runtime_args: Optional[Mapping[str, Any]] = None,
        *,
        tenant: str = "anon",
    ) -> Submission:
        """Accept an XMI document, run the pipeline, record everything.

        When an :class:`AdmissionController` is attached, the admission
        decision happens *first* -- before the XMI is parsed or the
        pipeline touched -- so a rejection under overload costs O(1)
        regardless of how congested the cluster is.  Quota rejections
        come back as status ``throttled``, saturation rejections as
        ``saturated``; both carry a ``retry_after`` hint."""
        with self._lock:
            self._counter += 1
            submission = Submission(self._counter, tenant=tenant, xmi_text=xmi_text)
            self._submissions[submission.submission_id] = submission
        admission = self.admission
        admitted = admission is None
        if admission is not None:
            started = time.perf_counter()
            decision = admission.admit(tenant)
            self._note_admission(decision, time.perf_counter() - started)
            if not decision.admitted:
                submission.status = (
                    "saturated"
                    if decision.decision == "reject-saturated"
                    else "throttled"
                )
                submission.retry_after = decision.retry_after
                submission.error = (
                    f"admission: {decision.decision} "
                    f"(saturation={decision.saturation:.2f})"
                )
                return submission
            admitted = True
        try:
            return self._run_submission(submission, runtime_args)
        finally:
            if admission is not None and admitted:
                admission.release(tenant)

    def _note_admission(self, decision, latency: float) -> None:
        telemetry = self.cluster.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.metrics.counter(
            "cn_admission_total", decision=decision.decision
        ).inc()
        telemetry.metrics.histogram("cn_admission_latency_seconds").observe(latency)

    def _run_submission(
        self,
        submission: Submission,
        runtime_args: Optional[Mapping[str, Any]],
    ) -> Submission:
        xmi_text = submission.xmi_text
        chaos = self.cluster.chaos
        faults_before = len(chaos.log_dicts()) if chaos is not None else 0
        adoptions_before = len(self._adoptions())
        dead_letters_before = len(self._dead_letters())
        telemetry = self.cluster.telemetry
        traces_before = (
            set(telemetry.spans.trace_ids())
            if telemetry is not None and telemetry.enabled
            else set()
        )
        try:
            from repro.core.xmi.reader import read_model

            model = read_model(xmi_text)
            report = self._analyze(model)
            submission.diagnostics = report.to_json()
            if not report.ok:
                submission.status = "rejected"
                # one line: the full findings travel as structured
                # diagnostics (payload + downloadable artifact)
                submission.error = f"static analysis: {report.summary()}"
                return submission
            outcome = self.pipeline.run(
                model,
                self.cluster,
                runtime_args=runtime_args,
                timeout=self.timeout,
            )
            submission.cnx_text = outcome.cnx_text
            submission.python_source = outcome.python_source
            submission.java_source = outcome.java_source
            submission.results = outcome.job_results
            submission.status = "done"
            if chaos is not None:
                submission.fault_events = chaos.log_dicts()[faults_before:]
            submission.failover_events = self._adoptions()[adoptions_before:]
            submission.dead_letter_events = self._dead_letters()[dead_letters_before:]
        except Exception:  # noqa: BLE001  # conclint: waive CC302 -- submission failures of any kind become the artifact's error field
            submission.status = "failed"
            submission.error = traceback.format_exc()
            if chaos is not None:
                submission.fault_events = chaos.log_dicts()[faults_before:]
            submission.failover_events = self._adoptions()[adoptions_before:]
            submission.dead_letter_events = self._dead_letters()[dead_letters_before:]
        finally:
            self._capture_timeline(submission, telemetry, traces_before)
        return submission

    def _capture_timeline(
        self, submission: Submission, telemetry: Any, traces_before: set
    ) -> None:
        """Snapshot the spans of the traces this submission created into
        its timeline artifacts (partial runs included -- a failed
        submission's timeline is exactly what you want to look at)."""
        if telemetry is None or not telemetry.enabled:
            return
        new_traces = [
            tid for tid in telemetry.spans.trace_ids() if tid not in traces_before
        ]
        if not new_traces:
            return
        spans = [span for tid in new_traces for span in telemetry.spans.spans(tid)]
        submission.timeline = json.dumps(chrome_trace(spans), indent=1)
        buffer = io.StringIO()
        write_jsonl(buffer, spans=spans)
        submission.telemetry_jsonl = buffer.getvalue()

    def metrics_text(self) -> str:
        """The cluster's metrics in Prometheus text format (empty when
        telemetry is disabled) -- the body of ``GET /metrics``."""
        telemetry = self.cluster.telemetry
        if telemetry is None or not telemetry.enabled:
            return ""
        return telemetry.prometheus_text()

    def _adoptions(self) -> list[dict[str, Any]]:
        """All manager-failover adoptions visible in the cluster's
        replicated journals, deduped (every live node holds a replica of
        each record) and ordered by (job, epoch)."""
        seen: dict[tuple[str, int], dict[str, Any]] = {}
        for server in self.cluster.servers:
            journal = getattr(server, "journal", None)
            if journal is None:
                continue
            for record in journal.records():
                if record.kind != "job-adopted":
                    continue
                seen.setdefault(
                    (record.job_id, record.mepoch),
                    {
                        "job_id": record.job_id,
                        "manager": record.data.get("manager"),
                        "previous": record.data.get("previous"),
                        "manager_epoch": record.mepoch,
                    },
                )
        return [seen[key] for key in sorted(seen)]

    def _dead_letters(self) -> list[dict[str, Any]]:
        """All poison-message quarantines visible in the cluster's
        replicated journals, deduped (each record replicates to every
        live node) and ordered by (job, task, serial)."""
        seen: dict[tuple[str, str, int], dict[str, Any]] = {}
        for server in self.cluster.servers:
            journal = getattr(server, "journal", None)
            if journal is None:
                continue
            for record in journal.records():
                if record.kind != "dead-letter":
                    continue
                data = record.data
                key = (
                    record.job_id,
                    str(data.get("task", "")),
                    int(data.get("serial", 0)),
                )
                seen.setdefault(key, {"job_id": record.job_id, **data})
        return [seen[key] for key in sorted(seen)]

    def _analyze(self, model):
        """Run the static analyzer over the model before the pipeline,
        with placement and archive-resolution context from the portal's
        own cluster."""
        from repro.analysis import AnalysisContext, ClusterSpec, analyze_model

        managers = [s.taskmanager for s in self.cluster.servers]
        spec = ClusterSpec(
            nodes=len(managers),
            memory_per_node=min(tm.memory_capacity for tm in managers),
            slots_per_node=min(tm.slots for tm in managers),
        )

        def resolves(jar: str, cls: str) -> bool:
            try:
                self.cluster.registry.resolve(jar, cls)
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- resolution executes arbitrary archive code; any failure means unresolvable
                return False
            return True

        return analyze_model(
            model, AnalysisContext(cluster=spec, task_resolver=resolves)
        )

    def get(self, submission_id: int) -> Submission:
        with self._lock:
            try:
                return self._submissions[submission_id]
            except KeyError:
                raise KeyError(f"no submission {submission_id}") from None

    def list(self) -> list[dict[str, Any]]:
        with self._lock:
            return [s.summary() for s in self._submissions.values()]

    def close(self) -> None:
        if self._owns_cluster:
            self.cluster.shutdown()


class _Handler(BaseHTTPRequestHandler):
    portal: Portal  # set by PortalHTTPServer

    def log_message(self, format: str, *args: Any) -> None:  # silence stdout
        pass

    def _send(self, code: int, body: bytes, content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, payload: Any) -> None:
        self._send(code, json.dumps(payload, default=str).encode())

    def do_GET(self) -> None:
        parts = [p for p in self.path.split("/") if p]
        if not parts:
            self._send(
                200,
                b"<html><body><h1>CN Portal</h1>"
                b"<p>POST an XMI document to /submit; list via /submissions; "
                b"fetch artifacts via /submission/&lt;id&gt;/&lt;artifact&gt;.</p>"
                b"</body></html>",
                "text/html",
            )
            return
        if parts == ["submissions"]:
            self._json(200, self.portal.list())
            return
        if parts == ["metrics"]:
            self._send(
                200,
                self.portal.metrics_text().encode(),
                "text/plain; version=0.0.4",
            )
            return
        if len(parts) >= 2 and parts[0] == "submission":
            try:
                submission = self.portal.get(int(parts[1]))
            except (KeyError, ValueError):
                self._json(404, {"error": "no such submission"})
                return
            if len(parts) == 2:
                self._json(
                    200, {**submission.summary(), "results": submission.results}
                )
                return
            artifact = submission.artifacts().get(parts[2])
            if artifact is None:
                self._json(404, {"error": f"no artifact {parts[2]!r}"})
                return
            self._send(200, artifact.encode(), "text/plain")
            return
        self._json(404, {"error": "unknown path"})

    def do_POST(self) -> None:
        if self.path.rstrip("/") != "/submit":
            self._json(404, {"error": "POST /submit only"})
            return
        length = int(self.headers.get("Content-Length", "0"))
        if length > self.portal.max_body_bytes:
            # refuse before reading: an oversized body never enters memory
            self._json(
                413,
                {
                    "error": "request body too large",
                    "limit_bytes": self.portal.max_body_bytes,
                },
            )
            return
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if content_type and content_type.lower() not in _ACCEPTED_CONTENT_TYPES:
            self._json(
                415,
                {
                    "error": f"unsupported content type {content_type!r}",
                    "accepted": list(_ACCEPTED_CONTENT_TYPES),
                },
            )
            return
        body = self.rfile.read(length).decode()
        runtime_args = {}
        args_header = self.headers.get("X-Runtime-Args")
        if args_header:
            runtime_args = json.loads(args_header)
        tenant = self.headers.get("X-Tenant") or "anon"
        submission = self.portal.submit(body, runtime_args, tenant=tenant)
        codes = {"done": 200, "rejected": 422, "throttled": 429, "saturated": 503}
        code = codes.get(submission.status, 500)
        payload = {
            **submission.summary(),
            "results": submission.results,
            "findings": submission.diagnostics,
        }
        body_bytes = json.dumps(payload, default=str).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body_bytes)))
        if submission.retry_after > 0:
            # standard backoff hint for 429/503 (whole seconds, min 1)
            self.send_header("Retry-After", str(max(1, int(submission.retry_after + 0.999))))
        self.end_headers()
        self.wfile.write(body_bytes)


class PortalHTTPServer:
    """Serve a :class:`Portal` over HTTP on a background thread."""

    def __init__(self, portal: Portal, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"portal": portal})
        self.portal = portal
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, name="cn-portal", daemon=True
        )

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    def start(self) -> "PortalHTTPServer":
        self.thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


def main(argv: Optional[list[str]] = None) -> int:
    """Console entry point: run a portal over a fresh 4-node cluster."""
    import argparse

    parser = argparse.ArgumentParser(description="CN web portal prototype")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5666)
    parser.add_argument("--nodes", type=int, default=4)
    options = parser.parse_args(argv)
    from repro.apps.floyd import register_floyd_tasks
    from repro.apps.montecarlo import register_pi_tasks
    from repro.apps.wordcount import register_wordcount_tasks

    registry = TaskRegistry()
    register_floyd_tasks(registry)
    register_pi_tasks(registry)
    register_wordcount_tasks(registry)
    portal = Portal(Cluster(options.nodes, registry=registry))
    server = PortalHTTPServer(portal, options.host, options.port).start()
    host, port = server.address
    print(f"CN portal listening on http://{host}:{port}/")
    try:
        server.thread.join()
    except KeyboardInterrupt:
        server.stop()
        portal.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
