"""Rule-based bidding scheduler: decentralized, locality-aware placement.

The paper's protocol solicits every node once *per task*; placement cost
is O(tasks x nodes) bus deliveries and the JobManager serializes the
whole exchange. This module implements the alternative borrowed from
PYME's rule-based ActionManager: the JobManager publishes one compact
:class:`PlacementRule` describing a *batch* of homogeneous tasks, every
node locally scores the rule against its own capability, free memory,
load, and data locality (archive cache + already-hosted producers) and
answers with a single :class:`Bid`, and the manager converts bids into
awards with the pure, deterministic :func:`award_bids` fold.

The paper's protocol is preserved as the degenerate 1-task rule: a rule
with one task and ``seed=0`` awards to exactly the node the solicit
scheduler would have picked (most free memory, then name).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["PlacementRule", "Bid", "award_bids"]


@dataclass(frozen=True)
class PlacementRule:
    """A compact description of a batch of homogeneous tasks to place.

    One rule replaces ``len(tasks)`` per-task solicitations: the only
    things that cross the bus are the template (requirements shared by
    every task in the batch) and the task names themselves.
    """

    rule_id: str
    job_id: str
    manager: str
    jar: str
    cls: str
    memory: int
    runmodel: str
    tasks: Tuple[str, ...]
    depends: Tuple[str, ...] = ()
    manager_epoch: int = 0

    @property
    def count(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class Bid:
    """A node's answer to a rule: how much it can take and how well.

    ``capacity`` is the number of tasks from the rule the node could
    host right now; ``free_memory``/``load`` describe its current
    occupancy; ``locality`` counts O(1) "do I have this?" hits (archive
    cache, already-hosted upstream tasks of the same job).
    """

    taskmanager: str
    capacity: int
    free_memory: int
    load: int = 0
    locality: int = 0

    @property
    def score(self) -> float:
        """Scalar summary for telemetry/debugging (not used to award)."""
        return self.free_memory + 1000.0 * self.locality - 100.0 * self.load


def award_bids(
    rule: PlacementRule,
    bids: Iterable[Bid],
    *,
    seed: int = 0,
) -> Tuple[List[Tuple[str, str]], List[str]]:
    """Deterministically convert bids into awards.

    Returns ``(awards, unplaced)`` where ``awards`` is a list of
    ``(task_name, taskmanager)`` pairs and ``unplaced`` lists tasks no
    bidder could take. The fold is pure: given the same ``(rule, bids,
    seed)`` it returns the same awards regardless of bid arrival order
    (bids are canonicalized by taskmanager name first).

    Award order mirrors the paper's best-fit: highest *virtual* free
    memory wins (free memory minus memory already awarded this round),
    locality breaks ties, then lowest load, then name rank. With a
    single 1-task rule and ``seed=0`` this degenerates to the solicit
    scheduler's ``(-free_memory, name)`` choice exactly.
    """
    # Canonicalize: dedupe by taskmanager (best bid wins), drop useless
    # bids, and order by name so arrival order cannot matter.
    best: dict[str, Bid] = {}
    for bid in bids:
        if bid.capacity <= 0:
            continue
        if rule.memory > 0 and bid.free_memory < rule.memory:
            continue
        prev = best.get(bid.taskmanager)
        # Compare every field so duplicate bids from one node dedupe
        # identically regardless of arrival order (equal keys mean the
        # bids are interchangeable).
        if prev is None or (
            bid.free_memory,
            bid.locality,
            bid.capacity,
            -bid.load,
        ) > (prev.free_memory, prev.locality, prev.capacity, -prev.load):
            best[bid.taskmanager] = bid
    order = sorted(best)
    if not order:
        return [], list(rule.tasks)
    # A nonzero seed rotates name-rank tie-breaking so repeated rounds
    # don't always dogpile the alphabetically-first node.
    if seed:
        pivot = seed % len(order)
        order = order[pivot:] + order[:pivot]

    # Heap of (-virtual_free_memory, -locality, load + taken, rank).
    # Each pop awards one task and re-pushes the node with its virtual
    # occupancy updated, so a batch spreads exactly like the per-task
    # solicit loop would have (free memory shrinks as awards land).
    heap: list[tuple[int, int, int, int]] = []
    state: dict[int, tuple[Bid, int]] = {}  # rank -> (bid, taken)
    for rank, name in enumerate(order):
        bid = best[name]
        state[rank] = (bid, 0)
        heapq.heappush(heap, (-bid.free_memory, -bid.locality, bid.load, rank))

    awards: List[Tuple[str, str]] = []
    unplaced: List[str] = []
    for task in rule.tasks:
        placed = False
        while heap:
            neg_vmem, neg_loc, load, rank = heap[0]
            bid, taken = state[rank]
            vmem = -neg_vmem
            if taken >= bid.capacity or (rule.memory > 0 and vmem < rule.memory):
                heapq.heappop(heap)
                continue
            heapq.heapreplace(
                heap,
                (-(vmem - rule.memory), neg_loc, load + 1, rank),
            )
            state[rank] = (bid, taken + 1)
            awards.append((task, bid.taskmanager))
            placed = True
            break
        if not placed:
            unplaced.append(task)
    return awards, unplaced
