"""Jobs and task runtime state.

"A Job is defined as a collection of Task objects" (paper section 3).
:class:`TaskSpec` is the immutable description derived from a CNX
``<task>``; :class:`TaskRuntime` tracks one (possibly dynamic-expanded)
task instance through its lifecycle; :class:`Job` owns the roster, the
job-wide tuple space, the client message queue, and the message router
connecting them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional, Sequence

import pickle

from ..core.cnx.schema import CnxTask
from .errors import (
    JobError,
    JobTimeoutError,
    ShutdownError,
    TaskFailedError,
    UnknownTaskError,
)
from .messages import Message, MessageType
from .queues import MessageQueue
from .runmodel import RunModel
from .tuplespace import TupleSpace

__all__ = ["TaskSpec", "TaskState", "TaskRuntime", "Job"]


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one task instance."""

    name: str
    jar: str
    cls: str
    depends: tuple[str, ...] = ()
    memory: int = 1000
    runmodel: RunModel = RunModel.RUN_AS_THREAD_IN_TM
    params: tuple = ()
    max_retries: int = 0
    #: per-task deadline in virtual seconds (advanced by Cluster.tick);
    #: None disables the watchdog for this task
    deadline: Optional[float] = None

    @classmethod
    def from_cnx(cls, task: CnxTask) -> "TaskSpec":
        """Build a spec from a CNX task element (dynamic expansion is the
        caller's concern; see :meth:`expand_dynamic`)."""
        return cls(
            name=task.name,
            jar=task.jar,
            cls=task.cls,
            depends=tuple(task.depends),
            memory=task.task_req.memory,
            runmodel=RunModel.parse(task.task_req.runmodel),
            params=tuple(task.param_values()),
            max_retries=task.task_req.retries,
        )

    def with_instance(self, index: int, params: Sequence[Any]) -> "TaskSpec":
        """A concrete instance of a dynamic task: indexed name, given args."""
        return replace(self, name=f"{self.name}{index}", params=tuple(params))


class TaskState(str, Enum):
    PENDING = "PENDING"      # spec known, not yet placed
    CREATED = "CREATED"      # placed on a TaskManager, queue exists
    RUNNING = "RUNNING"
    RETRYING = "RETRYING"    # failed with retry budget left; being re-placed
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELLED)


class TaskRuntime:
    """Mutable lifecycle record for one task instance."""

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.state = TaskState.PENDING
        self.node_name: Optional[str] = None
        self.result: Any = None
        self.error: Optional[str] = None
        self.queue: Optional[MessageQueue] = None
        self.attempts = 0  # runs started so far (completed, failed, or fenced)
        #: placement generation: bumped every time the task is (re)hosted.
        #: A run whose hosting epoch no longer matches is a zombie (its
        #: node crashed or it was re-placed) and its outcome is discarded.
        self.epoch = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"<TaskRuntime {self.name!r} {self.state.value}>"


class Job:
    """A job instance living in a JobManager.

    The job is also the message router for its tasks: the paper's
    JobManager is "a conduit between the client CN application and the
    Job", and intertask/user traffic flows through the same conduit.
    """

    def __init__(self, job_id: str, client_name: str) -> None:
        self.job_id = job_id
        self.client_name = client_name
        self.tasks: dict[str, TaskRuntime] = {}
        self.task_order: list[str] = []
        self.tuple_space = TupleSpace()
        self.client_queue = MessageQueue(owner=f"{job_id}/client")
        self._lock = threading.RLock()
        # completion is a condition variable, not a polled flag: waiters
        # (api.CNAPI.wait) block until notified, and a failover re-bind
        # wakes them too so they can re-resolve the successor's Job
        self._cond = threading.Condition(self._lock)
        self._finished_flag = False
        self._rebound = False
        self.failed: Optional[TaskFailedError] = None
        #: cluster Telemetry hub (None or disabled = zero instrumentation)
        self.telemetry: Optional[Any] = None
        self._m_routed: Optional[Any] = None
        self._m_payload: Optional[Any] = None
        # communication accounting (simulated wire volume): counts every
        # routed message and estimates its payload size -- the observable
        # the paper's row-k broadcast analysis (section 2) predicts
        self.messages_routed = 0
        self.payload_bytes = 0
        #: messages re-delivered into fresh queues after a re-placement
        #: (not part of the paper's wire-volume accounting)
        self.messages_replayed = 0
        # per-task delivery ledger: everything ever routed to each task,
        # replayed into the fresh queue when a task is re-placed after a
        # crash so restarted attempts see the full message history
        self._delivery_log: dict[str, list[Message]] = {}
        #: manager epoch: bumped when a successor JobManager adopts this
        #: job after a failover; stamps every journal record so a zombie
        #: manager's late writes are fenced out (see repro.cn.durability)
        self.manager_epoch = 1
        # write-ahead journal hook, set by the managing JobManager:
        # (kind, data) -> None.  None when the cluster runs non-durable.
        self._journal: Optional[Any] = None
        # application-level task checkpoints (task -> (tag, state)),
        # populated through TaskContext.checkpoint and restored from the
        # journal on adoption
        self._checkpoints: dict[str, tuple[Any, Any]] = {}

    # -- telemetry ---------------------------------------------------------------
    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Attach the cluster Telemetry hub; binds hot-path metrics once
        so :meth:`route` pays one attribute test when telemetry is off
        and two bound-method calls when it is on."""
        if telemetry is None or not telemetry.enabled:
            self.telemetry = None
            self._m_routed = None
            self._m_payload = None
            return
        self.telemetry = telemetry
        self._m_routed = telemetry.metrics.counter(
            "cn_messages_routed_total", job=self.job_id
        )
        from .telemetry.metrics import BYTES_BUCKETS

        self._m_payload = telemetry.metrics.histogram(
            "cn_payload_bytes", buckets=BYTES_BUCKETS
        )

    # -- durability ----------------------------------------------------------------
    def set_journal(self, hook: Optional[Any]) -> None:
        """Attach the write-ahead journal hook ``(kind, data) -> None``."""
        self._journal = hook

    def journal_event(self, kind: str, data: dict) -> None:
        """Append one record to the job journal (no-op when non-durable)."""
        hook = self._journal
        if hook is not None:
            hook(kind, data)

    def save_checkpoint(self, task: str, state: Any, tag: Any = None) -> None:
        """Persist an application checkpoint for *task* through the
        journal; a later attempt (same or successor manager) restores it
        via :meth:`load_checkpoint`."""
        with self._lock:
            self._checkpoints[task] = (tag, state)
        self.journal_event("checkpoint", {"task": task, "tag": tag, "state": state})

    def load_checkpoint(self, task: str) -> Optional[tuple[Any, Any]]:
        """The latest ``(tag, state)`` checkpoint for *task*, or None."""
        with self._lock:
            return self._checkpoints.get(task)

    def restore_checkpoints(self, checkpoints: dict[str, tuple[Any, Any]]) -> None:
        """Seed the checkpoint store from a journal replay (adoption)."""
        with self._lock:
            self._checkpoints.update(checkpoints)

    def restore_deliveries(self, deliveries: dict[str, list[Message]]) -> None:
        """Seed the delivery ledger from a journal replay (adoption)."""
        with self._lock:
            for task, messages in deliveries.items():
                self._delivery_log.setdefault(task, []).extend(messages)

    # -- roster ----------------------------------------------------------------
    def add_task(self, spec: TaskSpec) -> TaskRuntime:
        with self._lock:
            if spec.name in self.tasks:
                raise JobError(f"job {self.job_id}: duplicate task {spec.name!r}")
            runtime = TaskRuntime(spec)
            self.tasks[spec.name] = runtime
            self.task_order.append(spec.name)
            return runtime

    def task(self, name: str) -> TaskRuntime:
        try:
            return self.tasks[name]
        except KeyError:
            raise UnknownTaskError(f"job {self.job_id}: no task {name!r}") from None

    def task_names(self) -> list[str]:
        return list(self.task_order)

    # -- dependency queries --------------------------------------------------------
    def ready_tasks(self) -> list[TaskRuntime]:
        """CREATED tasks whose dependencies have all completed."""
        with self._lock:
            ready = []
            for name in self.task_order:
                runtime = self.tasks[name]
                if runtime.state is not TaskState.CREATED:
                    continue
                if all(
                    self.tasks[d].state is TaskState.COMPLETED
                    for d in runtime.spec.depends
                ):
                    ready.append(runtime)
            return ready

    def dependents_of(self, name: str) -> list[TaskRuntime]:
        return [
            self.tasks[t]
            for t in self.task_order
            if name in self.tasks[t].spec.depends
        ]

    # -- routing ----------------------------------------------------------------
    def _account(self, message: Message) -> None:
        try:
            size = len(pickle.dumps(message.payload, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            size = 0  # unpicklable payloads are possible in-process; skip
        with self._lock:
            self.messages_routed += 1
            self.payload_bytes += size
        if self._m_routed is not None:
            self._m_routed.inc()
            self._m_payload.observe(size)

    def route(self, message: Message) -> None:
        """Deliver *message* to a task queue or the client queue.

        Task-bound messages are recorded in the per-task delivery ledger
        first, so a recipient whose hosting just died (closed queue) does
        not crash the *sender*: the message is kept and replayed into the
        fresh queue once the task is re-placed (see :meth:`replay_into`).
        Delivery to tasks is therefore at-least-once across attempts --
        a restarted attempt may see messages its predecessor already
        consumed, and consumers must tolerate duplicates.
        """
        if self.telemetry is not None and message.trace_ctx is None:
            # stamp the job's causal context on unattributed messages so
            # downstream consumers can always walk back to a span; replace()
            # re-uses the existing serial/ts (no logical-clock disturbance)
            message = replace(message, trace_ctx=(self.job_id, "job"))
        self._account(message)
        if message.recipient == "client":
            self.client_queue.put(message)
            return
        runtime = self.task(message.recipient)
        if runtime.queue is None:
            raise UnknownTaskError(
                f"task {message.recipient!r} has no queue yet (state "
                f"{runtime.state.value})"
            )
        with self._lock:
            self._delivery_log.setdefault(message.recipient, []).append(message)
        # write-ahead: the ledger entry is journaled (and replicated to
        # peer managers) before the queue delivery, so a successor's
        # replay sees every message a restarted attempt may need
        self.journal_event("delivery", {"message": message})
        try:
            runtime.queue.put(message)
        except ShutdownError:
            # recipient's queue closed mid-delivery (node crash, deadline
            # cancel): the ledger keeps the message for replay
            pass

    def replay_into(self, name: str) -> int:
        """Re-deliver every logged message for *name* into its (fresh)
        queue; used by the JobManager after re-placing a crashed task.
        Returns the number of messages replayed."""
        runtime = self.task(name)
        queue = runtime.queue
        if queue is None:
            return 0
        with self._lock:
            pending = list(self._delivery_log.get(name, ()))
        delivered = 0
        for message in pending:
            try:
                queue.put(message)
            except ShutdownError:
                break
            delivered += 1
        with self._lock:
            self.messages_replayed += delivered
        return delivered

    # -- completion ---------------------------------------------------------------
    def note_terminal(self, name: str) -> None:
        """Called by the TaskManager when a task reaches a terminal state;
        flips the job-finished condition when the roster is done."""
        finished = False
        with self._lock:
            runtime = self.tasks[name]
            if runtime.state is TaskState.FAILED and self.failed is None:
                self.failed = TaskFailedError(name, runtime.error or "unknown")
            # fail fast: a failure finishes the job even with tasks pending
            if self.failed is not None or all(
                t.state.terminal for t in self.tasks.values()
            ):
                self._finished_flag = True
                finished = True
                self._cond.notify_all()
            state = runtime.state.value
        if self.telemetry is not None:
            task_span = self.telemetry.spans.get(self.job_id, f"task:{name}")
            if task_span is not None:
                self.telemetry.spans.end(task_span, state=state)
            if finished:
                span = self.telemetry.spans.get(self.job_id, "job")
                if span is not None:
                    self.telemetry.spans.end(span, failed=self.failed is not None)

    def mark_rebound(self) -> None:
        """Wake waiters because a successor manager re-bound this job id
        to a fresh :class:`Job`; blocked clients must re-resolve instead
        of waiting on an object that will never finish."""
        with self._lock:
            self._rebound = True
            self._cond.notify_all()

    def wait_or_rebind(self, timeout: Optional[float] = None) -> str:
        """Block until this job finishes or is re-bound elsewhere.

        Returns ``"finished"``, ``"rebound"`` (a failover replaced this
        object; re-resolve through the directory), or ``"timeout"``.
        Unlike :meth:`wait` this never raises -- it is the api layer's
        low-level wake primitive.
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._finished_flag or self._rebound, timeout
            )
            if self._finished_flag:
                return "finished"
            return "rebound" if self._rebound else "timeout"

    def wait(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until every task is terminal (or one fails).  Returns the
        result map; raises the first :class:`TaskFailedError` on failure.
        On timeout raises :class:`JobTimeoutError` carrying the per-task
        states, so "still running" is distinguishable from "wedged"."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._finished_flag, timeout):
                raise JobTimeoutError(self.job_id, timeout, self.states())
        if self.failed is not None:
            raise self.failed
        return self.results()

    @property
    def finished(self) -> bool:
        with self._lock:
            return self._finished_flag

    def results(self) -> dict[str, Any]:
        return {
            name: runtime.result
            for name, runtime in self.tasks.items()
            if runtime.state is TaskState.COMPLETED
        }

    def states(self) -> dict[str, str]:
        return {name: runtime.state.value for name, runtime in self.tasks.items()}

    def __repr__(self) -> str:
        return f"<Job {self.job_id!r} tasks={len(self.tasks)}>"
