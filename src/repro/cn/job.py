"""Jobs and task runtime state.

"A Job is defined as a collection of Task objects" (paper section 3).
:class:`TaskSpec` is the immutable description derived from a CNX
``<task>``; :class:`TaskRuntime` tracks one (possibly dynamic-expanded)
task instance through its lifecycle; :class:`Job` owns the roster, the
job-wide tuple space, the client message queue, and the message router
connecting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional, Sequence

import pickle

from ..analysis.conc.runtime import make_condition, make_lock
from ..core.cnx.schema import CnxTask
from .errors import (
    JobError,
    JobTimeoutError,
    Overloaded,
    ShutdownError,
    TaskFailedError,
    UnknownTaskError,
)
from .messages import Message, MessageType, payload_digest
from .queues import MessageQueue
from .runmodel import RunModel
from .tuplespace import TupleSpace

__all__ = ["TaskSpec", "TaskState", "TaskRuntime", "Job", "payload_nbytes"]

#: recursion guard for :func:`payload_nbytes` on nested containers
_SIZE_DEPTH_LIMIT = 12

#: how many times a poisoned serial may be re-offered from the ledger
#: before the job gives up on live redelivery (the ledger still holds
#: the message for attempt-level replay); bounds the corrupt-redeliver
#: loop a corrupt_rate=1.0 link would otherwise spin forever
_POISON_REOFFER_LIMIT = 3


def payload_nbytes(payload: Any, _depth: int = 0) -> Optional[int]:
    """Estimate a payload's wire size without serializing it.

    The data plane's accounting only needs a size *estimate*; paying a
    full ``pickle.dumps`` per routed message is the dominant CPU cost of
    a broadcast round.  This fast path covers the payload shapes the CN
    applications actually send -- buffers (``len``), numpy blocks
    (``.nbytes``), scalars, and containers of those -- and returns None
    for anything it cannot size, in which case the caller falls back to
    pickling.
    """
    if payload is None:
        return 1
    t = type(payload)
    if t is bool:
        return 1
    if t is int or t is float or t is complex:
        return 8
    if t is str or t is bytes or t is bytearray:
        return len(payload)
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes  # numpy arrays/scalars, memoryview
    if _depth >= _SIZE_DEPTH_LIMIT:
        return None
    if t is tuple or t is list or t is set or t is frozenset:
        total = 8
        for item in payload:
            size = payload_nbytes(item, _depth + 1)
            if size is None:
                return None
            total += size + 8
        return total
    if t is dict:
        total = 8
        for key, value in payload.items():
            key_size = payload_nbytes(key, _depth + 1)
            value_size = payload_nbytes(value, _depth + 1)
            if key_size is None or value_size is None:
                return None
            total += key_size + value_size + 16
        return total
    return None


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one task instance."""

    name: str
    jar: str
    cls: str
    depends: tuple[str, ...] = ()
    memory: int = 1000
    runmodel: RunModel = RunModel.RUN_AS_THREAD_IN_TM
    params: tuple = ()
    max_retries: int = 0
    #: per-task deadline in virtual seconds (advanced by Cluster.tick);
    #: None disables the watchdog for this task
    deadline: Optional[float] = None

    @classmethod
    def from_cnx(cls, task: CnxTask) -> "TaskSpec":
        """Build a spec from a CNX task element (dynamic expansion is the
        caller's concern; see :meth:`expand_dynamic`)."""
        return cls(
            name=task.name,
            jar=task.jar,
            cls=task.cls,
            depends=tuple(task.depends),
            memory=task.task_req.memory,
            runmodel=RunModel.parse(task.task_req.runmodel),
            params=tuple(task.param_values()),
            max_retries=task.task_req.retries,
        )

    def with_instance(self, index: int, params: Sequence[Any]) -> "TaskSpec":
        """A concrete instance of a dynamic task: indexed name, given args."""
        return replace(self, name=f"{self.name}{index}", params=tuple(params))


class TaskState(str, Enum):
    PENDING = "PENDING"      # spec known, not yet placed
    CREATED = "CREATED"      # placed on a TaskManager, queue exists
    RUNNING = "RUNNING"
    RETRYING = "RETRYING"    # failed with retry budget left; being re-placed
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELLED)


class TaskRuntime:
    """Mutable lifecycle record for one task instance."""

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.state = TaskState.PENDING
        self.node_name: Optional[str] = None
        self.result: Any = None
        self.error: Optional[str] = None
        self.queue: Optional[MessageQueue] = None
        self.attempts = 0  # runs started so far (completed, failed, or fenced)
        #: placement generation: bumped every time the task is (re)hosted.
        #: A run whose hosting epoch no longer matches is a zombie (its
        #: node crashed or it was re-placed) and its outcome is discarded.
        self.epoch = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"<TaskRuntime {self.name!r} {self.state.value}>"


class Job:
    """A job instance living in a JobManager.

    The job is also the message router for its tasks: the paper's
    JobManager is "a conduit between the client CN application and the
    Job", and intertask/user traffic flows through the same conduit.
    """

    def __init__(self, job_id: str, client_name: str) -> None:
        self.job_id = job_id
        self.client_name = client_name
        self.tasks: dict[str, TaskRuntime] = {}
        self.task_order: list[str] = []
        self.tuple_space = TupleSpace()
        self.client_queue = MessageQueue(owner=f"{job_id}/client")
        self._lock = make_lock("Job._lock")
        # completion is a condition variable, not a polled flag: waiters
        # (api.CNAPI.wait) block until notified, and a failover re-bind
        # wakes them too so they can re-resolve the successor's Job
        self._cond = make_condition("Job._lock", self._lock)
        self._finished_flag = False
        self._rebound = False
        self.failed: Optional[TaskFailedError] = None
        #: absolute end-to-end deadline on the cluster clock (None = no
        #: budget).  The router stamps it on every outbound message and
        #: TaskManagers derive the per-task watchdog from what remains.
        self.deadline: Optional[float] = None
        #: cluster Telemetry hub (None or disabled = zero instrumentation)
        self.telemetry: Optional[Any] = None
        self._m_routed: Optional[Any] = None
        self._m_payload: Optional[Any] = None
        self._m_unsized: Optional[Any] = None
        # communication accounting (simulated wire volume): counts every
        # routed message and estimates its payload size -- the observable
        # the paper's row-k broadcast analysis (section 2) predicts
        self.messages_routed = 0
        self.payload_bytes = 0
        #: size computations actually performed (one per *unique* payload
        #: per fan-out -- interning makes a W-1 broadcast cost 1)
        self.payload_sizings = 0
        #: sizings avoided because the payload object was already sized
        #: within the same fan-out (shared-by-reference broadcast payloads)
        self.payload_reuses = 0
        #: sizings that had to fall back to pickling (no fast-size path)
        self.payloads_pickle_sized = 0
        #: payloads that could not be sized at all (unpicklable); their
        #: wire volume is lost from the accounting, so it is counted
        self.payloads_unsized = 0
        #: messages re-delivered into fresh queues after a re-placement
        #: (not part of the paper's wire-volume accounting)
        self.messages_replayed = 0
        #: messages evicted from bounded task queues under backpressure
        #: (each one is journaled as a ``shed`` record; see note_shed)
        self.messages_shed = 0
        #: whether the router seals outbound messages with a CRC digest
        #: (set from the owning JobManager; see note_poison)
        self.checksums = False
        #: frames quarantined by dequeue-time digest verification
        self.messages_poisoned = 0
        #: per-job dead-letter records, one per quarantined frame
        #: (journaled as ``dead-letter`` so they survive replay_job)
        self.dead_letters: list[dict] = []
        # re-offer budget per poisoned serial (see _POISON_REOFFER_LIMIT)
        self._poison_reoffers: dict[int, int] = {}
        # per-task delivery ledger: everything ever routed to each task,
        # replayed into the fresh queue when a task is re-placed after a
        # crash so restarted attempts see the full message history.
        # Entries for a task are truncated (GC'd) once the task reaches a
        # terminal state at its current epoch -- terminal tasks are never
        # re-placed, so their history can never be replayed again.
        self._delivery_log: dict[str, list[Message]] = {}
        #: cumulative count of ledger entries truncated per task (the GC
        #: watermark journaled so successor managers agree)
        self._gc_watermarks: dict[str, int] = {}
        # ledger occupancy accounting (resident = entries currently held;
        # peak = high-watermark; truncated = total entries GC'd)
        self.ledger_resident = 0
        self.ledger_peak = 0
        self.ledger_truncated = 0
        # optional journal group-commit: when > 0, delivery records are
        # buffered and flushed as one delivery_batch append per at most
        # `_delivery_batching` messages (and on task-terminal, checkpoint,
        # and tick barriers).  0 = write-ahead per fan-out (default).
        self._delivery_batching = 0
        self._pending_journal_deliveries: list[Message] = []
        #: manager epoch: bumped when a successor JobManager adopts this
        #: job after a failover; stamps every journal record so a zombie
        #: manager's late writes are fenced out (see repro.cn.durability)
        self.manager_epoch = 1
        # write-ahead journal hook, set by the managing JobManager:
        # (kind, data) -> None.  None when the cluster runs non-durable.
        self._journal: Optional[Any] = None
        # application-level task checkpoints (task -> (tag, state)),
        # populated through TaskContext.checkpoint and restored from the
        # journal on adoption
        self._checkpoints: dict[str, tuple[Any, Any]] = {}

    # -- telemetry ---------------------------------------------------------------
    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Attach the cluster Telemetry hub; binds hot-path metrics once
        so :meth:`route` pays one attribute test when telemetry is off
        and two bound-method calls when it is on."""
        if telemetry is None or not telemetry.enabled:
            self.telemetry = None
            self._m_routed = None
            self._m_payload = None
            self._m_unsized = None
            return
        self.telemetry = telemetry
        self._m_routed = telemetry.metrics.counter(
            "cn_messages_routed_total", job=self.job_id
        )
        self._m_unsized = telemetry.metrics.counter("cn_payload_unsized_total")
        from .telemetry.metrics import BYTES_BUCKETS

        self._m_payload = telemetry.metrics.histogram(
            "cn_payload_bytes", buckets=BYTES_BUCKETS
        )

    # -- durability ----------------------------------------------------------------
    def set_journal(self, hook: Optional[Any]) -> None:
        """Attach the write-ahead journal hook ``(kind, data) -> None``."""
        self._journal = hook

    def journal_event(self, kind: str, data: dict) -> None:
        """Append one record to the job journal (no-op when non-durable).

        Any non-delivery record first flushes the group-commit delivery
        buffer, so the journal never shows a state transition (terminal
        outcome, checkpoint, job-finished) *before* the deliveries that
        causally preceded it -- the write-ahead ordering replay relies on.
        """
        hook = self._journal
        if hook is None:
            return
        if kind not in ("delivery", "delivery_batch"):
            self.flush_deliveries()
        hook(kind, data)

    def set_delivery_batching(self, max_pending: int) -> None:
        """Enable journal group-commit: buffer up to *max_pending* ledger
        entries and append them as one ``delivery_batch`` record instead
        of journaling per fan-out.  The buffer is flushed by any
        non-delivery journal event (task-terminal, checkpoint,
        job-finished) and by the cluster tick barrier, bounding the
        durability window.  ``0`` restores write-ahead per fan-out."""
        flush = False
        with self._lock:
            self._delivery_batching = max(0, int(max_pending))
            flush = self._delivery_batching == 0
        if flush:
            self.flush_deliveries()

    def flush_deliveries(self) -> int:
        """Journal any buffered (group-commit) delivery records now.
        Returns the number of messages flushed."""
        with self._lock:
            pending = self._pending_journal_deliveries
            if not pending:
                return 0
            self._pending_journal_deliveries = []
        self._journal_deliveries(pending)
        return len(pending)

    def _journal_deliveries(self, messages: Sequence[Message]) -> None:
        """Append delivery record(s) for *messages*: the singleton keeps
        the original ``delivery`` shape, a fan-out becomes one
        ``delivery_batch`` record (one local append + one bus publish
        regardless of fan-out width)."""
        hook = self._journal
        if hook is None:
            return
        if len(messages) == 1:
            hook("delivery", {"message": messages[0]})
        else:
            hook("delivery_batch", {"messages": list(messages)})

    def save_checkpoint(self, task: str, state: Any, tag: Any = None) -> None:
        """Persist an application checkpoint for *task* through the
        journal; a later attempt (same or successor manager) restores it
        via :meth:`load_checkpoint`."""
        with self._lock:
            self._checkpoints[task] = (tag, state)
        self.journal_event("checkpoint", {"task": task, "tag": tag, "state": state})

    def load_checkpoint(self, task: str) -> Optional[tuple[Any, Any]]:
        """The latest ``(tag, state)`` checkpoint for *task*, or None."""
        with self._lock:
            return self._checkpoints.get(task)

    def restore_checkpoints(self, checkpoints: dict[str, tuple[Any, Any]]) -> None:
        """Seed the checkpoint store from a journal replay (adoption)."""
        with self._lock:
            self._checkpoints.update(checkpoints)

    def restore_deliveries(
        self,
        deliveries: dict[str, list[Message]],
        gc_watermarks: Optional[dict[str, int]] = None,
    ) -> None:
        """Seed the delivery ledger from a journal replay (adoption).

        *gc_watermarks* carries the predecessor's cumulative per-task
        truncation counts so this manager's own ``ledger-gc`` records
        continue the same monotone watermark sequence."""
        with self._lock:
            for task, messages in deliveries.items():
                self._delivery_log.setdefault(task, []).extend(messages)
                self.ledger_resident += len(messages)
            if self.ledger_resident > self.ledger_peak:
                self.ledger_peak = self.ledger_resident
            if gc_watermarks:
                for task, upto in gc_watermarks.items():
                    if upto > self._gc_watermarks.get(task, 0):
                        self._gc_watermarks[task] = upto

    # -- roster ----------------------------------------------------------------
    def add_task(self, spec: TaskSpec) -> TaskRuntime:
        with self._lock:
            if spec.name in self.tasks:
                raise JobError(f"job {self.job_id}: duplicate task {spec.name!r}")
            runtime = TaskRuntime(spec)
            self.tasks[spec.name] = runtime
            self.task_order.append(spec.name)
            return runtime

    def task(self, name: str) -> TaskRuntime:
        try:
            return self.tasks[name]
        except KeyError:
            raise UnknownTaskError(f"job {self.job_id}: no task {name!r}") from None

    def task_names(self) -> list[str]:
        return list(self.task_order)

    # -- dependency queries --------------------------------------------------------
    def ready_tasks(self) -> list[TaskRuntime]:
        """CREATED tasks whose dependencies have all completed."""
        with self._lock:
            ready = []
            for name in self.task_order:
                runtime = self.tasks[name]
                if runtime.state is not TaskState.CREATED:
                    continue
                if all(
                    self.tasks[d].state is TaskState.COMPLETED
                    for d in runtime.spec.depends
                ):
                    ready.append(runtime)
            return ready

    def dependents_of(self, name: str) -> list[TaskRuntime]:
        return [
            self.tasks[t]
            for t in self.task_order
            if name in self.tasks[t].spec.depends
        ]

    # -- routing ----------------------------------------------------------------
    def _sized(self, payload: Any) -> tuple[int, str]:
        """Estimate *payload*'s wire size; returns ``(size, how)`` where
        *how* is ``"fast"`` (no serialization), ``"pickle"`` (fallback
        serialization), or ``"unsized"`` (unpicklable -- size 0 charged,
        the loss is counted rather than silently swallowed)."""
        size = payload_nbytes(payload)
        if size is not None:
            return size, "fast"
        try:
            size = len(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except (pickle.PicklingError, TypeError, AttributeError, RecursionError):
            # unpicklable payloads are possible in-process; the wire
            # volume is unknowable, so count the miss instead of hiding it
            return 0, "unsized"
        return size, "pickle"

    def route(self, message: Message) -> None:
        """Deliver *message* to a task queue or the client queue.

        Single-message form of :meth:`route_many` -- same ledger,
        journal, and accounting semantics.
        """
        self.route_many((message,))

    def route_many(self, messages: Sequence[Message]) -> None:
        """Deliver a fan-out of messages in one data-plane operation.

        Compared with W independent :meth:`route` calls, a fan-out costs:

        * one :attr:`_lock` acquisition for all accounting + ledger
          appends (not one per message),
        * one size computation per *unique payload object* -- broadcast
          messages share their payload by reference, so the row-k
          broadcast of the guiding example is sized exactly once per
          round (and never pickled at all on the numpy fast path),
        * one journal append + one bus publish (``delivery_batch``) for
          the whole fan-out instead of one per recipient.

        Semantics are unchanged from per-message routing: task-bound
        messages are recorded in the per-task delivery ledger *before*
        queue delivery, so a recipient whose hosting just died (closed
        queue) -- or that has not been placed yet -- does not crash the
        sender: the message is kept and replayed into the fresh queue
        once the task is (re-)placed (see :meth:`replay_into`).  Delivery
        to tasks is therefore at-least-once across attempts, and each
        recipient's chaos fate (drop/delay) is rolled independently by
        its own queue.
        """
        if not messages:
            return
        deadline = self.deadline
        checksums = self.checksums
        if self.telemetry is not None or deadline is not None or checksums:
            # stamp the job's causal context on unattributed messages so
            # downstream consumers can always walk back to a span, the
            # job deadline on unstamped messages so every hop can drop
            # doomed work, and the CRC digest so dequeue verification can
            # quarantine in-flight corruption; replace() re-uses the
            # existing serial/ts (no logical-clock disturbance)
            stamped: list[Message] = []
            for m in messages:
                if self.telemetry is not None and m.trace_ctx is None:
                    m = replace(m, trace_ctx=(self.job_id, "job"))
                if deadline is not None and m.deadline is None:
                    m = replace(m, deadline=deadline)
                if checksums and m.digest is None:
                    m = m.seal()
                stamped.append(m)
            messages = stamped
        # resolve every recipient before mutating anything: an unknown
        # task name is a programming error and must not leave a partial
        # fan-out behind
        runtimes: dict[str, TaskRuntime] = {}
        for message in messages:
            recipient = message.recipient
            if recipient != "client" and recipient not in runtimes:
                runtimes[recipient] = self.task(recipient)
        # payload interning: one sizing per unique payload object per
        # fan-out, keyed by id() within this call only (no lifetime risk:
        # the messages keep their payloads alive for the duration)
        sizes: dict[int, int] = {}
        unique_sizes: list[int] = []
        total = sizings = reuses = pickled = unsized = 0
        for message in messages:
            key = id(message.payload)
            size = sizes.get(key)
            if size is not None:
                reuses += 1
                total += size
                continue
            size, how = self._sized(message.payload)
            sizes[key] = size
            unique_sizes.append(size)
            total += size
            sizings += 1
            if how == "pickle":
                pickled += 1
            elif how == "unsized":
                unsized += 1
        ledgered: list[Message] = []
        deliveries: list[tuple[MessageQueue, Message]] = []
        with self._lock:
            self.messages_routed += len(messages)
            self.payload_bytes += total
            self.payload_sizings += sizings
            self.payload_reuses += reuses
            self.payloads_pickle_sized += pickled
            self.payloads_unsized += unsized
            for message in messages:
                if message.recipient == "client":
                    deliveries.append((self.client_queue, message))
                    continue
                runtime = runtimes[message.recipient]
                if runtime.state.terminal:
                    # terminal tasks are never re-placed, so a ledger
                    # entry could never be replayed -- skip the ledger
                    # and journal, just attempt best-effort delivery
                    if runtime.queue is not None:
                        deliveries.append((runtime.queue, message))
                    continue
                self._delivery_log.setdefault(message.recipient, []).append(
                    message
                )
                self.ledger_resident += 1
                ledgered.append(message)
                if runtime.queue is not None:
                    deliveries.append((runtime.queue, message))
                # an unplaced recipient (no queue yet: placement window
                # or pending re-placement) keeps the message ledgered;
                # replay delivers it once the queue exists
            if self.ledger_resident > self.ledger_peak:
                self.ledger_peak = self.ledger_resident
        if self._m_routed is not None:
            self._m_routed.inc(len(messages))
            for size in unique_sizes:
                self._m_payload.observe(size)
            if unsized:
                self._m_unsized.inc(unsized)
        # write-ahead: ledger entries are journaled (and replicated to
        # peer managers) before queue delivery, so a successor's replay
        # sees every message a restarted attempt may need
        if ledgered and self._journal is not None:
            to_journal: Optional[list[Message]] = ledgered
            if self._delivery_batching > 0:
                with self._lock:
                    self._pending_journal_deliveries.extend(ledgered)
                    if (
                        len(self._pending_journal_deliveries)
                        >= self._delivery_batching
                    ):
                        to_journal = self._pending_journal_deliveries
                        self._pending_journal_deliveries = []
                    else:
                        to_journal = None
            if to_journal:
                self._journal_deliveries(to_journal)
        client_error: Optional[ShutdownError] = None
        for queue, message in deliveries:
            try:
                queue.put(message)
            except ShutdownError as exc:
                if queue is self.client_queue:
                    # no ledger covers the client conduit: surface the
                    # failure (after finishing the other recipients) so
                    # the caller can record the undeliverable message
                    client_error = exc
                # a task queue closed mid-delivery (node crash, deadline
                # cancel): the ledger keeps the message for replay;
                # other recipients still get theirs
        if client_error is not None:
            raise client_error

    def note_shed(self, task: str, message: Message) -> None:
        """Record a backpressure eviction from *task*'s bounded queue.

        Called by the hosting TaskManager (outside the queue lock).  The
        message itself was already ledgered *and* journaled write-ahead
        by :meth:`route_many` before it ever reached the queue, so the
        ``shed`` record only needs the serial: a replay re-offers the
        full message from the delivery ledger, preserving at-least-once
        even though the live queue dropped it.
        """
        with self._lock:
            self.messages_shed += 1
        self.journal_event("shed", {"task": task, "serial": message.serial})

    def note_poison(self, task: str, message: Message) -> None:
        """Quarantine a corrupt frame dequeued from *task*'s queue.

        Called by the queue's poison hook (outside the queue lock).  The
        frame is recorded as a per-job dead-letter (journaled, so the
        record survives ``replay_job`` and manager failover) and -- while
        the per-serial re-offer budget lasts -- the *pristine* ledgered
        copy of the same serial is re-offered into the live queue:
        corruption happened to the in-flight copy, the ledger still holds
        the original, so the consumer usually sees nothing worse than a
        reordering.
        """
        original: Optional[Message] = None
        with self._lock:
            self.messages_poisoned += 1
            entry = {
                "task": task,
                "serial": message.serial,
                "sender": message.sender,
                "type": message.type,
                "expected_digest": message.digest,
                "observed_digest": payload_digest(message.payload),
            }
            self.dead_letters.append(entry)
            offers = self._poison_reoffers.get(message.serial, 0)
            if offers < _POISON_REOFFER_LIMIT:
                self._poison_reoffers[message.serial] = offers + 1
                for logged in self._delivery_log.get(task, ()):
                    if logged.serial == message.serial:
                        original = logged
                        break
        self.journal_event("dead-letter", dict(entry))
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "cn_dead_letters_total", job=self.job_id
            ).inc()
        if original is not None:
            runtime = self.tasks.get(task)
            queue = runtime.queue if runtime is not None else None
            if queue is not None:
                try:
                    queue.put(original)
                except (ShutdownError, Overloaded) as exc:
                    # the ledger still holds the message for attempt-level
                    # replay; record the failed live re-offer
                    from .trace import note_undeliverable  # local: trace imports api

                    note_undeliverable(self.job_id, original, exc)

    def restore_dead_letters(self, entries: Sequence[dict]) -> None:
        """Seed the dead-letter store from a journal replay (adoption)."""
        with self._lock:
            self.dead_letters.extend(dict(e) for e in entries)

    def has_ledgered(self, name: str) -> bool:
        """Whether any un-GC'd deliveries are ledgered for *name*."""
        with self._lock:
            return bool(self._delivery_log.get(name))

    def replay_into(self, name: str) -> int:
        """Re-deliver every logged message for *name* into its (fresh)
        queue; used by the JobManager after re-placing a crashed task.
        Returns the number of messages replayed."""
        runtime = self.task(name)
        queue = runtime.queue
        if queue is None:
            return 0
        with self._lock:
            pending = list(self._delivery_log.get(name, ()))
        if not pending:
            return 0
        delivered = queue.put_many(pending)
        with self._lock:
            self.messages_replayed += delivered
        return delivered

    # -- ledger GC ---------------------------------------------------------------
    def gc_ledger(self, name: str) -> int:
        """Truncate *name*'s delivery ledger after its attempt reached a
        terminal state at the current epoch.

        Terminal tasks are never re-placed (recovery skips them), so
        their history can never be replayed -- holding it would keep the
        ledger O(total traffic) instead of O(in-flight traffic).  The
        truncation is journaled as a cumulative per-task watermark
        (``ledger-gc``) so a successor manager's replay agrees on exactly
        which prefix is gone.  Returns the number of entries dropped."""
        with self._lock:
            dropped = self._delivery_log.pop(name, None)
            count = len(dropped) if dropped else 0
            if count == 0:
                return 0
            self.ledger_resident -= count
            self.ledger_truncated += count
            watermark = self._gc_watermarks.get(name, 0) + count
            self._gc_watermarks[name] = watermark
        self.journal_event("ledger-gc", {"task": name, "upto": watermark})
        return count

    # -- completion ---------------------------------------------------------------
    def note_terminal(self, name: str) -> None:
        """Called by the TaskManager when a task reaches a terminal state;
        flips the job-finished condition when the roster is done."""
        finished = False
        with self._lock:
            runtime = self.tasks[name]
            if runtime.state is TaskState.FAILED and self.failed is None:
                self.failed = TaskFailedError(name, runtime.error or "unknown")
            # fail fast: a failure finishes the job even with tasks pending
            if self.failed is not None or all(
                t.state.terminal for t in self.tasks.values()
            ):
                self._finished_flag = True
                finished = True
                self._cond.notify_all()
            state = runtime.state.value
            terminal = runtime.state.terminal
        if terminal:
            # the attempt can never be re-placed again: its message
            # history is dead weight -- truncate and journal the watermark
            self.gc_ledger(name)
        if self.telemetry is not None:
            task_span = self.telemetry.spans.get(self.job_id, f"task:{name}")
            if task_span is not None:
                self.telemetry.spans.end(task_span, state=state)
            if finished:
                span = self.telemetry.spans.get(self.job_id, "job")
                if span is not None:
                    self.telemetry.spans.end(span, failed=self.failed is not None)

    def mark_rebound(self) -> None:
        """Wake waiters because a successor manager re-bound this job id
        to a fresh :class:`Job`; blocked clients must re-resolve instead
        of waiting on an object that will never finish."""
        with self._lock:
            self._rebound = True
            self._cond.notify_all()

    def wait_or_rebind(self, timeout: Optional[float] = None) -> str:
        """Block until this job finishes or is re-bound elsewhere.

        Returns ``"finished"``, ``"rebound"`` (a failover replaced this
        object; re-resolve through the directory), or ``"timeout"``.
        Unlike :meth:`wait` this never raises -- it is the api layer's
        low-level wake primitive.
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._finished_flag or self._rebound, timeout
            )
            if self._finished_flag:
                return "finished"
            return "rebound" if self._rebound else "timeout"

    def wait(self, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until every task is terminal (or one fails).  Returns the
        result map; raises the first :class:`TaskFailedError` on failure.
        On timeout raises :class:`JobTimeoutError` carrying the per-task
        states, so "still running" is distinguishable from "wedged"."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._finished_flag, timeout):
                raise JobTimeoutError(self.job_id, timeout, self.states())
        if self.failed is not None:
            raise self.failed
        return self.results()

    @property
    def finished(self) -> bool:
        with self._lock:
            return self._finished_flag

    def results(self) -> dict[str, Any]:
        return {
            name: runtime.result
            for name, runtime in self.tasks.items()
            if runtime.state is TaskState.COMPLETED
        }

    def states(self) -> dict[str, str]:
        return {name: runtime.state.value for name, runtime in self.tasks.items()}

    def __repr__(self) -> str:
        return f"<Job {self.job_id!r} tasks={len(self.tasks)}>"
