"""CN API: the client-side factory (paper section 3).

The client "acquires a reference to the CN API" and through it exercises
the six capabilities the paper lists:

1. Initialize CN API (using the factory)      -> :meth:`CNAPI.initialize`
2. Create Job in JobManager                   -> :meth:`CNAPI.create_job`
3. Create Tasks for the Job                   -> :meth:`CNAPI.create_task`
4. Start the Tasks                            -> :meth:`CNAPI.start_task` / :meth:`start_job`
5. Get Messages from Tasks                    -> :meth:`CNAPI.get_message`
6. Send Messages to Tasks                     -> :meth:`CNAPI.send_message`

Job creation multicasts a solicitation; willing JobManagers respond and
one is selected by the user-specified requirements (most free job slots,
then most local free memory, then name for determinism).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .cluster import Cluster
from .durability import JobDirectory
from .errors import JobTimeoutError, NoWillingJobManager, ShutdownError
from .job import Job, TaskSpec
from .jobmanager import JobManager
from .messages import Message, MessageType
from .multicast import Solicitation

__all__ = ["CNAPI", "JobHandle"]

#: wall seconds per condition-variable poll when a virtual clock drives
#: timeouts (virtual time advances on tick, not while we sleep)
_VIRTUAL_WAIT_SLICE = 0.05


class JobHandle:
    """A client's grip on one job: the Job plus its managing JobManager.

    Resolution goes through the cluster's :class:`JobDirectory` on every
    access: if a successor JobManager adopts the job after a manager
    failure, the handle transparently re-binds to the successor and its
    rebuilt Job -- client code never notices the failover.
    """

    def __init__(
        self,
        job: Job,
        manager: JobManager,
        directory: Optional[JobDirectory] = None,
    ) -> None:
        self._job = job
        self._manager = manager
        self._directory = directory
        self._job_id = job.job_id

    def _resolve(self) -> None:
        if self._directory is None:
            return
        entry = self._directory.lookup(self._job_id)
        if entry is not None:
            self._manager = entry.manager
            self._job = entry.job

    @property
    def job(self) -> Job:
        self._resolve()
        return self._job

    @property
    def manager(self) -> JobManager:
        self._resolve()
        return self._manager

    @property
    def job_id(self) -> str:
        return self._job_id

    def __repr__(self) -> str:
        return f"<JobHandle {self._job_id!r} via {self._manager.name!r}>"


class CNAPI:
    """The client-side facade over a CN cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    # -- 1. factory -----------------------------------------------------------
    @classmethod
    def initialize(cls, cluster: Cluster) -> "CNAPI":
        """Acquire the CN API for *cluster* (started if necessary)."""
        cluster.start()
        return cls(cluster)

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    # -- 2. job creation ---------------------------------------------------------
    def create_job(
        self,
        client_name: str,
        requirements: Optional[Mapping[str, Any]] = None,
        *,
        descriptor: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> JobHandle:
        """Multicast for willing JobManagers, select one, create the job.

        *budget* is an end-to-end allowance in cluster-clock seconds: it
        becomes an absolute deadline (``clock.now() + budget``) stamped
        on every message the job routes, capping every task watchdog,
        and letting TaskManagers drop attempts whose budget is already
        spent instead of executing doomed work."""
        requirements = dict(requirements or {})
        offers = self._cluster.bus.solicit(
            Solicitation(kind="jobmanager", requirements=requirements, sender=client_name)
        )
        if not offers:
            raise NoWillingJobManager(
                f"no JobManager willing to manage a job for {client_name!r}"
            )
        prefer = requirements.get("prefer")
        if prefer is not None:
            preferred = [o for o in offers if o[0] == prefer]
            if preferred:
                offers = preferred
        offers.sort(
            key=lambda item: (
                -item[1]["free_job_slots"],
                -item[1]["local_free_memory"],
                item[0],
            )
        )
        node_name = offers[0][0]
        manager = self._cluster.server(node_name).jobmanager
        deadline = (
            None if budget is None else self._cluster.clock.now() + float(budget)
        )
        job = manager.create_job(
            client_name, descriptor=descriptor, deadline=deadline
        )
        job.client_queue.put(
            Message(
                MessageType.JOB_CREATED,
                sender=manager.name,
                recipient="client",
                payload={"job_id": job.job_id, "manager": manager.name},
            )
        )
        return JobHandle(job, manager, getattr(self._cluster, "directory", None))

    # -- 3. task creation ----------------------------------------------------------
    def create_task(self, handle: JobHandle, spec: TaskSpec) -> None:
        handle.manager.create_task(handle.job, spec)

    def create_tasks(self, handle: JobHandle, specs) -> None:
        """Create a batch of tasks in one call.  Under the bid scheduler
        tasks sharing a template are placed through a single
        rule/bid/award round instead of one solicitation each."""
        handle.manager.create_tasks(handle.job, list(specs))

    # -- 4. starting ------------------------------------------------------------------
    def start_task(self, handle: JobHandle, name: str) -> None:
        handle.manager.start_task(handle.job, name)

    def start_job(self, handle: JobHandle) -> None:
        """Start all dependency-free tasks; completions cascade the DAG."""
        handle.manager.start_job(handle.job)

    # -- 5. messages from tasks ----------------------------------------------------------
    def get_message(self, handle: JobHandle, timeout: Optional[float] = None) -> Message:
        while True:
            job = handle.job
            try:
                return job.client_queue.get(timeout)
            except ShutdownError:
                if handle.job is job:
                    raise  # genuinely shut down, not a failover re-bind

    def get_user_message(self, handle: JobHandle, timeout: Optional[float] = None) -> Message:
        while True:
            job = handle.job
            try:
                return job.client_queue.get_matching(Message.is_user, timeout)
            except ShutdownError:
                if handle.job is job:
                    raise

    # -- 6. messages to tasks -----------------------------------------------------------
    def send_message(self, handle: JobHandle, task_name: str, payload: Any) -> None:
        handle.job.route(Message.user("client", task_name, payload))

    # -- conveniences beyond the six -------------------------------------------------------
    def query_status(self, handle: JobHandle) -> dict[str, Any]:
        """QUERY_STATUS request: per-task state/placement + job summary.
        The matching STATUS message also lands on the client queue."""
        return handle.manager.query_status(handle.job)

    def wait(self, handle: JobHandle, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until the job finishes; returns task results.

        Blocks on the job's completion condition variable, so the waiter
        wakes the instant the last task turns terminal (formerly this
        polled in 0.2s slices -- see ``benchmarks`` PERF4 for the
        measured win).  A manager failover mid-wait wakes the waiter via
        :meth:`Job.mark_rebound`; the handle then re-resolves and the
        wait transparently continues on the successor's rebuilt Job.

        Deadline arithmetic goes through the cluster clock's
        :meth:`~repro.cn.chaos.VirtualClock.timeout_now`: wall-monotonic
        by default, virtual seconds when the cluster runs a clock built
        with ``drive_timeouts=True`` -- so virtual-time chaos tests
        control this timeout by ticking, with no hidden wall-time
        dependence.  In virtual mode the condition variable is polled in
        short wall slices (virtual time only advances on tick, so a
        plain timed wait would measure the wrong clock)."""
        clock = self._cluster.clock
        virtual = clock.drives_timeouts
        deadline = None if timeout is None else clock.timeout_now() + timeout
        while True:
            job = handle.job
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - clock.timeout_now()
                if remaining <= 0:
                    raise JobTimeoutError(job.job_id, timeout, job.states())
            wait_slice = remaining
            if virtual and remaining is not None:
                wait_slice = _VIRTUAL_WAIT_SLICE
            status = job.wait_or_rebind(wait_slice)
            if status == "finished":
                return job.wait(0)
            if status == "timeout":
                if virtual:
                    continue  # re-check the virtual deadline next pass
                raise JobTimeoutError(job.job_id, timeout, job.states())
            # rebound: loop re-resolves through the directory

    def cancel(self, handle: JobHandle) -> None:
        handle.manager.cancel_job(handle.job)

    def states(self, handle: JobHandle) -> dict[str, str]:
        return handle.job.states()
