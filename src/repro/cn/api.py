"""CN API: the client-side factory (paper section 3).

The client "acquires a reference to the CN API" and through it exercises
the six capabilities the paper lists:

1. Initialize CN API (using the factory)      -> :meth:`CNAPI.initialize`
2. Create Job in JobManager                   -> :meth:`CNAPI.create_job`
3. Create Tasks for the Job                   -> :meth:`CNAPI.create_task`
4. Start the Tasks                            -> :meth:`CNAPI.start_task` / :meth:`start_job`
5. Get Messages from Tasks                    -> :meth:`CNAPI.get_message`
6. Send Messages to Tasks                     -> :meth:`CNAPI.send_message`

Job creation multicasts a solicitation; willing JobManagers respond and
one is selected by the user-specified requirements (most free job slots,
then most local free memory, then name for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from .cluster import Cluster
from .errors import NoWillingJobManager
from .job import Job, TaskSpec
from .jobmanager import JobManager
from .messages import Message, MessageType
from .multicast import Solicitation

__all__ = ["CNAPI", "JobHandle"]


@dataclass
class JobHandle:
    """A client's grip on one job: the Job plus its managing JobManager."""

    job: Job
    manager: JobManager

    @property
    def job_id(self) -> str:
        return self.job.job_id


class CNAPI:
    """The client-side facade over a CN cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    # -- 1. factory -----------------------------------------------------------
    @classmethod
    def initialize(cls, cluster: Cluster) -> "CNAPI":
        """Acquire the CN API for *cluster* (started if necessary)."""
        cluster.start()
        return cls(cluster)

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    # -- 2. job creation ---------------------------------------------------------
    def create_job(
        self,
        client_name: str,
        requirements: Optional[Mapping[str, Any]] = None,
    ) -> JobHandle:
        """Multicast for willing JobManagers, select one, create the job."""
        requirements = dict(requirements or {})
        offers = self._cluster.bus.solicit(
            Solicitation(kind="jobmanager", requirements=requirements, sender=client_name)
        )
        if not offers:
            raise NoWillingJobManager(
                f"no JobManager willing to manage a job for {client_name!r}"
            )
        prefer = requirements.get("prefer")
        if prefer is not None:
            preferred = [o for o in offers if o[0] == prefer]
            if preferred:
                offers = preferred
        offers.sort(
            key=lambda item: (
                -item[1]["free_job_slots"],
                -item[1]["local_free_memory"],
                item[0],
            )
        )
        node_name = offers[0][0]
        manager = self._cluster.server(node_name).jobmanager
        job = manager.create_job(client_name)
        job.client_queue.put(
            Message(
                MessageType.JOB_CREATED,
                sender=manager.name,
                recipient="client",
                payload={"job_id": job.job_id, "manager": manager.name},
            )
        )
        return JobHandle(job, manager)

    # -- 3. task creation ----------------------------------------------------------
    def create_task(self, handle: JobHandle, spec: TaskSpec) -> None:
        handle.manager.create_task(handle.job, spec)

    # -- 4. starting ------------------------------------------------------------------
    def start_task(self, handle: JobHandle, name: str) -> None:
        handle.manager.start_task(handle.job, name)

    def start_job(self, handle: JobHandle) -> None:
        """Start all dependency-free tasks; completions cascade the DAG."""
        handle.manager.start_job(handle.job)

    # -- 5. messages from tasks ----------------------------------------------------------
    def get_message(self, handle: JobHandle, timeout: Optional[float] = None) -> Message:
        return handle.job.client_queue.get(timeout)

    def get_user_message(self, handle: JobHandle, timeout: Optional[float] = None) -> Message:
        return handle.job.client_queue.get_matching(Message.is_user, timeout)

    # -- 6. messages to tasks -----------------------------------------------------------
    def send_message(self, handle: JobHandle, task_name: str, payload: Any) -> None:
        handle.job.route(Message.user("client", task_name, payload))

    # -- conveniences beyond the six -------------------------------------------------------
    def query_status(self, handle: JobHandle) -> dict[str, Any]:
        """QUERY_STATUS request: per-task state/placement + job summary.
        The matching STATUS message also lands on the client queue."""
        return handle.manager.query_status(handle.job)

    def wait(self, handle: JobHandle, timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until the job finishes; returns task results."""
        return handle.job.wait(timeout)

    def cancel(self, handle: JobHandle) -> None:
        handle.manager.cancel_job(handle.job)

    def states(self, handle: JobHandle) -> dict[str, str]:
        return handle.job.states()
