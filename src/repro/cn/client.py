"""Descriptor-driven client execution.

:class:`ClientRunner` is the library-level equivalent of the client
program the pipeline generates from CNX: it walks a parsed
:class:`~repro.core.cnx.schema.CnxDocument`, creates the job(s) through
the :class:`~repro.cn.api.CNAPI` facade, expands dynamic-invocation
tasks against run-time arguments (paper Fig. 5), starts the roots and
waits for the DAG to drain.

Dynamic expansion: a dynamic task's ``arguments`` expression is
evaluated in a restricted namespace containing the caller's
``runtime_args`` plus ``range``/``len``.  It must yield an iterable of
argument tuples -- one concrete task instance per tuple, named
``<base><k>`` with k counting from 1.  Tasks that depended on the
dynamic base name are rewired to depend on every instance, and the
instances inherit the base's own dependencies, preserving the fork/join
shape of the diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..analysis import AnalysisContext, ClusterSpec, Diagnostic, analyze_cnx
from ..core.cnx.schema import CnxDocument, CnxJob, CnxTask
from ..core.cnx.validate import CnxValidationError
from .api import CNAPI, JobHandle
from .cluster import Cluster
from .errors import JobError
from .job import TaskSpec
from .messages import Message, MessageType

__all__ = ["ClientRunner", "ClientResult", "expand_dynamic_tasks", "evaluate_arguments"]

_SAFE_BUILTINS = {"range": range, "len": len, "min": min, "max": max, "list": list}


def evaluate_arguments(expression: str, env: Mapping[str, Any]) -> list[tuple]:
    """Evaluate a dynamic-invocation argument expression.

    The expression runs with no builtins beyond a small allow-list and
    sees the runtime arguments as names.  Result must be an iterable of
    argument lists; scalars inside are wrapped into 1-tuples.
    """
    namespace = dict(env)
    try:
        value = eval(expression, {"__builtins__": _SAFE_BUILTINS}, namespace)
    except Exception as exc:  # noqa: BLE001  # conclint: waive CC302 -- user expression may fail any way; converted to JobError
        raise JobError(
            f"dynamic argument expression {expression!r} failed: {exc}"
        ) from exc
    result: list[tuple] = []
    try:
        for item in value:
            if isinstance(item, tuple):
                result.append(item)
            elif isinstance(item, list):
                result.append(tuple(item))
            else:
                result.append((item,))
    except TypeError:
        raise JobError(
            f"dynamic argument expression {expression!r} did not yield an "
            f"iterable (got {type(value).__name__})"
        ) from None
    return result


def expand_dynamic_tasks(
    job: CnxJob,
    runtime_args: Mapping[str, Any],
    *,
    memory_budget: Optional[int] = None,
    degradations: Optional[list] = None,
) -> list[TaskSpec]:
    """Concrete task specs for *job*, with dynamic tasks instantiated.

    Graceful degradation: when *memory_budget* is given (aggregate free
    memory across live nodes) and the fully-expanded job would not fit,
    dynamic tasks shed instances -- largest first, deterministically,
    never below the declared multiplicity lower bound or 1 -- until the
    job fits (or nothing more can shrink).  Each shrink is appended to
    *degradations* so the caller can surface JOB_DEGRADED events."""
    # name -> requested argument lists, for dynamic tasks
    requested: dict[str, list[tuple]] = {}
    for task in job.tasks:
        if task.dynamic:
            requested[task.name] = evaluate_arguments(
                task.arguments or "[]", runtime_args
            )
    granted = {name: len(args) for name, args in requested.items()}
    if memory_budget is not None and requested:
        memory_of = {t.name: t.task_req.memory for t in job.tasks}
        floor = {
            t.name: max(1, _multiplicity_low(t)) for t in job.tasks if t.dynamic
        }
        static_memory = sum(
            memory_of[t.name] for t in job.tasks if not t.dynamic
        )

        def total() -> int:
            return static_memory + sum(
                granted[name] * memory_of[name] for name in granted
            )

        while total() > memory_budget:
            shrinkable = sorted(
                (name for name in granted if granted[name] > floor[name]),
                key=lambda name: (-granted[name], name),
            )
            if not shrinkable:
                break  # even the floor does not fit; placement will say so
            granted[shrinkable[0]] -= 1
        for name in sorted(granted):
            if granted[name] < len(requested[name]) and degradations is not None:
                degradations.append(
                    {
                        "task": name,
                        "requested": len(requested[name]),
                        "granted": granted[name],
                        "memory_budget": memory_budget,
                    }
                )
    specs: list[TaskSpec] = []
    # name -> instance names, for dependency rewiring
    expansion: dict[str, list[str]] = {}
    for task in job.tasks:
        if not task.dynamic:
            expansion[task.name] = [task.name]
            continue
        count = granted[task.name]
        _check_multiplicity(task, count)
        expansion[task.name] = [f"{task.name}{k}" for k in range(1, count + 1)]
    for task in job.tasks:
        base = TaskSpec.from_cnx(task)
        depends = tuple(
            instance for dep in task.depends for instance in expansion[dep]
        )
        if not task.dynamic:
            specs.append(
                TaskSpec(
                    name=base.name,
                    jar=base.jar,
                    cls=base.cls,
                    depends=depends,
                    memory=base.memory,
                    runmodel=base.runmodel,
                    params=base.params,
                    max_retries=base.max_retries,
                )
            )
            continue
        arglists = requested[task.name][: granted[task.name]]
        for k, args in enumerate(arglists, start=1):
            specs.append(
                TaskSpec(
                    name=f"{task.name}{k}",
                    jar=base.jar,
                    cls=base.cls,
                    depends=depends,
                    memory=base.memory,
                    runmodel=base.runmodel,
                    params=tuple(args),
                    max_retries=base.max_retries,
                )
            )
    return specs


def _job_batches(jobs) -> list[list[tuple[int, Any]]]:
    """Group (index, job) pairs into ordered batches per the ``after``
    partial order; unordered documents degenerate to one job per batch
    (strict sequential, the historical behaviour)."""
    if not any(job.after for job in jobs):
        return [[(i, job)] for i, job in enumerate(jobs)]
    remaining = {i: set(job.after) for i, job in enumerate(jobs)}
    name_of = {i: jobs[i].name for i in remaining}
    batches: list[list[tuple[int, Any]]] = []
    while remaining:
        ready = sorted(
            i for i, needs in remaining.items() if not needs
        )
        if not ready:  # validator rejects cycles; defensive
            raise JobError(f"cyclic job ordering among {sorted(remaining)}")
        batches.append([(i, jobs[i]) for i in ready])
        done_names = {name_of[i] for i in ready}
        for i in ready:
            del remaining[i]
        for needs in remaining.values():
            needs.difference_update(done_names)
    return batches


def _multiplicity_low(task: CnxTask) -> int:
    """The declared lower bound of a task's multiplicity (0 when open)."""
    spec = task.multiplicity.strip()
    if not spec or spec in ("*", "0..*"):
        return 0
    if ".." in spec:
        return int(spec.partition("..")[0])
    return int(spec)


def _check_multiplicity(task: CnxTask, count: int) -> None:
    """Enforce the declared multiplicity range (``0..*``, ``1..*``, ``n``)."""
    spec = task.multiplicity.strip()
    if not spec or spec in ("*", "0..*"):
        return
    if ".." in spec:
        low_text, _, high_text = spec.partition("..")
        low = int(low_text)
        high = None if high_text.strip() == "*" else int(high_text)
    else:
        low = high = int(spec)
    if count < low or (high is not None and count > high):
        raise JobError(
            f"dynamic task {task.name!r}: {count} invocation(s) violates "
            f"multiplicity {spec!r}"
        )


@dataclass
class ClientResult:
    """Outcome of one descriptor execution."""

    client_class: str
    job_results: list[dict[str, Any]] = field(default_factory=list)
    messages: list[Message] = field(default_factory=list)
    #: warning-severity analyzer findings (errors refuse the run)
    warnings: list[Diagnostic] = field(default_factory=list)

    @property
    def results(self) -> dict[str, Any]:
        """Task results of the first (usually only) job."""
        return self.job_results[0] if self.job_results else {}


class ClientRunner:
    """Executes CNX documents against a cluster through the CN API.

    With ``degrade=True`` (the default) dynamic jobs shrink their worker
    multiplicity to fit the aggregate free memory of the *live* nodes at
    submission time -- on a cluster that lost nodes the job still runs,
    just narrower, and a JOB_DEGRADED notification records each shrink.
    """

    def __init__(self, cluster: Cluster, *, degrade: bool = True) -> None:
        self.api = CNAPI.initialize(cluster)
        self.degrade = degrade

    def analyze(self, doc: CnxDocument):
        """Static-analysis report for *doc* against this runner's cluster.

        The context enables the placement-feasibility pass (cluster
        shape from the actual TaskManagers) and the archive pass (jar /
        class references resolved through the cluster's task registry).
        """
        cluster = self.api.cluster
        managers = [s.taskmanager for s in cluster.servers]
        spec = ClusterSpec(
            nodes=len(managers),
            memory_per_node=min(tm.memory_capacity for tm in managers),
            slots_per_node=min(tm.slots for tm in managers),
        )

        def resolves(jar: str, cls: str) -> bool:
            try:
                cluster.registry.resolve(jar, cls)
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- resolution executes arbitrary archive code; any failure means unresolvable
                return False
            return True

        return analyze_cnx(
            doc, AnalysisContext(cluster=spec, task_resolver=resolves)
        )

    def run(
        self,
        doc: CnxDocument,
        *,
        runtime_args: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = 60.0,
        collect_messages: bool = False,
    ) -> ClientResult:
        """Run every job of the client and gather results.

        Jobs without ordering attributes run sequentially in document
        order (the Fig. 2 behaviour).  When any job declares ``after``,
        the client-level partial order of paper section 4 applies: jobs
        are grouped into batches, jobs within a batch run concurrently,
        and batches run in order.  Results are returned in document
        order either way.

        Before anything reaches the cluster the full static analyzer
        runs over the descriptor (including placement feasibility
        against this runner's cluster): error-severity findings raise
        :class:`~repro.core.cnx.validate.CnxValidationError` with the
        structured diagnostics attached, warnings are collected on the
        returned :class:`ClientResult`."""
        report = self.analyze(doc)
        if not report.ok:
            raise CnxValidationError(report.legacy_problems(), report.errors())
        runtime_args = dict(runtime_args or {})
        outcome = ClientResult(
            client_class=doc.client.cls, warnings=report.warnings()
        )
        jobs = doc.client.jobs
        results_by_index: dict[int, dict[str, Any]] = {}
        for batch in _job_batches(jobs):
            if len(batch) == 1:
                index, job = batch[0]
                handle = self._submit(doc, job, runtime_args)
                self.api.start_job(handle)
                results_by_index[index] = self.api.wait(handle, timeout)
                if collect_messages:
                    outcome.messages.extend(handle.job.client_queue.drain())
                continue
            handles = [
                (index, self._submit(doc, job, runtime_args)) for index, job in batch
            ]
            for _, handle in handles:
                self.api.start_job(handle)
            for index, handle in handles:
                results_by_index[index] = self.api.wait(handle, timeout)
                if collect_messages:
                    outcome.messages.extend(handle.job.client_queue.drain())
        outcome.job_results = [results_by_index[i] for i in range(len(jobs))]
        return outcome

    def _descriptor_text(self, doc: CnxDocument) -> Optional[str]:
        """The CNX text for the journal's job-submission record; None when
        the cluster is non-durable (emitting costs a serialization) or
        when emission fails (durability must not block submission)."""
        if not getattr(self.api.cluster, "durable", False):
            return None
        try:
            from ..core.cnx.emitter import emit

            return emit(doc)
        except Exception:  # noqa: BLE001  # conclint: waive CC302 -- descriptor emission is best-effort; durability must not block submission
            return None

    def _submit(
        self, doc: CnxDocument, job: CnxJob, runtime_args: Mapping[str, Any]
    ) -> JobHandle:
        degradations: list = []
        cluster = self.api.cluster
        budget = None
        if self.degrade:
            # graceful degradation under overload: the admission
            # controller lowers degrade_factor below 1.0 as the cluster
            # approaches saturation, so new dynamic jobs expand narrower
            # instead of being shed outright
            factor = getattr(cluster, "degrade_factor", 1.0)
            budget = int(cluster.total_free_memory() * factor)
        specs = expand_dynamic_tasks(
            job,
            runtime_args,
            memory_budget=budget,
            degradations=degradations,
        )
        total_memory = sum(s.memory for s in specs)
        handle = self.api.create_job(
            doc.client.cls,
            requirements={"tasks": len(specs), "memory": total_memory},
            # the job submission record carries the CNX descriptor, so a
            # successor manager replaying the journal can audit what was
            # submitted (emitted lazily only when the cluster is durable)
            descriptor=self._descriptor_text(doc),
        )
        for event in degradations:
            handle.job.route(
                Message(
                    MessageType.JOB_DEGRADED,
                    sender="client-runner",
                    recipient="client",
                    payload=event,
                )
            )
        # batch creation: under the bid scheduler the whole roster places
        # through per-template rule/bid/award rounds instead of one
        # multicast solicitation per task
        self.api.create_tasks(handle, specs)
        return handle
