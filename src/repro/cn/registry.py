"""Task class resolution: archive names + class names -> Python classes.

CNX descriptors reference tasks by ``(jar, class)``.  The registry
resolves those references from three sources, in order:

1. **Registered classes** -- Python task classes registered directly
   (``register_class``), the convenient path for library users whose
   tasks live in normal Python modules (e.g. ``repro.apps.floyd``),
2. **Registered archives** -- in-memory :class:`TaskArchive` objects
   registered under their jar name (``register_archive``),
3. **Archive search path** -- directories scanned for ``<jar>`` files on
   demand, mirroring deployment where jars sit next to the descriptor.

The registry is what the JobManager "uploads" from: when a TaskManager
agrees to host a task, the manager ships the resolved archive (or the
class itself for registered classes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Type

from .archive import TaskArchive, load_archive
from .errors import TaskLoadError
from .task import Task

__all__ = ["TaskRegistry"]


class TaskRegistry:
    """Resolves (jar, class) descriptor references to Task classes."""

    def __init__(self, search_path: tuple[Path, ...] = ()) -> None:
        self._classes: dict[tuple[str, str], Type[Task]] = {}
        self._archives: dict[str, TaskArchive] = {}
        self.search_path: list[Path] = [Path(p) for p in search_path]

    # -- registration -----------------------------------------------------
    def register_class(self, jar: str, class_name: str, cls: Type[Task]) -> None:
        """Directly bind a descriptor reference to a Python class."""
        if not (isinstance(cls, type) and issubclass(cls, Task)):
            raise TaskLoadError(f"{cls!r} does not implement the Task interface")
        self._classes[(jar, class_name)] = cls

    def register_archive(self, archive: TaskArchive, *, jar: Optional[str] = None) -> None:
        """Register an in-memory archive under its jar name."""
        self._archives[jar or archive.name] = archive

    def add_search_dir(self, directory: Path | str) -> None:
        self.search_path.append(Path(directory))

    # -- resolution ----------------------------------------------------------
    def resolve(self, jar: str, class_name: str) -> Type[Task]:
        """The Task class for a descriptor ``(jar, class)`` reference."""
        direct = self._classes.get((jar, class_name))
        if direct is not None:
            return direct
        archive = self._archives.get(jar)
        if archive is None:
            archive = self._load_from_path(jar)
        if archive is not None:
            return archive.load_class(class_name)
        raise TaskLoadError(
            f"cannot resolve task class {class_name!r} from jar {jar!r}: "
            f"not registered and not on the search path "
            f"({[str(p) for p in self.search_path] or 'empty'})"
        )

    def archive_for(self, jar: str) -> Optional[TaskArchive]:
        """The archive registered (or discoverable) under *jar*, if any."""
        archive = self._archives.get(jar)
        if archive is None:
            archive = self._load_from_path(jar)
        return archive

    def _load_from_path(self, jar: str) -> Optional[TaskArchive]:
        for directory in self.search_path:
            candidate = directory / jar
            if candidate.is_file():
                archive = load_archive(candidate)
                self._archives[jar] = archive
                return archive
        return None

    def known_jars(self) -> list[str]:
        jars = {jar for jar, _ in self._classes}
        jars.update(self._archives)
        return sorted(jars)

    def copy(self) -> "TaskRegistry":
        clone = TaskRegistry(tuple(self.search_path))
        # conclint: waive CC402 -- same-class clone, never crosses a node boundary
        clone._classes.update(self._classes)
        # conclint: waive CC402 -- same-class clone, never crosses a node boundary
        clone._archives.update(self._archives)
        return clone
