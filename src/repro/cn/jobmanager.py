"""JobManager: job creation, task placement, dependency-driven starts.

"A JobManager is selected based on User specified Job requirements from
the list of willing JobManagers.  The Job is subsequently created in the
selected JobManager.  ...  The JobManager solicits TaskManager for the
Tasks that requested to be created by the User program.  If a willing
TaskManager is found the JobManager will upload the JAR file to that
TaskManager." (paper section 3)

Placement policy: the JobManager multicasts a taskmanager solicitation
carrying the task's memory/runmodel requirements and picks the willing
responder with the most free memory (best-fit-decreasing spreads load
across nodes, which the placement benchmark measures).  The JobManager
also drives the dependency DAG: when a task completes, every dependent
whose dependencies are all complete is started automatically -- this is
the "transitions are triggered by internal task termination" semantics
the activity-diagram mapping relies on (paper section 4).
"""

from __future__ import annotations

import threading
from typing import Optional

from .errors import CnError, NoWillingTaskManager
from .job import Job, TaskRuntime, TaskSpec, TaskState
from .messages import Message, MessageType
from .multicast import MulticastBus, Solicitation
from .registry import TaskRegistry
from .runmodel import RunModel
from .taskmanager import TaskManager

__all__ = ["JobManager"]


class JobManager:
    """One node's job coordination component."""

    def __init__(
        self,
        name: str,
        bus: MulticastBus,
        registry: TaskRegistry,
        *,
        max_jobs: int = 16,
        local_taskmanager: Optional[TaskManager] = None,
    ) -> None:
        self.name = name
        self.bus = bus
        self.registry = registry
        self.max_jobs = max_jobs
        self.local_taskmanager = local_taskmanager
        self.jobs: dict[str, Job] = {}
        self._job_counter = 0
        self._lock = threading.RLock()
        self._taskmanagers: dict[str, TaskManager] = {}
        self._shutdown = False

    # -- discovery ---------------------------------------------------------
    def willing_to_manage(self, solicitation: Solicitation) -> Optional[dict]:
        """Respond to a multicast jobmanager solicitation (or decline)."""
        with self._lock:
            if self._shutdown:
                return None
            active = len([j for j in self.jobs.values() if not j.finished])
            if active >= self.max_jobs:
                return None
            wanted_tasks = int(solicitation.requirements.get("tasks", 0))
            # the offer advertises this manager's view of cluster capacity
            return {
                "manager": self.name,
                "active_jobs": active,
                "free_job_slots": self.max_jobs - active,
                "local_free_memory": (
                    self.local_taskmanager.free_memory if self.local_taskmanager else 0
                ),
                "wanted_tasks": wanted_tasks,
            }

    def register_taskmanager(self, tm: TaskManager) -> None:
        """Make *tm* known for direct upload after a successful solicit."""
        with self._lock:
            self._taskmanagers[tm.name] = tm

    # -- job lifecycle -----------------------------------------------------------
    def create_job(self, client_name: str) -> Job:
        with self._lock:
            if self._shutdown:
                raise CnError(f"JobManager {self.name!r} is shut down")
            self._job_counter += 1
            job_id = f"{self.name}-job{self._job_counter}"
            job = Job(job_id, client_name)
            self.jobs[job_id] = job
            return job

    def create_task(self, job: Job, spec: TaskSpec) -> TaskRuntime:
        """Place one task: solicit TaskManagers, upload, create queue."""
        runtime = job.add_task(spec)
        self._place(job, runtime)
        job.route(
            Message(
                MessageType.TASK_CREATED,
                sender=self.name,
                recipient="client",
                payload={"task": spec.name, "node": runtime.node_name},
            )
        )
        return runtime

    def _place(self, job: Job, runtime: TaskRuntime) -> None:
        spec = runtime.spec
        if spec.runmodel is RunModel.RUN_IN_JOBMANAGER and self.local_taskmanager:
            # coordinator-style task runs on this servant's own TM
            task_class = self.registry.resolve(spec.jar, spec.cls)
            self.local_taskmanager.host_task(job, runtime, task_class)
            return
        offers = self.bus.solicit(
            Solicitation(
                kind="taskmanager",
                requirements={
                    "memory": spec.memory,
                    "runmodel": spec.runmodel.value,
                    "jar": spec.jar,
                },
                sender=self.name,
            )
        )
        if not offers:
            raise NoWillingTaskManager(
                f"no TaskManager willing to host {spec.name!r} "
                f"(memory {spec.memory}, runmodel {spec.runmodel.value})"
            )
        # best fit: most free memory first; ties broken by name for determinism
        offers.sort(key=lambda item: (-item[1]["free_memory"], item[0]))
        tm_name = offers[0][1]["taskmanager"]
        tm = self._taskmanagers.get(tm_name)
        if tm is None:
            raise CnError(
                f"TaskManager {tm_name!r} responded on the bus but is not "
                f"registered with JobManager {self.name!r} for upload"
            )
        task_class = self.registry.resolve(spec.jar, spec.cls)  # "upload the JAR"
        tm.host_task(job, runtime, task_class)

    # -- starting & DAG driving ------------------------------------------------------
    def start_task(self, job: Job, name: str, *, claim_only: bool = False) -> bool:
        """Start one task explicitly (dependencies are not checked; the
        generated clients start roots and let completion drive the rest)."""
        runtime = job.task(name)
        tm = self._tm_for(runtime)
        return tm.start_task(
            job, name, on_terminal=self._on_terminal, claim_only=claim_only
        )

    def start_job(self, job: Job) -> None:
        """Start every dependency-free task; the completion callback
        cascades through the DAG."""
        ready = job.ready_tasks()
        if not ready and not job.finished:
            raise CnError(f"job {job.job_id} has no startable tasks")
        for runtime in ready:
            # claim_only: an already-finished task's completion callback
            # may have started this one a moment ago
            self.start_task(job, runtime.name, claim_only=True)

    def _on_terminal(self, job: Job, finished: TaskRuntime) -> None:
        if finished.state is TaskState.RETRYING:
            self._retry(job, finished)
            return
        if finished.state is not TaskState.COMPLETED:
            return  # failure/cancel: fail fast, do not cascade
        for runtime in job.ready_tasks():
            # benign race with start_job / sibling callbacks: claim_only
            # makes exactly one starter win
            self.start_task(job, runtime.name, claim_only=True)

    def _retry(self, job: Job, runtime: TaskRuntime) -> None:
        """Re-place and restart a failed task with retry budget left.

        The old hosting is evicted (its memory was released on failure)
        and placement is solicited afresh, so the retry may land on a
        different node -- the useful property when the failure was
        node-local.  Messages queued for the failed attempt are dropped
        with it: retried tasks start with a fresh queue, and peers that
        coordinate with them must tolerate re-requests (at-most-once
        delivery, documented on TaskContext)."""
        old_tm = self._taskmanagers.get(runtime.node_name or "")
        if old_tm is None and self.local_taskmanager is not None:
            if self.local_taskmanager.name == runtime.node_name:
                old_tm = self.local_taskmanager
        if old_tm is not None:
            old_tm.evict(job, runtime.name)
        try:
            self._place(job, runtime)
            self.start_task(job, runtime.name, claim_only=True)
        except CnError:
            runtime.state = TaskState.FAILED
            runtime.error = (
                (runtime.error or "")
                + f"\nretry placement failed for attempt {runtime.attempts + 1}"
            )
            try:
                job.route(
                    Message(
                        MessageType.TASK_FAILED,
                        sender=self.name,
                        recipient="client",
                        payload={"task": runtime.name, "error": runtime.error},
                    )
                )
            except Exception:
                pass
            job.note_terminal(runtime.name)

    def _tm_for(self, runtime: TaskRuntime) -> TaskManager:
        if runtime.node_name is None:
            raise CnError(f"task {runtime.name!r} has not been placed")
        tm = self._taskmanagers.get(runtime.node_name)
        if tm is None and self.local_taskmanager is not None:
            if self.local_taskmanager.name == runtime.node_name:
                tm = self.local_taskmanager
        if tm is None:
            raise CnError(f"unknown TaskManager {runtime.node_name!r}")
        return tm

    # -- status -----------------------------------------------------------------
    def query_status(self, job: Job) -> dict:
        """Answer a QUERY_STATUS request: per-task state and placement plus
        job-level summary.  A STATUS message with the same payload is also
        delivered to the client queue (the well-defined request/response
        pair of the CN message protocol)."""
        payload = {
            "job_id": job.job_id,
            "client": job.client_name,
            "finished": job.finished,
            "failed": job.failed is not None,
            "tasks": {
                name: {
                    "state": job.tasks[name].state.value,
                    "node": job.tasks[name].node_name,
                }
                for name in job.task_names()
            },
        }
        try:
            job.route(
                Message(
                    MessageType.STATUS,
                    sender=self.name,
                    recipient="client",
                    payload=payload,
                )
            )
        except Exception:
            pass  # job already torn down; the return value still answers
        return payload

    # -- cancellation / shutdown ---------------------------------------------------
    def cancel_job(self, job: Job) -> None:
        for name in job.task_names():
            runtime = job.task(name)
            if runtime.node_name is not None and not runtime.state.terminal:
                self._tm_for(runtime).cancel_task(job, name)

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            jobs = list(self.jobs.values())
        for job in jobs:
            if not job.finished:
                self.cancel_job(job)
            job.client_queue.close()

    def __repr__(self) -> str:
        return f"<JobManager {self.name!r} jobs={len(self.jobs)}>"
