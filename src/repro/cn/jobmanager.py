"""JobManager: job creation, task placement, dependency-driven starts.

"A JobManager is selected based on User specified Job requirements from
the list of willing JobManagers.  The Job is subsequently created in the
selected JobManager.  ...  The JobManager solicits TaskManager for the
Tasks that requested to be created by the User program.  If a willing
TaskManager is found the JobManager will upload the JAR file to that
TaskManager." (paper section 3)

Placement policy: the JobManager multicasts a taskmanager solicitation
carrying the task's memory/runmodel requirements and picks the willing
responder with the most free memory (best-fit-decreasing spreads load
across nodes, which the placement benchmark measures).  The JobManager
also drives the dependency DAG: when a task completes, every dependent
whose dependencies are all complete is started automatically -- this is
the "transitions are triggered by internal task termination" semantics
the activity-diagram mapping relies on (paper section 4).

Fault tolerance: a :class:`FailureDetector` tracks heartbeats from every
registered TaskManager (relayed off the multicast bus by the CNServer)
and declares a node dead after K consecutive missed beats.  Node death
triggers :meth:`handle_node_failure`, which evicts the node from the
placement pool and bulk-recovers its orphaned tasks through the same
:meth:`_recover` path individual task retries use -- re-place, replay
the message ledger, restart.  Retries back off exponentially with
deterministic seed-derived jitter (:class:`~repro.cn.chaos.ExponentialBackoff`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Optional

from ..analysis.conc.runtime import make_lock
from .chaos import ExponentialBackoff
from .durability import JobDirectory, ReplicatedJournal, replay_job
from .errors import CnError, NoWillingTaskManager, ShutdownError, UnknownTaskError
from .job import Job, TaskRuntime, TaskSpec, TaskState
from .messages import Message, MessageType
from .multicast import MulticastBus, Solicitation
from .registry import TaskRegistry
from .runmodel import RunModel
from .scheduler import PlacementRule, award_bids
from .taskmanager import TaskManager

__all__ = ["JobManager", "FailureDetector"]


class FailureDetector:
    """K-consecutive-missed-heartbeat failure detector.

    Each watched node has a miss counter; a heartbeat resets it, a tick
    without an intervening heartbeat increments it, and crossing
    ``k_misses`` declares the node dead.  A later heartbeat from a dead
    node (partition healed, node revived) resurrects it -- the classic
    eventually-perfect-detector behaviour: mistakes are possible but
    corrected.
    """

    def __init__(self, k_misses: int = 3) -> None:
        if k_misses < 1:
            raise ValueError(f"k_misses must be >= 1, got {k_misses}")
        self.k_misses = k_misses
        self._misses: dict[str, int] = {}
        self._beat_since_tick: dict[str, bool] = {}
        self._dead: set[str] = set()
        self._lock = make_lock("FailureDetector._lock", reentrant=False)

    def watch(self, node: str) -> None:
        with self._lock:
            self._misses.setdefault(node, 0)
            self._beat_since_tick.setdefault(node, True)

    def unwatch(self, node: str) -> None:
        with self._lock:
            self._misses.pop(node, None)
            self._beat_since_tick.pop(node, None)
            self._dead.discard(node)

    def beat(self, node: str) -> bool:
        """Record a heartbeat.  Returns True when this beat resurrects a
        node previously declared dead (a false positive being corrected)."""
        with self._lock:
            if node not in self._misses:
                return False
            self._misses[node] = 0
            self._beat_since_tick[node] = True
            if node in self._dead:
                self._dead.discard(node)
                return True
            return False

    def tick(self) -> list[str]:
        """One detection period: nodes silent since the last tick accrue a
        miss; returns the nodes newly declared dead on this tick."""
        newly_dead: list[str] = []
        with self._lock:
            for node in self._misses:
                if node in self._dead:
                    continue
                if self._beat_since_tick.get(node):
                    self._beat_since_tick[node] = False
                    continue
                self._misses[node] += 1
                if self._misses[node] >= self.k_misses:
                    self._dead.add(node)
                    newly_dead.append(node)
        return newly_dead

    def dead_nodes(self) -> set[str]:
        with self._lock:
            return set(self._dead)

    def misses(self, node: str) -> int:
        with self._lock:
            return self._misses.get(node, 0)


class JobManager:
    """One node's job coordination component."""

    def __init__(
        self,
        name: str,
        bus: MulticastBus,
        registry: TaskRegistry,
        *,
        max_jobs: int = 16,
        local_taskmanager: Optional[TaskManager] = None,
        failure_k: int = 3,
        retry_backoff: Optional[ExponentialBackoff] = None,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.name = name
        self.bus = bus
        self.registry = registry
        self.max_jobs = max_jobs
        self.local_taskmanager = local_taskmanager
        self.jobs: dict[str, Job] = {}
        self._job_counter = 0
        #: placement protocol: "solicit" (the paper's per-task multicast
        #: solicit->respond, the default) or "bid" (rule-based bidding --
        #: one rule per homogeneous batch, nodes score locally and bid,
        #: awards are a deterministic pure fold; see repro.cn.scheduler)
        self.scheduler = "solicit"
        self._rule_counter = 0
        self._lock = make_lock("JobManager._lock")
        self._taskmanagers: dict[str, TaskManager] = {}
        self._shutdown = False
        self.failure_detector = FailureDetector(failure_k)
        self.backoff = retry_backoff if retry_backoff is not None else ExponentialBackoff()
        self._sleeper = sleeper if sleeper is not None else time.sleep
        #: nodes this manager has declared dead and recovered from
        self.failed_nodes: list[str] = []
        #: write-ahead job journal (replicated); None = non-durable mode
        self.journal: Optional[ReplicatedJournal] = None
        #: journal group-commit: buffer up to this many delivery records
        #: per job before appending one delivery_batch (0 = write-ahead
        #: per fan-out, the default); flushed on every non-delivery
        #: journal event and on the cluster tick barrier
        self.journal_group_commit = 0
        #: cluster-wide job_id -> (manager, Job) map for client re-binding
        self.directory: Optional[JobDirectory] = None
        #: jobs this manager adopted from dead peers (failover audit trail)
        self.adopted_jobs: list[str] = []
        #: cluster Telemetry hub (set by Cluster/CNServer wiring); None or
        #: a disabled hub means zero instrumentation on every path below
        self.telemetry: Optional[Any] = None
        #: seal outbound frames with CRC digests on every job this
        #: manager creates or adopts (set by CNServer wiring)
        self.checksums = False

    # -- discovery ---------------------------------------------------------
    def willing_to_manage(self, solicitation: Solicitation) -> Optional[dict]:
        """Respond to a multicast jobmanager solicitation (or decline)."""
        with self._lock:
            if self._shutdown:
                return None
            active = len([j for j in self.jobs.values() if not j.finished])
            if active >= self.max_jobs:
                return None
            wanted_tasks = int(solicitation.requirements.get("tasks", 0))
            # the offer advertises this manager's view of cluster capacity
            return {
                "manager": self.name,
                "active_jobs": active,
                "free_job_slots": self.max_jobs - active,
                "local_free_memory": (
                    self.local_taskmanager.free_memory if self.local_taskmanager else 0
                ),
                "wanted_tasks": wanted_tasks,
            }

    def register_taskmanager(self, tm: TaskManager) -> None:
        """Make *tm* known for direct upload after a successful solicit."""
        with self._lock:
            self._taskmanagers[tm.name] = tm
        self.failure_detector.watch(tm.name)

    # -- failure detection -------------------------------------------------------
    def on_heartbeat(self, node: str) -> None:
        """A heartbeat arrived (relayed from the bus by the CNServer)."""
        self.failure_detector.beat(node)

    def on_tick(self) -> list[str]:
        """One failure-detection period; recovers from any node newly
        declared dead.  Returns those nodes' names."""
        # tick barrier: bound the group-commit durability window -- any
        # delivery records still buffered since the last tick land now
        with self._lock:
            jobs = list(self.jobs.values())
        for job in jobs:
            job.flush_deliveries()
        newly_dead = self.failure_detector.tick()
        for node in newly_dead:
            self.handle_node_failure(node)
        return newly_dead

    def handle_node_failure(self, node: str) -> None:
        """A TaskManager is dead: bulk-recover every unfinished task it
        was hosting.  The registration itself is kept -- placement
        filters on the detector's dead set, and a later resurrection
        (healed partition, revived node) makes the node placeable again
        without re-registration."""
        with self._lock:
            self.failed_nodes.append(node)
            jobs = [j for j in self.jobs.values() if not j.finished]
        for job in jobs:
            orphans = [
                rt
                for rt in (job.tasks[name] for name in job.task_names())
                if rt.node_name == node
                and not rt.state.terminal
                and rt.state is not TaskState.PENDING
            ]
            if not orphans:
                continue
            self._route_safe(
                job,
                Message(
                    MessageType.NODE_FAILED,
                    sender=self.name,
                    recipient="client",
                    payload={
                        "node": node,
                        "orphans": [rt.name for rt in orphans],
                    },
                ),
            )
            self._recover(job, orphans, reason="node-failure")
        # manager failover: if the dead node was itself managing jobs,
        # the deterministic successor (this manager, if lowest-ranked
        # survivor) adopts them by replaying the replicated journal
        self._adopt_from(node)

    # -- manager failover --------------------------------------------------------
    def _is_successor(self, dead_base: str) -> bool:
        """Deterministic successor election, no extra protocol: every
        survivor ranks the surviving node base-names and the lowest one
        adopts.  All detectors see the same dead set (same heartbeats,
        same K), so exactly one manager elects itself."""
        my_base = self.name.split("/")[0]
        with self._lock:
            watched = list(self._taskmanagers)
        dead = {n.split("/")[0] for n in self.failure_detector.dead_nodes()}
        dead.add(dead_base)
        if my_base in dead:
            return False
        survivors = {n.split("/")[0] for n in watched} - dead
        survivors.add(my_base)
        return min(sorted(survivors)) == my_base

    def _adopt_from(self, node: str) -> list[str]:
        """Adopt every in-flight job the dead *node*'s JobManager was
        managing (according to the replicated journal), if this manager
        is the elected successor.  Returns the adopted job ids."""
        if self.journal is None:
            return []
        dead_base = node.split("/")[0]
        if not self._is_successor(dead_base):
            return []
        adopted: list[str] = []
        for job_id in self.journal.jobs_managed_by(f"{dead_base}/jm"):
            with self._lock:
                if self._shutdown or job_id in self.jobs:
                    continue
            try:
                self.adopt_job(job_id)
            except CnError:
                continue  # placement wholesale failure; job marked failed
            adopted.append(job_id)
        return adopted

    def adopt_job(self, job_id: str) -> Job:
        """Take over *job_id* from a dead manager: replay the journal into
        a fresh Job, fence the dead manager with a bumped manager epoch,
        evict its zombie hostings, re-place the unfinished tasks (message
        ledger replayed, checkpoints restored), and re-bind the client's
        handle through the directory."""
        journal = self.journal
        if journal is None:
            raise CnError(f"JobManager {self.name!r} has no journal to replay")
        snapshot = replay_job(job_id, journal.records(job_id))
        job = Job(job_id, snapshot.client)
        job.manager_epoch = snapshot.mepoch + 1
        # the budget survives failover: the successor enforces the same
        # absolute deadline the dead manager journaled at creation
        job.deadline = snapshot.deadline
        job.checksums = self.checksums
        with self._lock:
            if self._shutdown:
                raise CnError(f"JobManager {self.name!r} is shut down")
            self.jobs[job_id] = job
            self.adopted_jobs.append(job_id)
        job.set_telemetry(self._hub())
        t = job.telemetry
        adopt_start = t.now() if t is not None else 0.0
        self._bind_journal(job)
        # fence first: once this record lands, any append still stamped
        # with the dead manager's epoch is rejected by every backend
        job.journal_event(
            "job-adopted", {"manager": self.name, "previous": snapshot.manager}
        )
        # rebuild the roster exactly as journaled
        for name in snapshot.order:
            if t is not None:
                # idempotent: the recorder is cluster-global, so spans the
                # dead manager already began are reused, not duplicated --
                # the adopted job keeps its one trace across manager epochs
                self._begin_task_span(t, job, name, snapshot.specs[name].depends)
            runtime = job.add_task(snapshot.specs[name])
            runtime.attempts = snapshot.attempts.get(name, 0)
            # restoring the highest journaled placement epoch guarantees
            # re-hosted attempts get strictly larger epochs than any
            # zombie attempt still running somewhere
            runtime.epoch = snapshot.epochs.get(name, 0)
            runtime.node_name = snapshot.nodes.get(name)
            state = TaskState(snapshot.states.get(name, TaskState.PENDING.value))
            if state.terminal:
                runtime.state = state
                runtime.result = snapshot.results.get(name)
                runtime.error = snapshot.errors.get(name)
        job.restore_deliveries(snapshot.deliveries, snapshot.gc_watermarks)
        job.restore_checkpoints(snapshot.checkpoints)
        job.restore_dead_letters(snapshot.dead_letters)
        # migrate the client conduit: drain the dead manager's client
        # queue into the new job's (trace history survives), close the
        # old one so zombie notifications surface as undeliverable
        old_entry = self.directory.lookup(job_id) if self.directory else None
        if old_entry is not None and old_entry.job is not job:
            for message in old_entry.job.client_queue.drain():
                job.client_queue.put(message)
            old_entry.job.client_queue.close()
        if self.directory is not None:
            self.directory.register(job_id, self, job, epoch=job.manager_epoch)
        pending = [job.tasks[name] for name in snapshot.pending_tasks()]
        self._route_safe(
            job,
            Message(
                MessageType.MANAGER_ADOPTED,
                sender=self.name,
                recipient="client",
                payload={
                    "job_id": job_id,
                    "manager": self.name,
                    "previous": snapshot.manager,
                    "manager_epoch": job.manager_epoch,
                    "replayed_records": len(journal.records(job_id)),
                    "re_placing": [rt.name for rt in pending],
                },
            ),
        )
        # terminal tasks are already done; let the job notice them so a
        # fully-finished roster flips the finished event immediately
        for name in snapshot.terminal_tasks():
            job.note_terminal(name)
        # the dead manager may have placed attempts on nodes that are
        # still alive: evict them so the epoch fence retires them
        with self._lock:
            taskmanagers = list(self._taskmanagers.values())
        for tm in taskmanagers:
            if not tm.crashed:
                tm.evict_job(job_id)
        if self.local_taskmanager is not None and not self.local_taskmanager.crashed:
            self.local_taskmanager.evict_job(job_id)
        self._recover(job, pending, reason="adoption")
        if t is not None:
            t.spans.record(
                job_id,
                f"adopt#{job.manager_epoch}",
                start=adopt_start,
                end=t.now(),
                name=f"adopt by {self.name}",
                kind="adopt",
                parent_id="job",
                node=self.name.split("/")[0],
                manager=self.name,
                previous=snapshot.manager,
                manager_epoch=job.manager_epoch,
            )
            t.metrics.counter("cn_adoptions_total", manager=self.name).inc()
        return job

    # -- telemetry helpers -------------------------------------------------------
    def _hub(self) -> Optional[Any]:
        """The active Telemetry hub, or None when disabled."""
        t = self.telemetry
        return t if t is not None and t.enabled else None

    def _begin_task_span(self, t: Any, job: Job, name: str, depends) -> None:
        """Ensure the job root + one task span exist, and record the DAG
        edge on the root's ``deps`` attr (exported traces stay
        self-contained for the critical-path CLI)."""
        root = t.spans.begin(
            job.job_id, "job", name=job.job_id, kind="job", client=job.client_name
        )
        root.attrs.setdefault("deps", {})[name] = list(depends)
        t.spans.begin(
            job.job_id,
            f"task:{name}",
            name=name,
            kind="task",
            parent_id="job",
            task=name,
        )

    # -- durability helpers ------------------------------------------------------
    def _bind_journal(self, job: Job) -> None:
        """Attach this manager's replicated journal to *job*: every event
        the job emits is stamped with the job's current manager epoch."""
        journal = self.journal
        if journal is None:
            return
        job.set_journal(
            lambda kind, data: journal.append(
                job.job_id, kind, data, job.manager_epoch
            )
        )
        if self.journal_group_commit:
            job.set_delivery_batching(self.journal_group_commit)

    # -- job lifecycle -----------------------------------------------------------
    def create_job(
        self,
        client_name: str,
        *,
        descriptor: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Job:
        with self._lock:
            if self._shutdown:
                raise CnError(f"JobManager {self.name!r} is shut down")
            self._job_counter += 1
            job_id = f"{self.name}-job{self._job_counter}"
            job = Job(job_id, client_name)
            job.deadline = deadline
            job.checksums = self.checksums
            self.jobs[job_id] = job
        job.set_telemetry(self._hub())
        t = job.telemetry
        if t is not None:
            t.spans.begin(
                job_id,
                "job",
                name=job_id,
                kind="job",
                node=self.name.split("/")[0],
                client=client_name,
            )
            t.metrics.counter("cn_jobs_created_total", manager=self.name).inc()
        self._bind_journal(job)
        job.journal_event(
            "job-created",
            {
                "client": client_name,
                "manager": self.name,
                "descriptor": descriptor,
                "deadline": deadline,
            },
        )
        if self.directory is not None:
            self.directory.register(job_id, self, job, epoch=job.manager_epoch)
        return job

    def create_task(self, job: Job, spec: TaskSpec) -> TaskRuntime:
        """Place one task: solicit TaskManagers, upload, create queue."""
        return self.create_tasks(job, [spec])[0]

    def create_tasks(self, job: Job, specs: Iterable[TaskSpec]) -> list[TaskRuntime]:
        """Place a batch of tasks in one call.

        Under the solicit scheduler this is exactly the per-task loop the
        paper describes.  Under the bid scheduler tasks sharing a template
        (jar, class, memory, runmodel) are placed through a single
        rule/bid/award round instead of one solicitation each -- the whole
        point of rule-based scheduling -- and the TASK_CREATED
        notifications fan out through one ``route_many`` batch.
        """
        specs = list(specs)
        runtimes: list[TaskRuntime] = []
        t = job.telemetry
        for spec in specs:
            runtime = job.add_task(spec)
            if t is not None:
                self._begin_task_span(t, job, spec.name, spec.depends)
            # write-ahead: the spec is journaled before placement, so a
            # successor knows the full roster even if we die mid-placement
            job.journal_event("task-spec", {"spec": spec})
            runtimes.append(runtime)
        if self.scheduler == "bid" and len(runtimes) > 1:
            groups: dict[tuple, list[TaskRuntime]] = {}
            for runtime in runtimes:
                spec = runtime.spec
                if spec.runmodel is RunModel.RUN_IN_JOBMANAGER:
                    # coordinator tasks stay local in both modes
                    self._place(job, runtime)
                    continue
                key = (spec.jar, spec.cls, spec.memory, spec.runmodel)
                groups.setdefault(key, []).append(runtime)
            for group in groups.values():
                self._place_group(job, group)
        else:
            for runtime in runtimes:
                self._place(job, runtime)
        notifications: list[Message] = []
        for runtime in runtimes:
            if job.has_ledgered(runtime.name):
                # messages routed to this task before it had a queue (the
                # placement window) were ledgered instead of raising at
                # the sender; deliver them now that the queue exists
                job.replay_into(runtime.name)
            notifications.append(
                Message(
                    MessageType.TASK_CREATED,
                    sender=self.name,
                    recipient="client",
                    payload={"task": runtime.name, "node": runtime.node_name},
                )
            )
        job.route_many(notifications)
        return runtimes

    def _place(self, job: Job, runtime: TaskRuntime) -> None:
        t = job.telemetry
        if t is None:
            self._place_inner(job, runtime)
            return
        start = t.now()
        counter = t.metrics.counter("cn_placements_total", manager=self.name)
        try:
            self._place_inner(job, runtime)
        finally:
            counter.inc()
            t.metrics.histogram("cn_placement_seconds").observe(t.now() - start)
            # epoch was bumped by host_task on success, so each effective
            # placement round gets a distinct span under the task span
            t.spans.record(
                job.job_id,
                f"place:{runtime.name}#{runtime.epoch}",
                start=start,
                end=t.now(),
                name=f"place {runtime.name}",
                kind="place",
                parent_id=f"task:{runtime.name}",
                node=runtime.node_name,
                task=runtime.name,
                epoch=runtime.epoch,
            )

    def _place_inner(self, job: Job, runtime: TaskRuntime) -> None:
        spec = runtime.spec
        if spec.runmodel is RunModel.RUN_IN_JOBMANAGER and self.local_taskmanager:
            # coordinator-style task runs on this servant's own TM
            task_class = self.registry.resolve(spec.jar, spec.cls)
            self.local_taskmanager.host_task(job, runtime, task_class)
            job.journal_event(
                "task-placed",
                {"task": spec.name, "node": runtime.node_name, "epoch": runtime.epoch},
            )
            return
        if self.scheduler == "bid":
            # the paper's protocol as the degenerate 1-task rule: retries
            # and failover re-placement funnel through here, so every
            # recovery path re-places from rules too
            self._place_rule(job, [runtime])
            return
        offers = self.bus.solicit(
            Solicitation(
                kind="taskmanager",
                requirements={
                    "memory": spec.memory,
                    "runmodel": spec.runmodel.value,
                    "jar": spec.jar,
                },
                sender=self.name,
            )
        )
        # a dead node's stale offer must not win placement
        dead = self.failure_detector.dead_nodes()
        offers = [o for o in offers if o[1]["taskmanager"] not in dead]
        if not offers:
            raise NoWillingTaskManager(
                f"no TaskManager willing to host {spec.name!r} "
                f"(memory {spec.memory}, runmodel {spec.runmodel.value})"
            )
        # best fit: most free memory first; ties broken by name for determinism
        offers.sort(key=lambda item: (-item[1]["free_memory"], item[0]))
        tm_name = offers[0][1]["taskmanager"]
        tm = self._tm_lookup(tm_name)
        if tm is None:
            raise CnError(
                f"TaskManager {tm_name!r} responded on the bus but is not "
                f"registered with JobManager {self.name!r} for upload"
            )
        task_class = self.registry.resolve(spec.jar, spec.cls)  # "upload the JAR"
        tm.host_task(job, runtime, task_class)
        job.journal_event(
            "task-placed",
            {"task": spec.name, "node": runtime.node_name, "epoch": runtime.epoch},
        )

    def _place_group(self, job: Job, runtimes: list[TaskRuntime]) -> None:
        """Telemetry wrapper around a batched rule placement (mirrors
        :meth:`_place` for the per-task path)."""
        t = job.telemetry
        if t is None:
            self._place_rule(job, runtimes)
            return
        start = t.now()
        try:
            self._place_rule(job, runtimes)
        finally:
            end = t.now()
            t.metrics.counter("cn_placements_total", manager=self.name).inc(
                len(runtimes)
            )
            t.metrics.histogram("cn_placement_seconds").observe(end - start)
            for runtime in runtimes:
                t.spans.record(
                    job.job_id,
                    f"place:{runtime.name}#{runtime.epoch}",
                    start=start,
                    end=end,
                    name=f"place {runtime.name}",
                    kind="place",
                    parent_id=f"task:{runtime.name}",
                    node=runtime.node_name,
                    task=runtime.name,
                    epoch=runtime.epoch,
                )

    def _place_rule(self, job: Job, runtimes: list[TaskRuntime]) -> None:
        """Place a template-homogeneous batch through rule/bid/award.

        One :class:`~repro.cn.scheduler.PlacementRule` describing the
        whole batch is multicast; every node scores it locally (capacity,
        free memory, load, archive/producer locality) and answers with a
        single bid; :func:`~repro.cn.scheduler.award_bids` converts the
        bids into awards deterministically.  Awards are epoch-fenced: the
        task epoch only advances on a successful ``host_task``, so a node
        that dies between bid and award simply fails the award and the
        task re-enters the next bidding round -- a zombie attempt can
        never double-place because its epoch never advanced.
        """
        spec0 = runtimes[0].spec
        by_name = {rt.name: rt for rt in runtimes}
        depends = tuple(sorted({d for rt in runtimes for d in rt.spec.depends}))
        with self._lock:
            self._rule_counter += 1
            seq = self._rule_counter
        t = job.telemetry
        task_class = self.registry.resolve(spec0.jar, spec0.cls)  # "upload the JAR"
        pending = [rt.name for rt in runtimes]
        excluded: set[str] = set()  # bidders that failed an award this placement
        round_no = 0
        while pending:
            round_no += 1
            rule = PlacementRule(
                rule_id=f"{job.job_id}/rule{seq}.{round_no}",
                job_id=job.job_id,
                manager=self.name,
                jar=spec0.jar,
                cls=spec0.cls,
                memory=spec0.memory,
                runmodel=spec0.runmodel.value,
                tasks=tuple(pending),
                depends=depends,
                manager_epoch=job.manager_epoch,
            )
            responses = self.bus.solicit(
                Solicitation(kind="rule", requirements={"rule": rule}, sender=self.name)
            )
            # a dead node's stale bid must not win an award, and a bidder
            # that already failed an award this placement is distrusted
            dead = self.failure_detector.dead_nodes()
            bids = [
                bid
                for _, bid in responses
                if bid.taskmanager not in dead and bid.taskmanager not in excluded
            ]
            if t is not None:
                t.metrics.counter("cn_rules_published_total", manager=self.name).inc()
                t.metrics.counter("cn_bids_total", manager=self.name).inc(len(bids))
            awards, unplaced = award_bids(rule, bids)
            if not awards:
                raise NoWillingTaskManager(
                    f"no TaskManager bid to host {pending!r} "
                    f"(memory {spec0.memory}, runmodel {spec0.runmodel.value})"
                )
            if t is not None:
                t.metrics.counter("cn_awards_total", manager=self.name).inc(
                    len(awards)
                )
            failed: list[str] = []
            for task_name, tm_name in awards:
                runtime = by_name[task_name]
                tm = self._tm_lookup(tm_name)
                if tm is None:
                    excluded.add(tm_name)
                    failed.append(task_name)
                    continue
                try:
                    tm.host_task(job, runtime, task_class)
                except (ShutdownError, CnError):
                    # killed (or filled up) between bid and award: exclude
                    # the bidder and re-bid; the epoch fence makes this
                    # safe against double placement
                    excluded.add(tm_name)
                    failed.append(task_name)
                    continue
                job.journal_event(
                    "task-placed",
                    {
                        "task": task_name,
                        "node": runtime.node_name,
                        "epoch": runtime.epoch,
                        "rule": rule.rule_id,
                    },
                )
            # progress each round: either a task placed (pending shrinks)
            # or a bidder was excluded (bid pool shrinks) -- and an empty
            # award set raises above, so the loop terminates
            pending = failed + unplaced

    # -- starting & DAG driving ------------------------------------------------------
    def start_task(self, job: Job, name: str, *, claim_only: bool = False) -> bool:
        """Start one task explicitly (dependencies are not checked; the
        generated clients start roots and let completion drive the rest).

        Under ``claim_only`` a hosting that vanished between placement and
        start (node crash) is not an error -- the task is simply not
        started here; recovery will re-place and start it."""
        runtime = job.task(name)
        try:
            tm = self._tm_for(runtime)
        except CnError:
            if claim_only:
                return False
            raise
        try:
            return tm.start_task(
                job, name, on_terminal=self._on_terminal, claim_only=claim_only
            )
        except (CnError, ShutdownError):
            if claim_only:
                return False
            raise

    def start_job(self, job: Job) -> None:
        """Start every dependency-free task; the completion callback
        cascades through the DAG."""
        ready = job.ready_tasks()
        if not ready and not job.finished:
            raise CnError(f"job {job.job_id} has no startable tasks")
        for runtime in ready:
            # claim_only: an already-finished task's completion callback
            # may have started this one a moment ago
            self.start_task(job, runtime.name, claim_only=True)

    def _journal_task_state(self, job: Job, runtime: TaskRuntime) -> None:
        data: dict = {
            "task": runtime.name,
            "state": runtime.state.value,
            "attempts": runtime.attempts,
        }
        if runtime.state is TaskState.COMPLETED:
            data["result"] = runtime.result
        if runtime.error:
            data["error"] = runtime.error
        job.journal_event("task-state", data)
        # computed from the roster, not job.finished: the journal write must
        # land before note_terminal flips the finished event (write-ahead --
        # a woken client may tear the cluster down immediately)
        failed = job.failed is not None or runtime.state is TaskState.FAILED
        if failed or all(t.state.terminal for t in job.tasks.values()):
            job.journal_event("job-finished", {"failed": failed})

    def _on_terminal(self, job: Job, finished: TaskRuntime) -> None:
        self._journal_task_state(job, finished)
        if finished.state is TaskState.RETRYING:
            self._retry(job, finished)
            return
        if finished.state is not TaskState.COMPLETED:
            return  # failure/cancel: fail fast, do not cascade
        for runtime in job.ready_tasks():
            # benign race with start_job / sibling callbacks: claim_only
            # makes exactly one starter win
            self.start_task(job, runtime.name, claim_only=True)

    def _retry(self, job: Job, runtime: TaskRuntime) -> None:
        """Re-place and restart a failed task with retry budget left."""
        self._recover(job, [runtime], reason="retry")

    def _recover(
        self, job: Job, runtimes: Iterable[TaskRuntime], *, reason: str
    ) -> None:
        """The single recovery path for retries, deadline expiries, and
        node failures: evict the old hosting, back off (retries only),
        re-place via fresh solicitation, replay the task's message ledger
        into the new queue, and restart whatever became ready.

        The re-placement may land on a different node -- the useful
        property when the failure was node-local.  Replay makes delivery
        at-least-once across attempts; peers must tolerate duplicates
        (documented on TaskContext)."""
        recovered: list[TaskRuntime] = []
        t = job.telemetry
        for runtime in runtimes:
            if runtime.state.terminal:
                continue
            if t is not None:
                t.metrics.counter("cn_recoveries_total", reason=reason).inc()
            old_tm = self._tm_lookup(runtime.node_name or "")
            if old_tm is not None:
                old_tm.evict(job, runtime.name)
            if reason == "retry":
                # exponential backoff with deterministic jitter between
                # attempts; sleeper is injectable so tests don't wait
                delay = self.backoff.delay(runtime.attempts + 1, key=runtime.name)
                if delay > 0:
                    self._sleeper(delay)
            runtime.state = TaskState.PENDING
            try:
                self._place(job, runtime)
            except CnError:
                runtime.state = TaskState.FAILED
                runtime.error = (
                    (runtime.error or "")
                    + f"\n{reason}: re-placement failed for attempt "
                    f"{runtime.attempts + 1} (no willing TaskManager)"
                )
                self._route_safe(
                    job,
                    Message(
                        MessageType.TASK_FAILED,
                        sender=self.name,
                        recipient="client",
                        payload={"task": runtime.name, "error": runtime.error},
                    ),
                )
                self._journal_task_state(job, runtime)
                job.note_terminal(runtime.name)
                continue
            job.replay_into(runtime.name)
            recovered.append(runtime)
        ready = {rt.name for rt in job.ready_tasks()}
        for runtime in recovered:
            if runtime.name in ready:
                self.start_task(job, runtime.name, claim_only=True)

    def _route_safe(self, job: Job, message: Message) -> None:
        """Route a notification, recording (not swallowing silently) the
        cases where the job side is already torn down."""
        try:
            job.route(message)
        except (ShutdownError, UnknownTaskError) as exc:
            from .trace import note_undeliverable  # local: trace imports api

            note_undeliverable(job.job_id, message, exc)

    def _tm_lookup(self, node_name: str) -> Optional[TaskManager]:
        with self._lock:
            tm = self._taskmanagers.get(node_name)
        if tm is None and self.local_taskmanager is not None:
            if self.local_taskmanager.name == node_name:
                tm = self.local_taskmanager
        return tm

    def _tm_for(self, runtime: TaskRuntime) -> TaskManager:
        if runtime.node_name is None:
            raise CnError(f"task {runtime.name!r} has not been placed")
        tm = self._tm_lookup(runtime.node_name)
        if tm is None:
            raise CnError(f"unknown TaskManager {runtime.node_name!r}")
        return tm

    # -- status -----------------------------------------------------------------
    def query_status(self, job: Job) -> dict:
        """Answer a QUERY_STATUS request: per-task state and placement plus
        job-level summary.  A STATUS message with the same payload is also
        delivered to the client queue (the well-defined request/response
        pair of the CN message protocol)."""
        payload = {
            "job_id": job.job_id,
            "client": job.client_name,
            "finished": job.finished,
            "failed": job.failed is not None,
            "tasks": {
                name: {
                    "state": job.tasks[name].state.value,
                    "node": job.tasks[name].node_name,
                }
                for name in job.task_names()
            },
        }
        # job already torn down: the return value still answers, but the
        # undelivered STATUS is recorded rather than silently dropped
        self._route_safe(
            job,
            Message(
                MessageType.STATUS,
                sender=self.name,
                recipient="client",
                payload=payload,
            ),
        )
        return payload

    # -- cancellation / shutdown ---------------------------------------------------
    def cancel_job(self, job: Job) -> None:
        for name in job.task_names():
            runtime = job.task(name)
            if runtime.node_name is not None and not runtime.state.terminal:
                tm = self._tm_lookup(runtime.node_name)
                if tm is not None:
                    tm.cancel_task(job, name)

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            jobs = list(self.jobs.values())
        for job in jobs:
            if not job.finished:
                self.cancel_job(job)
            job.client_queue.close()

    def __repr__(self) -> str:
        return f"<JobManager {self.name!r} jobs={len(self.jobs)}>"
