"""Per-task message queues.

"TaskManager ... sets up a message queue for each Task and then executes
each Task in a separate thread" (paper section 3).  The queue is a FIFO
of :class:`Message` adding close semantics (a closed queue unblocks
waiters with :class:`~repro.cn.errors.ShutdownError`) and selective
receive (wait for a message matching a predicate while buffering the
rest), which tasks like the Floyd workers use to pull the k-th row
broadcast out of order from result traffic.

Queues may be *bounded* (``maxsize`` > 0) with an explicit backpressure
policy chosen at construction:

``block``
    producers wait until a consumer makes room (or the queue closes);
``reject``
    producers get :class:`~repro.cn.errors.Overloaded` immediately,
    carrying the depth/capacity so callers can back off;
``shed_oldest``
    the oldest undelivered message is evicted to admit the new one; the
    eviction is reported through the ``on_shed`` callback (invoked
    *after* the queue lock is released) so the owner can journal a
    ``shed`` record and the delivery ledger can replay it later --
    shedding trades latency for loss only if nobody journals.

The default stays unbounded for seed compatibility.  Capacity counts
only undelivered buffered messages: the selective-receive stash is
consumer-side (already delivered once), and chaos-delayed messages are
in-flight on the simulated link.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from ..analysis.conc.runtime import make_condition
from .errors import MessageTimeout, Overloaded, ShutdownError
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .chaos import ChaosPolicy

__all__ = ["MessageQueue", "QUEUE_POLICIES"]

QUEUE_POLICIES = ("block", "reject", "shed_oldest")


class MessageQueue:
    """FIFO of :class:`Message` with close, bounds, and selective recv.

    An optional :class:`~repro.cn.chaos.ChaosPolicy` makes the queue a
    fault site: each ``put`` may be dropped (lossy link) or delayed
    (the message is held back and delivered just after the *next*
    successful put -- a deterministic reordering).  Fate decisions are
    keyed by the per-queue delivery index, so a fixed chaos seed injects
    the same faults on every run.
    """

    def __init__(
        self,
        owner: str,
        *,
        maxsize: int = 0,
        policy: str = "block",
        on_shed: Optional[Callable[[Message], None]] = None,
        chaos: "Optional[ChaosPolicy]" = None,
    ) -> None:
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        self.owner = owner
        self.maxsize = int(maxsize)
        self.policy = policy
        self._on_shed = on_shed
        self._cond = make_condition("MessageQueue._cond")
        self._buffer: deque[Message] = deque()
        self._stash: list[Message] = []
        self._closed = False
        self._chaos = chaos
        self._put_index = 0
        self._delayed: list[Message] = []
        #: deepest the queue has ever been (telemetry samplers read this;
        #: a high watermark survives the drain that a point-in-time depth
        #: gauge would miss)
        self.high_watermark = 0
        #: producers refused under the ``reject`` policy
        self.rejected = 0
        #: messages evicted under the ``shed_oldest`` policy
        self.shed = 0

    # -- producer side -----------------------------------------------------
    def put(self, message: Message) -> None:
        shed = self._put_locked(message, note_depth=True)
        self._dispatch_shed(shed)

    def put_many(self, messages: list[Message]) -> int:
        """Deliver a batch into the queue; returns how many were accepted.

        Each message still rolls its *own* chaos fate (drop/delay are
        per-delivery decisions keyed by the per-queue index, exactly as
        if :meth:`put` had been called per message), but the depth
        high-watermark is noted exactly once per batch.  Stops early and
        returns the partial count if the queue closes mid-batch."""
        delivered = 0
        shed: list[Message] = []
        try:
            for message in messages:
                try:
                    shed.extend(self._put_locked(message, note_depth=False))
                except ShutdownError:
                    break
                delivered += 1
        finally:
            with self._cond:
                self._note_depth_locked()
            self._dispatch_shed(shed)
        return delivered

    def _put_locked(self, message: Message, *, note_depth: bool) -> list[Message]:
        """Admit one message; returns evicted messages for the caller to
        report *after* the queue lock is released (journaling or user
        callbacks must never run under the lock)."""
        fate = "deliver"
        chaotic = self._chaos is not None and self._chaos.enabled
        if chaotic:
            with self._cond:
                if self._closed:
                    raise ShutdownError(f"queue for {self.owner!r} is closed")
                self._put_index += 1
                index = self._put_index
            fate = self._chaos.queue_fate(self.owner, index)
            if fate == "drop":
                return []
        shed: list[Message] = []
        with self._cond:
            if self._closed:
                raise ShutdownError(f"queue for {self.owner!r} is closed")
            if fate == "delay":
                self._delayed.append(message)
                return []
            self._admit_locked(message, shed)
            if chaotic and self._delayed:
                # a successful delivery releases every held-back message
                # (deterministic reordering); under a full `reject` queue
                # they simply stay held until a later put finds room.
                held, self._delayed = self._delayed, []
                for i, late in enumerate(held):
                    if (
                        self.maxsize
                        and self.policy == "reject"
                        and len(self._buffer) >= self.maxsize
                    ):
                        self._delayed[:0] = held[i:]
                        break
                    self._admit_locked(late, shed)
            if note_depth:
                self._note_depth_locked()
            self._cond.notify_all()
        return shed

    def _admit_locked(self, message: Message, shed_out: list[Message]) -> None:
        """Apply the backpressure policy, then append.  Caller holds
        ``_cond``; evictions accumulate in *shed_out* for post-release
        dispatch."""
        if self.maxsize and len(self._buffer) >= self.maxsize:
            if self.policy == "reject":
                self.rejected += 1
                raise Overloaded(
                    self.owner, depth=len(self._buffer), maxsize=self.maxsize
                )
            if self.policy == "shed_oldest":
                while len(self._buffer) >= self.maxsize:
                    shed_out.append(self._buffer.popleft())
                    self.shed += 1
            else:  # block: wait for a consumer to make room
                while len(self._buffer) >= self.maxsize and not self._closed:
                    self._cond.wait()
                if self._closed:
                    raise ShutdownError(f"queue for {self.owner!r} is closed")
        self._buffer.append(message)  # conclint: waive CC101 -- callers hold _cond (documented contract)

    def _dispatch_shed(self, shed: list[Message]) -> None:
        if not shed or self._on_shed is None:
            return
        for message in shed:
            self._on_shed(message)

    def _note_depth_locked(self) -> None:
        depth = len(self._stash) + len(self._buffer) + len(self._delayed)
        if depth > self.high_watermark:
            self.high_watermark = depth

    def close(self) -> None:
        """Close the queue; pending and future getters raise ShutdownError
        once the already-buffered messages have been drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- consumer side -------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Message:
        """Next message in arrival order (stashed messages first)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._stash:
                    return self._stash.pop(0)
                if self._buffer:
                    message = self._buffer.popleft()
                    self._cond.notify_all()
                    return message
                if self._closed:
                    raise ShutdownError(
                        f"queue for {self.owner!r} closed while waiting"
                    )
                self._wait_locked(deadline, timeout)

    def get_matching(
        self,
        predicate: Callable[[Message], bool],
        timeout: Optional[float] = None,
    ) -> Message:
        """Next message satisfying *predicate*; non-matching messages are
        stashed and later returned by :meth:`get` in their original order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            for index, message in enumerate(self._stash):
                if predicate(message):
                    return self._stash.pop(index)
            while True:
                while self._buffer:
                    message = self._buffer.popleft()
                    self._cond.notify_all()
                    if predicate(message):
                        return message
                    self._stash.append(message)
                if self._closed:
                    raise ShutdownError(
                        f"queue for {self.owner!r} closed while waiting"
                    )
                self._wait_locked(deadline, timeout)

    def _wait_locked(self, deadline: Optional[float], timeout: Optional[float]) -> None:
        """One bounded wait for new arrivals; caller holds ``_cond`` and
        loops re-checking state after every wake-up."""
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._cond.wait(remaining):
            raise MessageTimeout(
                f"no message for {self.owner!r} within {timeout}s"
            )

    def drain(self) -> list[Message]:
        """All currently queued messages without blocking (including any
        chaos-delayed messages still held back)."""
        with self._cond:
            out: list[Message] = list(self._stash)
            self._stash.clear()
            out.extend(self._buffer)
            self._buffer.clear()
            out.extend(self._delayed)
            self._delayed.clear()
            self._cond.notify_all()
            return out

    def __len__(self) -> int:
        with self._cond:
            return len(self._stash) + len(self._buffer) + len(self._delayed)
