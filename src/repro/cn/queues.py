"""Per-task message queues.

"TaskManager ... sets up a message queue for each Task and then executes
each Task in a separate thread" (paper section 3).  The queue is a FIFO
of :class:`Message` adding close semantics (a closed queue unblocks
waiters with :class:`~repro.cn.errors.ShutdownError`) and selective
receive (wait for a message matching a predicate while buffering the
rest), which tasks like the Floyd workers use to pull the k-th row
broadcast out of order from result traffic.

Queues may be *bounded* (``maxsize`` > 0) with an explicit backpressure
policy chosen at construction:

``block``
    producers wait until a consumer makes room (or the queue closes);
``reject``
    producers get :class:`~repro.cn.errors.Overloaded` immediately,
    carrying the depth/capacity so callers can back off;
``shed_oldest``
    the oldest undelivered message is evicted to admit the new one; the
    eviction is reported through the ``on_shed`` callback (invoked
    *after* the queue lock is released) so the owner can journal a
    ``shed`` record and the delivery ledger can replay it later --
    shedding trades latency for loss only if nobody journals.

The default stays unbounded for seed compatibility.  Capacity counts
only undelivered buffered messages: the selective-receive stash is
consumer-side (already delivered once), and chaos-delayed messages are
in-flight on the simulated link.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from ..analysis.conc.runtime import make_condition
from .errors import MessageTimeout, Overloaded, ShutdownError
from .messages import Message, corrupt_copy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .chaos import ChaosPolicy

__all__ = ["MessageQueue", "QUEUE_POLICIES"]

QUEUE_POLICIES = ("block", "reject", "shed_oldest")


class MessageQueue:
    """FIFO of :class:`Message` with close, bounds, and selective recv.

    An optional :class:`~repro.cn.chaos.ChaosPolicy` makes the queue a
    fault site: each ``put`` may be dropped (lossy link), delayed (held
    back and delivered just after the *next* successful put), duplicated
    (admitted twice, the at-least-once retransmit), reordered (held back
    for ``reorder_hold`` successful puts -- a bounded reordering), or
    corrupted (the payload is damaged in flight).  Fate decisions are
    keyed by the per-queue delivery index, so a fixed chaos seed injects
    the same faults on every run.

    With ``verify_digests=True`` every dequeued message carrying a
    digest is re-checksummed; a mismatch is *quarantined* -- counted in
    ``poisoned``, reported through ``on_poison`` (invoked after the
    queue lock is released), and never handed to the consumer -- so a
    corrupt frame degrades to a per-job dead-letter record instead of
    crashing the task that would have deserialized it.
    """

    def __init__(
        self,
        owner: str,
        *,
        maxsize: int = 0,
        policy: str = "block",
        on_shed: Optional[Callable[[Message], None]] = None,
        chaos: "Optional[ChaosPolicy]" = None,
        verify_digests: bool = False,
        on_poison: Optional[Callable[[Message], None]] = None,
    ) -> None:
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        self.owner = owner
        self.maxsize = int(maxsize)
        self.policy = policy
        self._on_shed = on_shed
        self._cond = make_condition("MessageQueue._cond")
        self._buffer: deque[Message] = deque()
        self._stash: list[Message] = []
        self._closed = False
        self._chaos = chaos
        # fate namespace: re-placed incarnations of the same owner roll
        # fresh fates (a retransmitted delivery re-rolls its luck)
        self._fate_ns = owner if chaos is None else chaos.register_queue(owner)
        self._put_index = 0
        self._verify = bool(verify_digests)
        self._on_poison = on_poison
        # chaos-held messages as [message, remaining-puts-before-release]
        # pairs: delay holds for 1 successful put, reorder for
        # ``chaos.reorder_hold`` -- a bounded reordering window
        self._delayed: list[list] = []
        #: deepest the queue has ever been (telemetry samplers read this;
        #: a high watermark survives the drain that a point-in-time depth
        #: gauge would miss)
        self.high_watermark = 0
        #: producers refused under the ``reject`` policy
        self.rejected = 0
        #: messages evicted under the ``shed_oldest`` policy
        self.shed = 0
        #: messages quarantined at dequeue by digest verification
        self.poisoned = 0

    # -- producer side -----------------------------------------------------
    def put(self, message: Message) -> None:
        shed = self._put_locked(message, note_depth=True)
        self._dispatch_shed(shed)

    def put_many(self, messages: list[Message]) -> int:
        """Deliver a batch into the queue; returns how many were accepted.

        Each message still rolls its *own* chaos fate (drop/delay are
        per-delivery decisions keyed by the per-queue index, exactly as
        if :meth:`put` had been called per message), but the depth
        high-watermark is noted exactly once per batch.  Stops early and
        returns the partial count if the queue closes mid-batch."""
        delivered = 0
        shed: list[Message] = []
        try:
            for message in messages:
                try:
                    shed.extend(self._put_locked(message, note_depth=False))
                except ShutdownError:
                    break
                delivered += 1
        finally:
            with self._cond:
                self._note_depth_locked()
            self._dispatch_shed(shed)
        return delivered

    def _put_locked(self, message: Message, *, note_depth: bool) -> list[Message]:
        """Admit one message; returns evicted messages for the caller to
        report *after* the queue lock is released (journaling or user
        callbacks must never run under the lock)."""
        fate = "deliver"
        chaotic = self._chaos is not None and self._chaos.enabled
        if chaotic:
            with self._cond:
                if self._closed:
                    raise ShutdownError(f"queue for {self.owner!r} is closed")
                self._put_index += 1
                index = self._put_index
            fate = self._chaos.queue_fate(self._fate_ns, index)
            if fate == "drop":
                return []
        shed: list[Message] = []
        with self._cond:
            if self._closed:
                raise ShutdownError(f"queue for {self.owner!r} is closed")
            if fate in ("delay", "reorder"):
                hold = 1 if fate == "delay" else self._chaos.reorder_hold
                self._delayed.append([message, hold])
                return []
            if fate == "corrupt":
                message = corrupt_copy(message)
            self._admit_locked(message, shed)
            if fate == "duplicate":
                # the at-least-once retransmit: the same frame (same
                # serial) admitted twice
                self._admit_locked(message, shed)
            if chaotic and self._delayed:
                self._release_held_locked(shed)
            if note_depth:
                self._note_depth_locked()
            self._cond.notify_all()
        return shed

    def _release_held_locked(self, shed_out: list[Message]) -> None:
        """A successful delivery ages every held-back message by one put;
        those whose hold expires are admitted (deterministic bounded
        reordering).  Under a full ``reject`` queue expired messages
        simply stay held until a later put finds room.  Caller holds
        ``_cond``."""
        still: list[list] = []
        for entry in self._delayed:
            if entry[1] > 1:
                entry[1] -= 1
                still.append(entry)
                continue
            if (
                self.maxsize
                and self.policy == "reject"
                and len(self._buffer) >= self.maxsize
            ):
                entry[1] = 1
                still.append(entry)
                continue
            self._admit_locked(entry[0], shed_out)
        self._delayed = still  # conclint: waive CC101 -- callers hold _cond (documented contract)

    def _admit_locked(self, message: Message, shed_out: list[Message]) -> None:
        """Apply the backpressure policy, then append.  Caller holds
        ``_cond``; evictions accumulate in *shed_out* for post-release
        dispatch."""
        if self.maxsize and len(self._buffer) >= self.maxsize:
            if self.policy == "reject":
                self.rejected += 1
                raise Overloaded(
                    self.owner, depth=len(self._buffer), maxsize=self.maxsize
                )
            if self.policy == "shed_oldest":
                while len(self._buffer) >= self.maxsize:
                    shed_out.append(self._buffer.popleft())
                    self.shed += 1
            else:  # block: wait for a consumer to make room
                while len(self._buffer) >= self.maxsize and not self._closed:
                    self._cond.wait()
                if self._closed:
                    raise ShutdownError(f"queue for {self.owner!r} is closed")
        self._buffer.append(message)  # conclint: waive CC101 -- callers hold _cond (documented contract)

    def _dispatch_shed(self, shed: list[Message]) -> None:
        if not shed or self._on_shed is None:
            return
        for message in shed:
            self._on_shed(message)

    def _note_depth_locked(self) -> None:
        depth = len(self._stash) + len(self._buffer) + len(self._delayed)
        if depth > self.high_watermark:
            self.high_watermark = depth

    def close(self) -> None:
        """Close the queue; pending and future getters raise ShutdownError
        once the already-buffered messages have been drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- consumer side -------------------------------------------------------
    def _poisoned(self, message: Message) -> bool:
        """Whether dequeue-time verification rejects *message* (pure
        check; the caller counts and quarantines)."""
        return self._verify and message.digest is not None and not message.digest_ok()

    def _dispatch_poison(self, message: Optional[Message]) -> None:
        """Report a quarantined frame.  Called with the queue lock
        released: the handler journals a dead-letter record and may
        re-offer the pristine ledgered copy via :meth:`put`, which
        re-acquires ``_cond``."""
        if message is None or self._on_poison is None:
            return
        self._on_poison(message)

    def get(self, timeout: Optional[float] = None) -> Message:
        """Next message in arrival order (stashed messages first).

        Messages failing digest verification are quarantined (never
        returned) and the wait continues against the original deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poison: Optional[Message] = None
            with self._cond:
                while True:
                    if self._stash:
                        # stashed messages were verified when first
                        # dequeued by get_matching
                        return self._stash.pop(0)
                    if self._buffer:
                        message = self._buffer.popleft()
                        self._cond.notify_all()
                        if self._poisoned(message):
                            self.poisoned += 1
                            poison = message
                            break
                        return message
                    if self._closed:
                        raise ShutdownError(
                            f"queue for {self.owner!r} closed while waiting"
                        )
                    self._wait_locked(deadline, timeout)
            self._dispatch_poison(poison)

    def get_matching(
        self,
        predicate: Callable[[Message], bool],
        timeout: Optional[float] = None,
    ) -> Message:
        """Next message satisfying *predicate*; non-matching messages are
        stashed and later returned by :meth:`get` in their original order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        matched: Optional[Message] = None
        while True:
            poison: Optional[Message] = None
            with self._cond:
                for index, message in enumerate(self._stash):
                    if predicate(message):
                        return self._stash.pop(index)
                while True:
                    while self._buffer:
                        message = self._buffer.popleft()
                        self._cond.notify_all()
                        if self._poisoned(message):
                            self.poisoned += 1
                            poison = message
                            break
                        if predicate(message):
                            matched = message
                            break
                        self._stash.append(message)
                    if matched is not None or poison is not None:
                        break
                    if self._closed:
                        raise ShutdownError(
                            f"queue for {self.owner!r} closed while waiting"
                        )
                    self._wait_locked(deadline, timeout)
            if matched is not None:
                return matched
            self._dispatch_poison(poison)

    def _wait_locked(self, deadline: Optional[float], timeout: Optional[float]) -> None:
        """One bounded wait for new arrivals; caller holds ``_cond`` and
        loops re-checking state after every wake-up."""
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._cond.wait(remaining):
            raise MessageTimeout(
                f"no message for {self.owner!r} within {timeout}s"
            )

    def drain(self) -> list[Message]:
        """All currently queued messages without blocking (including any
        chaos-delayed messages still held back)."""
        with self._cond:
            out: list[Message] = list(self._stash)
            self._stash.clear()
            out.extend(self._buffer)
            self._buffer.clear()
            out.extend(entry[0] for entry in self._delayed)
            self._delayed.clear()
            self._cond.notify_all()
            return out

    def __len__(self) -> int:
        with self._cond:
            return len(self._stash) + len(self._buffer) + len(self._delayed)
