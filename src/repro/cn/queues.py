"""Per-task message queues.

"TaskManager ... sets up a message queue for each Task and then executes
each Task in a separate thread" (paper section 3).  The queue is a thin
wrapper over :class:`queue.Queue` adding close semantics (a closed queue
unblocks waiters with :class:`~repro.cn.errors.ShutdownError`) and
selective receive (wait for a message matching a predicate while
buffering the rest), which tasks like the Floyd workers use to pull the
k-th row broadcast out of order from result traffic.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Callable, Optional

from ..analysis.conc.runtime import make_lock
from .errors import MessageTimeout, ShutdownError
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .chaos import ChaosPolicy

__all__ = ["MessageQueue"]

_CLOSE = object()


class MessageQueue:
    """Unbounded FIFO of :class:`Message` with close and selective recv.

    An optional :class:`~repro.cn.chaos.ChaosPolicy` makes the queue a
    fault site: each ``put`` may be dropped (lossy link) or delayed
    (the message is held back and delivered just after the *next*
    successful put -- a deterministic reordering).  Fate decisions are
    keyed by the per-queue delivery index, so a fixed chaos seed injects
    the same faults on every run.
    """

    def __init__(self, owner: str, *, chaos: "Optional[ChaosPolicy]" = None) -> None:
        self.owner = owner
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self._stash: list[Message] = []
        self._stash_lock = make_lock("MessageQueue._stash_lock", reentrant=False)
        self._chaos = chaos
        self._put_index = 0
        self._delayed: list[Message] = []
        self._delay_lock = make_lock("MessageQueue._delay_lock", reentrant=False)
        #: deepest the queue has ever been (telemetry samplers read this;
        #: a high watermark survives the drain that a point-in-time depth
        #: gauge would miss)
        self.high_watermark = 0

    # -- producer side -----------------------------------------------------
    def put(self, message: Message) -> None:
        if self._closed.is_set():
            raise ShutdownError(f"queue for {self.owner!r} is closed")
        if self._chaos is not None and self._chaos.enabled:
            with self._delay_lock:
                self._put_index += 1
                index = self._put_index
            fate = self._chaos.queue_fate(self.owner, index)
            if fate == "drop":
                return
            if fate == "delay":
                with self._delay_lock:
                    self._delayed.append(message)
                return
            self._queue.put(message)
            with self._delay_lock:
                held, self._delayed = self._delayed, []
            for late in held:
                self._queue.put(late)
            self._note_depth()
            return
        self._queue.put(message)
        self._note_depth()

    def put_many(self, messages: list[Message]) -> int:
        """Deliver a batch into the queue; returns how many were accepted.

        Each message still rolls its *own* chaos fate (drop/delay are
        per-delivery decisions keyed by the per-queue index, exactly as
        if :meth:`put` had been called per message), but the depth
        high-watermark is noted once per batch.  Stops early and returns
        the partial count if the queue closes mid-batch."""
        delivered = 0
        for message in messages:
            try:
                self.put(message)
            except ShutdownError:
                break
            delivered += 1
        return delivered

    def _note_depth(self) -> None:
        depth = len(self)
        if depth > self.high_watermark:
            self.high_watermark = depth

    def close(self) -> None:
        """Close the queue; pending and future getters raise ShutdownError."""
        if not self._closed.is_set():
            self._closed.set()
            self._queue.put(_CLOSE)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    # -- consumer side -------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Message:
        """Next message in arrival order (stashed messages first)."""
        with self._stash_lock:
            if self._stash:
                return self._stash.pop(0)
        return self._get_raw(timeout)

    def _get_raw(self, timeout: Optional[float]) -> Message:
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise MessageTimeout(
                f"no message for {self.owner!r} within {timeout}s"
            ) from None
        if item is _CLOSE:
            self._queue.put(_CLOSE)  # let other waiters see it too
            raise ShutdownError(f"queue for {self.owner!r} closed while waiting")
        return item

    def get_matching(
        self,
        predicate: Callable[[Message], bool],
        timeout: Optional[float] = None,
    ) -> Message:
        """Next message satisfying *predicate*; non-matching messages are
        stashed and later returned by :meth:`get` in their original order."""
        with self._stash_lock:
            for index, message in enumerate(self._stash):
                if predicate(message):
                    return self._stash.pop(index)
        while True:
            message = self._get_raw(timeout)
            if predicate(message):
                return message
            with self._stash_lock:
                self._stash.append(message)

    def drain(self) -> list[Message]:
        """All currently queued messages without blocking (including any
        chaos-delayed messages still held back)."""
        out: list[Message] = []
        with self._stash_lock:
            out.extend(self._stash)
            self._stash.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _CLOSE:
                self._queue.put(_CLOSE)
                break
            out.append(item)
        with self._delay_lock:
            out.extend(self._delayed)
            self._delayed.clear()
        return out

    def __len__(self) -> int:
        with self._delay_lock:
            delayed = len(self._delayed)
        return len(self._stash) + self._queue.qsize() + delayed
