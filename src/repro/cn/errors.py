"""Exception hierarchy for the CN runtime."""

from __future__ import annotations

__all__ = [
    "CnError",
    "ArchiveError",
    "TaskLoadError",
    "NoWillingJobManager",
    "NoWillingTaskManager",
    "JobError",
    "JobTimeoutError",
    "TaskFailedError",
    "UnknownTaskError",
    "MessageTimeout",
    "ShutdownError",
    "JournalError",
    "Overloaded",
    "BudgetExhausted",
    "ConfigError",
    "TransportError",
    "FrameCorrupt",
    "FrameTruncated",
    "WorkerLost",
    "RemoteTaskError",
]


class CnError(Exception):
    """Base class for all CN runtime errors."""


class ArchiveError(CnError):
    """A task archive is missing, corrupt, or lacks a manifest."""


class TaskLoadError(CnError):
    """The task class could not be resolved or does not implement Task."""


class NoWillingJobManager(CnError):
    """No JobManager responded to the multicast solicitation with enough
    free resources for the job requirements."""


class NoWillingTaskManager(CnError):
    """No TaskManager was willing to host a task (insufficient memory or
    slots across the cluster)."""


class JobError(CnError):
    """Generic job-level failure."""


class JobTimeoutError(JobError):
    """``Job.wait`` gave up; carries the per-task states at the moment of
    the timeout so "still running" and "wedged" are distinguishable."""

    def __init__(self, job_id: str, timeout: object, states: dict[str, str]) -> None:
        self.job_id = job_id
        self.timeout = timeout
        self.states = dict(states)
        pending = sorted(
            name
            for name, state in states.items()
            if state not in ("COMPLETED", "FAILED", "CANCELLED")
        )
        summary = ", ".join(f"{name}={states[name]}" for name in sorted(states))
        super().__init__(
            f"job {job_id} did not finish within {timeout}s; "
            f"{len(pending)} task(s) not terminal ({', '.join(pending) or 'none'}); "
            f"states: {summary}"
        )


class TaskFailedError(JobError):
    """A task raised; carries the original traceback text."""

    def __init__(self, task_name: str, cause: str) -> None:
        self.task_name = task_name
        self.cause = cause
        super().__init__(f"task {task_name!r} failed: {cause}")


class UnknownTaskError(CnError):
    """A message or start request addressed a task that does not exist."""


class MessageTimeout(CnError):
    """A blocking receive timed out."""


class ShutdownError(CnError):
    """Operation attempted on a component that has been shut down."""


class JournalError(CnError):
    """The durable job journal could not be read or written."""


class Overloaded(CnError):
    """A bounded queue (or the portal's admission controller) refused new
    work because the system is saturated.  Carries enough context for the
    caller to back off intelligently: the component that refused, its
    depth at the moment of refusal, and its configured capacity."""

    def __init__(
        self,
        owner: str,
        *,
        depth: int,
        maxsize: int,
        retry_after: "float | None" = None,
    ) -> None:
        self.owner = owner
        self.depth = depth
        self.maxsize = maxsize
        self.retry_after = retry_after
        super().__init__(
            f"{owner!r} is overloaded ({depth}/{maxsize} queued)"
            + (f"; retry after {retry_after:g}s" if retry_after is not None else "")
        )


class ConfigError(CnError):
    """Mutually incompatible cluster options were combined (e.g. chaos
    injection with the multi-process execution backend)."""


class TransportError(CnError):
    """An execution-backend transport failed (socket, framing, worker)."""


class FrameCorrupt(TransportError):
    """A wire frame failed its CRC32 integrity check."""


class FrameTruncated(TransportError):
    """The stream ended mid-frame (peer died or the frame was cut)."""


class WorkerLost(TransportError):
    """A worker process died while executions were outstanding."""


class RemoteTaskError(CnError):
    """A task raised inside a worker process; carries the remote
    traceback text so the retry/failure paths report the real cause."""

    def __init__(self, task_name: str, kind: str, remote_traceback: str) -> None:
        self.task_name = task_name
        self.kind = kind
        self.remote_traceback = remote_traceback
        super().__init__(
            f"task {task_name!r} raised {kind} in its worker process:\n"
            f"{remote_traceback}"
        )


class BudgetExhausted(JobError):
    """A task's end-to-end job budget expired before (or while) it ran;
    executing it further would burn resources on a doomed result."""

    def __init__(self, task_name: str, *, deadline: float, now: float) -> None:
        self.task_name = task_name
        self.deadline = deadline
        self.now = now
        super().__init__(
            f"task {task_name!r} dropped: job budget exhausted "
            f"(deadline {deadline:.3f} <= now {now:.3f})"
        )
