"""Task run models.

The CNX descriptors in the paper request ``RUN_AS_THREAD_IN_TM``: the
task executes as a thread inside the TaskManager process.  We additionally
model ``RUN_AS_PROCESS`` (the task gets a dedicated worker -- simulated
here as a thread flagged for process-style isolation accounting) and
``RUN_IN_JOBMANAGER`` (lightweight tasks executed inline by the
JobManager, useful for coordinators).  All three run on threads in this
simulation; the run model affects placement accounting and bookkeeping,
which is what the scheduling benchmarks exercise.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["RunModel"]


class RunModel(str, Enum):
    RUN_AS_THREAD_IN_TM = "RUN_AS_THREAD_IN_TM"
    RUN_AS_PROCESS = "RUN_AS_PROCESS"
    RUN_IN_JOBMANAGER = "RUN_IN_JOBMANAGER"

    @classmethod
    def parse(cls, text: str) -> "RunModel":
        try:
            return cls(text)
        except ValueError:
            raise ValueError(
                f"unknown runmodel {text!r}; expected one of "
                f"{', '.join(m.value for m in cls)}"
            ) from None

    @property
    def occupies_slot(self) -> bool:
        """Whether this run model consumes a TaskManager execution slot."""
        return self is not RunModel.RUN_IN_JOBMANAGER
