"""Deterministic fault injection for the CN runtime.

The paper targets commodity Ethernet clusters where "the appealing
aspects of cluster computing" come with routine node and task failures;
the runtime's recovery paths are only trustworthy if failures can be
*provoked on demand*.  This module provides that chaos layer:

* :class:`VirtualClock` -- an injected logical clock.  Heartbeats,
  failure detection and deadlines are all measured in virtual seconds
  advanced by :meth:`Cluster.tick`, so tests never depend on wall time.
* :class:`ChaosPolicy` -- a seeded fault injector.  Faults come in two
  flavours: **scripted** one-shots (crash *this* task on *this* attempt,
  crash *this* node after its Nth task start or at tick T, stall a task)
  and **rate-based** faults whose decisions are derived from
  ``hash(seed, site, stable-key)`` rather than from a shared RNG stream,
  so the injected fault set is identical across reruns regardless of
  thread interleaving.  Every injected fault is appended to a structured
  log (:class:`FaultRecord`).
* :class:`ExponentialBackoff` -- the retry pacing policy (exponential
  with deterministic, seed-derived jitter) used by the JobManager
  between retry attempts.

Fault sites instrumented elsewhere in the package:

============  =====================================  ==================
site          hook                                   injected by
============  =====================================  ==================
task start    ``should_crash_task`` / ``should_stall``  TaskManager
node          ``node_crash_due`` / ``nodes_to_crash``   TaskManager / Cluster.tick
task queue    ``queue_fate`` (drop / delay /            MessageQueue.put
              duplicate / reorder / corrupt)
multicast     ``bus_drop``                              MulticastBus
partition     ``note_partition`` / ``note_heal`` /      Cluster.partition /
              ``note_revive`` (recording only)          heal_partition / revive_node
============  =====================================  ==================

A :class:`ChaosPolicy` with no rates and no scripted faults reports
``enabled == False`` and every instrumented fast path short-circuits on
that flag, keeping the no-fault overhead negligible (measured by
``benchmarks/test_perf_chaos.py``).
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.conc.runtime import make_lock

__all__ = [
    "VirtualClock",
    "FaultRecord",
    "InjectedFault",
    "ChaosPolicy",
    "ExponentialBackoff",
]


class InjectedFault(RuntimeError):
    """Raised inside a task to simulate a crash; deliberately *not* a
    :class:`~repro.cn.errors.CnError` so it travels the same
    failure/retry path as any user exception."""


class VirtualClock:
    """A monotonic logical clock advanced explicitly (never by wall time).

    ``drive_timeouts=True`` opts client-side timeout arithmetic (e.g.
    ``CNAPI.wait``) into virtual time as well: deadlines are computed
    from :meth:`timeout_now` instead of ``time.monotonic()``, so a
    chaos test that advances the clock by ticking controls *every*
    deadline in the system -- no hidden wall-time dependence.  The
    default keeps wall-clock timeouts, matching non-ticked clusters
    where virtual time never advances and a virtual deadline would
    otherwise never expire.
    """

    def __init__(self, start: float = 0.0, *, drive_timeouts: bool = False) -> None:
        self._now = float(start)
        self._drive_timeouts = bool(drive_timeouts)
        self._lock = make_lock("VirtualClock._lock", reentrant=False)

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, dt: float = 1.0) -> float:
        if dt < 0:
            raise ValueError("the clock only moves forward")
        with self._lock:
            self._now += dt
            return self._now

    @property
    def drives_timeouts(self) -> bool:
        """Whether client timeout arithmetic runs on virtual time."""
        return self._drive_timeouts

    def timeout_now(self) -> float:
        """The time source for timeout/deadline arithmetic: virtual time
        when this clock drives timeouts, wall-monotonic otherwise."""
        if self._drive_timeouts:
            return self.now()
        return time.monotonic()


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: what kind, where, and against which target."""

    seq: int
    # task-crash | stall | node-crash | node-revive | queue-drop |
    # queue-delay | queue-duplicate | queue-reorder | queue-corrupt |
    # bus-drop | burst | partition | partition-heal
    kind: str
    site: str  # task | node | queue:<owner> | bus | portal
    target: str
    detail: dict = field(default_factory=dict)

    def key(self) -> tuple[str, str, str]:
        """Thread-schedule-independent identity used to compare runs."""
        return (self.kind, self.site, self.target)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "site": self.site,
            "target": self.target,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class ExponentialBackoff:
    """Exponential retry backoff with deterministic, seed-derived jitter.

    ``delay(attempt)`` for attempt 1, 2, 3... is ``base * factor**(a-1)``
    capped at ``cap``, multiplied by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from an RNG seeded by
    ``(seed, key, attempt)`` -- the same attempt of the same task always
    waits the same amount, but distinct tasks desynchronize (no retry
    thundering herd) and reruns are reproducible.
    """

    base: float = 0.005
    factor: float = 2.0
    cap: float = 0.25
    jitter: float = 0.1
    seed: int = 0

    def delay(self, attempt: int, key: str = "") -> float:
        raw = min(self.cap, self.base * self.factor ** max(0, attempt - 1))
        if self.jitter and raw > 0:
            u = random.Random(f"{self.seed}:{key}:{attempt}").random()
            raw *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(0.0, raw)

    def schedule(self, attempts: int, key: str = "") -> list[float]:
        """The delays the first *attempts* retries would wait."""
        return [self.delay(a, key) for a in range(1, attempts + 1)]


class ChaosPolicy:
    """Seeded, deterministic fault injection across the CN fault sites.

    Rate-based decisions are *keyed*: each decision derives its own RNG
    from ``(seed, kind, stable key)`` -- e.g. ``(queue owner, delivery
    index)`` or ``(task, attempt)`` -- so the set of injected faults does
    not depend on thread scheduling.  Scripted faults fire exactly once
    for their target.  All hooks are cheap no-ops while ``enabled`` is
    false, which is the case for a policy with zero rates and no scripts.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        task_crash_rate: float = 0.0,
        stall_rate: float = 0.0,
        node_crash_rate: float = 0.0,
        queue_drop_rate: float = 0.0,
        queue_delay_rate: float = 0.0,
        bus_drop_rate: float = 0.0,
        queue_duplicate_rate: float = 0.0,
        queue_reorder_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        reorder_hold: int = 2,
    ) -> None:
        if reorder_hold < 1:
            raise ValueError(f"reorder_hold must be >= 1, got {reorder_hold}")
        self.seed = seed
        self.task_crash_rate = task_crash_rate
        self.stall_rate = stall_rate
        self.node_crash_rate = node_crash_rate
        self.queue_drop_rate = queue_drop_rate
        self.queue_delay_rate = queue_delay_rate
        self.bus_drop_rate = bus_drop_rate
        # transport-robustness fault modes (at-least-once duplication,
        # bounded reordering, payload corruption) -- the link behaviours
        # a real-socket transport would exhibit; see MessageQueue
        self.queue_duplicate_rate = queue_duplicate_rate
        self.queue_reorder_rate = queue_reorder_rate
        self.corrupt_rate = corrupt_rate
        self.reorder_hold = reorder_hold
        self.log: list[FaultRecord] = []
        self._log_lock = make_lock("ChaosPolicy._log_lock", reentrant=False)
        self._seq = itertools.count(1)
        # scripted one-shots, consumed on first match
        self._task_crashes: set[tuple[str, int]] = set()
        self._task_stalls: set[tuple[str, int]] = set()
        self._node_crashes_after_starts: dict[str, int] = {}
        self._node_crashes_at_tick: dict[str, int] = {}
        # overload mode: slow-consumer queues (owner substring -> stride)
        # and scripted submission-burst schedules (tick -> burst size)
        self._slow_consumers: dict[str, int] = {}
        self._bursts: dict[int, int] = {}
        # scripted corruption: owner substring -> first delivery index to
        # corrupt (fires once per entry, consumed on match)
        self._corruptions: dict[str, int] = {}
        # per-owner queue incarnation counts (see register_queue): a
        # re-placed task's fresh queue must not replay the exact fate
        # stream its predecessor saw, or a fated index becomes a
        # deterministic livelock that no retry can ever escape
        self._queue_gens: dict[str, int] = {}
        self._script_lock = make_lock("ChaosPolicy._script_lock", reentrant=False)
        # armed = some fault could ever fire.  Rates are fixed at
        # construction and scripted faults only arrive through the
        # scripting methods below, so this is a cheap cached flag the
        # per-message fault sites can poll instead of re-scanning every
        # rate and script table.  Arming is one-way: a drained script
        # leaves the policy armed (costs a check, never correctness).
        self._armed = bool(
            task_crash_rate
            or stall_rate
            or node_crash_rate
            or queue_drop_rate
            or queue_delay_rate
            or bus_drop_rate
            or queue_duplicate_rate
            or queue_reorder_rate
            or corrupt_rate
        )

    # -- scripting -----------------------------------------------------------
    def crash_task(self, name: str, attempt: int = 1) -> "ChaosPolicy":
        """Crash task *name* when it starts the given *attempt* (1-based)."""
        with self._script_lock:
            self._task_crashes.add((name, attempt))
        self._armed = True
        return self

    def stall_task(self, name: str, attempt: int = 1) -> "ChaosPolicy":
        """Hang task *name* on the given attempt until it is cancelled
        (by the deadline watchdog, a node crash, or job cancellation)."""
        with self._script_lock:
            self._task_stalls.add((name, attempt))
        self._armed = True
        return self

    def crash_node(
        self,
        node: str,
        *,
        after_starts: Optional[int] = None,
        at_tick: Optional[int] = None,
    ) -> "ChaosPolicy":
        """Crash *node* after it has started its Nth task, or at tick T."""
        if (after_starts is None) == (at_tick is None):
            raise ValueError("specify exactly one of after_starts / at_tick")
        node = node.split("/")[0]
        with self._script_lock:
            if after_starts is not None:
                self._node_crashes_after_starts[node] = after_starts
            else:
                self._node_crashes_at_tick[node] = at_tick  # type: ignore[assignment]
        self._armed = True
        return self

    def slow_consumer(self, owner_substring: str, *, stride: int = 2) -> "ChaosPolicy":
        """Overload mode: make queues whose owner contains
        *owner_substring* behave like a slow consumer -- every
        *stride*-th delivery is held back (the ``delay`` fate) so depth
        builds up deterministically and backpressure engages.  Not a
        one-shot: the brake stays on for the whole run."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        with self._script_lock:
            self._slow_consumers[owner_substring] = stride
        self._armed = True
        return self

    def corrupt_message(self, owner_substring: str, index: int = 1) -> "ChaosPolicy":
        """Corrupt the payload of one frame: the first delivery with
        per-queue index >= *index* put on a queue whose owner contains
        *owner_substring*.  One-shot, consumed on match -- the scripted
        equivalent of a single bit-flip on the link."""
        if index < 1:
            raise ValueError(f"index must be >= 1, got {index}")
        with self._script_lock:
            self._corruptions[owner_substring] = index
        self._armed = True
        return self

    def schedule_burst(self, tick: int, submissions: int) -> "ChaosPolicy":
        """Overload mode: script a submission storm of *submissions* jobs
        due at *tick*.  The storm driver (a benchmark or a portal test)
        polls :meth:`bursts_due` each tick and fires the scripted load --
        the schedule living here keeps storm timing seeded/deterministic
        alongside every other fault."""
        if submissions < 1:
            raise ValueError(f"submissions must be >= 1, got {submissions}")
        with self._script_lock:
            self._bursts[tick] = self._bursts.get(tick, 0) + submissions
        self._armed = True
        return self

    def register_queue(self, owner: str) -> str:
        """Fate namespace for a new queue incarnation of *owner*.

        The first incarnation keeps the bare owner as its namespace --
        fate streams are unchanged for every queue that is never
        re-placed, and a twin-seeded policy predicting fates via
        :meth:`queue_fate` without registering stays in sync.  Each
        later incarnation (a re-placement after a crash or watchdog
        retry) is suffixed with its generation, giving the attempt's
        replayed deliveries an independent fate roll: a retransmit on a
        real link re-rolls its luck, and so must ours, or the same
        delivery is dropped/held on every attempt forever.
        """
        with self._script_lock:
            generation = self._queue_gens.setdefault(owner, 0)
            self._queue_gens[owner] = generation + 1
        return owner if generation == 0 else f"{owner}~{generation}"

    def bursts_due(self, tick: int) -> int:
        """Scripted submission-storm size due at *tick* (consumed)."""
        with self._script_lock:
            due = [t for t in self._bursts if tick >= t]
            total = sum(self._bursts.pop(t) for t in due)
        if total:
            self._record("burst", "portal", str(tick), submissions=total)
        return total

    # -- the enabled fast path -------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any fault could ever fire; instrumented sites
        short-circuit on this to keep the disabled overhead near zero
        (one cached attribute read, not a rate/script-table scan)."""
        return self._armed

    # -- decision hooks (called from instrumented components) ---------------------
    def should_crash_task(self, job_id: str, task: str, attempt: int) -> bool:
        with self._script_lock:
            scripted = (task, attempt) in self._task_crashes
            if scripted:
                self._task_crashes.discard((task, attempt))
        if scripted:
            self._record("task-crash", "task", task, attempt=attempt, scripted=True)
            return True
        if self._decide("task-crash", f"{task}:{attempt}", self.task_crash_rate):
            self._record("task-crash", "task", task, attempt=attempt, job=job_id)
            return True
        return False

    def should_stall(self, job_id: str, task: str, attempt: int) -> bool:
        with self._script_lock:
            scripted = (task, attempt) in self._task_stalls
            if scripted:
                self._task_stalls.discard((task, attempt))
        if scripted:
            self._record("stall", "task", task, attempt=attempt, scripted=True)
            return True
        if self._decide("stall", f"{task}:{attempt}", self.stall_rate):
            self._record("stall", "task", task, attempt=attempt, job=job_id)
            return True
        return False

    def node_crash_due(self, node: str, starts: int) -> bool:
        """Checked by a TaskManager each time it starts a task."""
        node = node.split("/")[0]
        with self._script_lock:
            threshold = self._node_crashes_after_starts.get(node)
            scripted = threshold is not None and starts >= threshold
            if scripted:
                del self._node_crashes_after_starts[node]
        if scripted:
            self._record("node-crash", "node", node, after_starts=starts, scripted=True)
            return True
        if self._decide("node-crash", f"{node}:{starts}", self.node_crash_rate):
            self._record("node-crash", "node", node, after_starts=starts)
            return True
        return False

    def nodes_to_crash(self, tick: int) -> list[str]:
        """Scripted at-tick node crashes due at *tick* (consumed)."""
        with self._script_lock:
            due = sorted(
                node
                for node, when in self._node_crashes_at_tick.items()
                if tick >= when
            )
            for node in due:
                del self._node_crashes_at_tick[node]
        for node in due:
            self._record("node-crash", "node", node, at_tick=tick, scripted=True)
        return due

    def queue_fate(self, owner: str, index: int) -> str:
        """``deliver`` | ``drop`` | ``delay`` | ``duplicate`` |
        ``reorder`` | ``corrupt`` for the *index*-th message put on the
        queue *owner* (per-queue counter = stable key)."""
        with self._script_lock:
            corrupt_hit = None
            for sub, at in self._corruptions.items():
                if sub in owner and index >= at:
                    corrupt_hit = sub
                    break
            if corrupt_hit is not None:
                del self._corruptions[corrupt_hit]
            slow = [
                (sub, stride)
                for sub, stride in self._slow_consumers.items()
                if sub in owner
            ]
        if corrupt_hit is not None:
            self._record(
                "queue-corrupt", f"queue:{owner}", owner,
                index=index, scripted=True,
            )
            return "corrupt"
        for sub, stride in slow:
            if index % stride == 0:
                self._record(
                    "queue-delay", f"queue:{owner}", owner,
                    index=index, slow_consumer=sub,
                )
                return "delay"
        key = f"{owner}:{index}"
        if self._decide("queue-drop", key, self.queue_drop_rate):
            self._record("queue-drop", f"queue:{owner}", owner, index=index)
            return "drop"
        if self._decide("queue-delay", key, self.queue_delay_rate):
            self._record("queue-delay", f"queue:{owner}", owner, index=index)
            return "delay"
        if self._decide("queue-duplicate", key, self.queue_duplicate_rate):
            self._record("queue-duplicate", f"queue:{owner}", owner, index=index)
            return "duplicate"
        if self._decide("queue-reorder", key, self.queue_reorder_rate):
            self._record(
                "queue-reorder", f"queue:{owner}", owner,
                index=index, hold=self.reorder_hold,
            )
            return "reorder"
        if self._decide("queue-corrupt", key, self.corrupt_rate):
            self._record("queue-corrupt", f"queue:{owner}", owner, index=index)
            return "corrupt"
        return "deliver"

    def bus_drop(self, sender: str, subscriber: str, index: int) -> bool:
        """Whether to drop the *index*-th bus delivery to *subscriber*."""
        if self._decide("bus-drop", f"{sender}:{subscriber}:{index}", self.bus_drop_rate):
            self._record("bus-drop", "bus", subscriber, sender=sender, index=index)
            return True
        return False

    # -- structural fault recording (injected by the Cluster) -----------------
    #
    # Partitions, heals and revives are not chaos *decisions* -- the test
    # or simulation driver imposes them -- but they are faults, and a
    # trace that omits them cannot explain the run.  The Cluster calls
    # these so the structured log and the topology agree on what
    # happened and when.
    def note_partition(self, groups: Any) -> None:
        """Record a network partition imposed via ``Cluster.partition``."""
        normal = sorted(sorted(str(n) for n in group) for group in groups)
        target = " | ".join(",".join(group) for group in normal)
        self._record("partition", "bus", target, groups=normal)

    def note_heal(self) -> None:
        """Record a partition heal (full reachability restored)."""
        self._record("partition-heal", "bus", "*")

    def note_revive(self, node: str) -> None:
        """Record a node revival via ``Cluster.revive_node``."""
        self._record("node-revive", "node", node.split("/")[0])

    # -- the log ---------------------------------------------------------------
    def fault_summary(self) -> list[tuple[str, str, str]]:
        """Sorted ``(kind, site, target)`` triples -- the identity of the
        injected fault set, independent of thread scheduling."""
        with self._log_lock:
            return sorted(record.key() for record in self.log)

    def log_dicts(self) -> list[dict[str, Any]]:
        with self._log_lock:
            return [record.to_dict() for record in self.log]

    def clear_log(self) -> None:
        with self._log_lock:
            self.log.clear()

    # -- internals --------------------------------------------------------------
    def _decide(self, kind: str, key: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return random.Random(f"{self.seed}:{kind}:{key}").random() < rate

    def _record(self, kind: str, site: str, target: str, **detail: Any) -> None:
        record = FaultRecord(next(self._seq), kind, site, target, detail)
        with self._log_lock:
            self.log.append(record)

    def __repr__(self) -> str:
        return f"<ChaosPolicy seed={self.seed} faults={len(self.log)}>"
