"""Admission control: keep the portal healthy when demand exceeds capacity.

The portal is the cluster's front door, and the seed accepted every
submission unconditionally -- a 10x burst simply queued behind the
pipeline and made *everyone* slow.  This module implements the standard
overload-protection ladder in front of :meth:`Portal.submit`:

1. **Per-tenant rate limiting** (:class:`TokenBucket`): each tenant gets
   ``rate`` submissions/second with bursts up to ``burst``; exceeding it
   is a *quota* rejection (HTTP 429) that names the offender without
   penalizing anyone else.
2. **Per-tenant in-flight caps**: at most ``max_in_flight`` concurrent
   submissions per tenant, so one slow tenant cannot monopolize the
   portal's worker threads.
3. **Cluster saturation** (:meth:`AdmissionController.saturation`): a
   0..1 score combining aggregate hosted-queue depth with memory
   pressure across live nodes.  Between the soft and hard thresholds the
   controller lowers ``cluster.degrade_factor`` so dynamic task
   expansion admits *smaller* jobs (graceful degradation through the
   existing degradation path); at the hard threshold new work is shed
   outright with a Retry-After hint (HTTP 503).

All arithmetic goes through an injectable ``now`` callable (the cluster
clock's ``timeout_now`` by default) so chaos tests drive the buckets on
virtual time.  Every decision lands in ``cn_admission_total{decision=}``
and the latency of the decision itself in
``cn_admission_latency_seconds`` -- admission must stay O(1) and run
*before* XMI parsing, so rejections cost microseconds, not a pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..analysis.conc.runtime import make_lock

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]

#: decision strings, also the ``decision`` label on cn_admission_total
DECISIONS = ("admit", "admit-degraded", "reject-quota", "reject-saturated")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    Not self-locking -- the :class:`AdmissionController` serializes all
    access under its own lock (one lock for the whole admission path
    keeps the lock-order graph trivial)."""

    def __init__(self, rate: float, burst: float, *, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_refill = now

    def try_acquire(self, now: float) -> tuple[bool, float]:
        """Take one token if available.  Returns ``(acquired,
        retry_after)`` -- on refusal, *retry_after* is the seconds until
        the next token materializes."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    decision: str  # one of DECISIONS
    tenant: str
    saturation: float
    degrade_factor: float = 1.0
    retry_after: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.decision in ("admit", "admit-degraded")


class AdmissionController:
    """Token buckets + in-flight quotas + a cluster saturation gate.

    One instance fronts one portal.  :meth:`admit` is called before any
    expensive work; every admitted submission must be paired with a
    :meth:`release` (the portal does this in a ``finally``)."""

    def __init__(
        self,
        cluster: Any,
        *,
        rate: float = 50.0,
        burst: float = 100.0,
        max_in_flight: int = 32,
        soft_saturation: float = 0.7,
        hard_saturation: float = 0.9,
        min_degrade_factor: float = 0.25,
        queue_headroom: int = 512,
        retry_after: float = 1.0,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        if not 0.0 < soft_saturation <= hard_saturation <= 1.0:
            raise ValueError("need 0 < soft_saturation <= hard_saturation <= 1")
        self.cluster = cluster
        self.rate = rate
        self.burst = burst
        self.max_in_flight = max_in_flight
        self.soft_saturation = soft_saturation
        self.hard_saturation = hard_saturation
        self.min_degrade_factor = min_degrade_factor
        #: queued messages that count as "fully saturated" on the queue
        #: axis; aggregate depth is normalized against this
        self.queue_headroom = max(1, queue_headroom)
        self.retry_after = retry_after
        if now is None:
            clock = getattr(cluster, "clock", None)
            timeout_now = getattr(clock, "timeout_now", None)
            now = timeout_now if callable(timeout_now) else time.monotonic
        self._now = now
        self._lock = make_lock("AdmissionController._lock", reentrant=False)
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight: dict[str, int] = {}
        #: decision -> count, mirrored into cn_admission_total by the portal
        self.counts: dict[str, int] = {d: 0 for d in DECISIONS}

    # -- saturation ----------------------------------------------------------
    def saturation(self) -> float:
        """0..1 cluster pressure: the max of queue depth (aggregate
        resident messages over ``queue_headroom``) and memory pressure
        (fraction of live capacity already committed).  Max, not mean:
        either axis alone is enough to make new work counterproductive."""
        cluster = self.cluster
        queued = cluster.total_queued_messages()
        queue_pressure = min(1.0, queued / self.queue_headroom)
        total = cluster.total_memory()
        memory_pressure = 0.0
        if total > 0:
            memory_pressure = 1.0 - cluster.total_free_memory() / total
        return max(queue_pressure, memory_pressure)

    def _degrade_factor(self, saturation: float) -> float:
        """Linear ramp: 1.0 at the soft threshold down to
        ``min_degrade_factor`` at the hard threshold."""
        soft, hard = self.soft_saturation, self.hard_saturation
        if saturation <= soft:
            return 1.0
        if saturation >= hard or hard <= soft:
            return self.min_degrade_factor
        span = (saturation - soft) / (hard - soft)
        return 1.0 - span * (1.0 - self.min_degrade_factor)

    # -- the decision --------------------------------------------------------
    def admit(self, tenant: str = "anon") -> AdmissionDecision:
        """Decide whether *tenant* may submit right now.  O(1); never
        touches the pipeline, the registry, or the XMI text."""
        now = self._now()
        saturation = self.saturation()  # reads cluster state; no portal lock
        with self._lock:
            if saturation >= self.hard_saturation:
                self.counts["reject-saturated"] += 1
                return AdmissionDecision(
                    "reject-saturated",
                    tenant,
                    saturation,
                    degrade_factor=self.min_degrade_factor,
                    retry_after=self.retry_after,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, now=now
                )
            acquired, retry_after = bucket.try_acquire(now)
            if not acquired or self._in_flight.get(tenant, 0) >= self.max_in_flight:
                if acquired:
                    # in-flight cap hit: give the token back, the tenant
                    # is blocked on concurrency, not on rate
                    bucket.tokens = min(bucket.burst, bucket.tokens + 1.0)
                    retry_after = self.retry_after
                self.counts["reject-quota"] += 1
                return AdmissionDecision(
                    "reject-quota",
                    tenant,
                    saturation,
                    retry_after=max(retry_after, 1e-3),
                )
            self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
            factor = self._degrade_factor(saturation)
            decision = "admit" if factor >= 1.0 else "admit-degraded"
            self.counts[decision] += 1
        # publish the degradation knob outside the admission lock: the
        # client runner reads it lock-free (a stale float is harmless)
        self.cluster.degrade_factor = factor
        return AdmissionDecision(
            decision, tenant, saturation, degrade_factor=factor
        )

    def release(self, tenant: str = "anon") -> None:
        """Return *tenant*'s in-flight slot (portal calls this in a
        ``finally`` for every admitted submission)."""
        with self._lock:
            current = self._in_flight.get(tenant, 0)
            if current <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = current - 1

    def in_flight(self, tenant: str = "anon") -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time view for tests and the portal's metrics page."""
        with self._lock:
            return {
                "counts": dict(self.counts),
                "in_flight": dict(self._in_flight),
                "tenants": sorted(self._buckets),
            }
