"""Critical-path analysis: where a composed job's wall-clock time went.

The paper's evaluation (Sec. 5) argues speedups from the composed
Floyd job's structure; this module computes the measured counterpart.
Given one trace's spans plus the task dependency DAG (recorded on the
job span's ``deps`` attribute by the JobManager), it folds them into:

* the **critical path** -- the dependency-ordered chain of tasks that
  determined the job's makespan, found by walking backwards from the
  last-finishing task through the latest-finishing dependency;
* per-task **slack** -- how much each task could stretch without moving
  the makespan (classic CPM forward/backward pass over the measured
  durations); critical-path tasks have ~zero slack;
* **coverage** -- sum of critical-path span durations over the measured
  makespan.  Near 1.0 means the path explains the wall clock; a low
  value flags scheduling gaps (placement stalls, retry backoff) the
  span tree can then localize.

Task timing comes from the attempt spans: a task's interval runs from
its first attempt's start to its last un-fenced attempt's end, so retry
storms count against the task that suffered them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from .spans import Span

__all__ = ["TaskInterval", "CriticalPath", "critical_path", "task_intervals"]


@dataclass(frozen=True)
class TaskInterval:
    """Measured execution window of one task (across its attempts)."""

    task: str
    start: float
    end: float
    attempts: int
    node: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The folded result for one job trace."""

    trace_id: str
    #: dependency-ordered critical chain, first task first
    path: list[TaskInterval] = field(default_factory=list)
    #: sum of the path tasks' measured durations
    path_duration: float = 0.0
    #: measured job makespan (job span duration, else observed envelope)
    makespan: float = 0.0
    #: per-task slack in seconds (CPM); path members are ~0
    slack: dict[str, float] = field(default_factory=dict)
    #: every task's measured interval
    intervals: dict[str, TaskInterval] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """path_duration / makespan (0 when the makespan is unknown)."""
        return self.path_duration / self.makespan if self.makespan > 0 else 0.0

    @property
    def task_names(self) -> list[str]:
        return [interval.task for interval in self.path]

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "path": [
                {
                    "task": i.task,
                    "start": i.start,
                    "end": i.end,
                    "duration": i.duration,
                    "attempts": i.attempts,
                    "node": i.node,
                }
                for i in self.path
            ],
            "path_duration": self.path_duration,
            "makespan": self.makespan,
            "coverage": self.coverage,
            "slack": dict(self.slack),
        }


def task_intervals(spans: Iterable[Span]) -> dict[str, TaskInterval]:
    """Fold attempt spans into one measured interval per task."""
    per_task: dict[str, list[Span]] = {}
    for span in spans:
        if span.kind != "attempt" or span.end is None:
            continue
        task = span.attrs.get("task")
        if not task:
            continue
        per_task.setdefault(task, []).append(span)
    intervals: dict[str, TaskInterval] = {}
    for task, attempts in per_task.items():
        attempts.sort(key=lambda s: s.start)
        # fenced attempts (zombies discarded by the epoch fence) still
        # consumed time but did not produce the result; the *end* comes
        # from the last effective attempt when one is marked
        effective = [a for a in attempts if not a.attrs.get("fenced")]
        last = effective[-1] if effective else attempts[-1]
        intervals[task] = TaskInterval(
            task=task,
            start=attempts[0].start,
            end=last.end if last.end is not None else attempts[-1].end,  # type: ignore[arg-type]
            attempts=len(attempts),
            node=last.node,
        )
    return intervals


def _deps_from_spans(spans: Sequence[Span]) -> dict[str, tuple[str, ...]]:
    for span in spans:
        if span.kind == "job":
            deps = span.attrs.get("deps")
            if isinstance(deps, Mapping):
                return {str(t): tuple(d) for t, d in deps.items()}
    return {}


def critical_path(
    spans: Iterable[Span],
    deps: Optional[Mapping[str, Sequence[str]]] = None,
    *,
    trace_id: Optional[str] = None,
) -> CriticalPath:
    """Fold one trace's spans (+ task DAG) into its critical path.

    *deps* maps each task to the tasks it depends on; when omitted it is
    read from the job span's ``deps`` attribute (the JobManager records
    it there as tasks are added, so exported traces are self-contained).
    """
    spans = list(spans)
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
    if not spans:
        return CriticalPath(trace_id=trace_id or "")
    tid = trace_id if trace_id is not None else spans[0].trace_id
    dag = (
        {str(t): tuple(d) for t, d in deps.items()}
        if deps is not None
        else _deps_from_spans(spans)
    )
    intervals = task_intervals(spans)
    result = CriticalPath(trace_id=tid, intervals=intervals)
    if not intervals:
        return result

    job_span = next((s for s in spans if s.kind == "job"), None)
    if job_span is not None and job_span.duration is not None:
        result.makespan = job_span.duration
    else:
        result.makespan = max(i.end for i in intervals.values()) - min(
            i.start for i in intervals.values()
        )

    # -- backward walk over measured finish times -> the critical chain
    measured_deps = {
        task: tuple(d for d in dag.get(task, ()) if d in intervals)
        for task in intervals
    }
    current: Optional[str] = max(intervals, key=lambda t: (intervals[t].end, t))
    chain: list[TaskInterval] = []
    seen: set[str] = set()
    while current is not None and current not in seen:
        seen.add(current)
        chain.append(intervals[current])
        preds = measured_deps.get(current, ())
        current = (
            max(preds, key=lambda t: (intervals[t].end, t)) if preds else None
        )
    chain.reverse()
    result.path = chain
    result.path_duration = sum(i.duration for i in chain)

    # -- CPM slack over measured durations ---------------------------------
    duration = {t: intervals[t].duration for t in intervals}
    est: dict[str, float] = {}

    def earliest(task: str, visiting: tuple[str, ...] = ()) -> float:
        if task in est:
            return est[task]
        if task in visiting:  # defensive: the analyzer rejects cycles
            return 0.0
        preds = measured_deps.get(task, ())
        value = max(
            (earliest(p, visiting + (task,)) + duration[p] for p in preds),
            default=0.0,
        )
        est[task] = value
        return value

    for task in intervals:
        earliest(task)
    eft = {t: est[t] + duration[t] for t in intervals}
    cpm_makespan = max(eft.values())
    dependents: dict[str, list[str]] = {t: [] for t in intervals}
    for task, preds in measured_deps.items():
        for p in preds:
            dependents[p].append(task)
    lft: dict[str, float] = {}

    def latest(task: str, visiting: tuple[str, ...] = ()) -> float:
        if task in lft:
            return lft[task]
        if task in visiting:
            return cpm_makespan
        succs = dependents.get(task, ())
        value = min(
            (latest(s, visiting + (task,)) - duration[s] for s in succs),
            default=cpm_makespan,
        )
        lft[task] = value
        return value

    for task in intervals:
        latest(task)
    result.slack = {t: max(0.0, lft[t] - eft[t]) for t in intervals}
    return result
