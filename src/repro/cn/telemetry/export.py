"""Exporters: Prometheus text, Chrome ``trace_event`` JSON, and JSONL.

Three consumers, three formats:

* **Prometheus text** (``prometheus_text``) -- scrapeable via the
  portal's ``GET /metrics``; counters/gauges as single samples,
  histograms as ``_bucket``/``_sum``/``_count`` families.
* **Chrome trace_event JSON** (``chrome_trace``) -- load in
  ``chrome://tracing`` or Perfetto.  Spans become ``"X"`` (complete)
  events grouped by trace (process row) and node (thread row); span
  point-events become ``"i"`` (instant) events.  ``args`` carries
  ``span_id``/``parent_id``/``trace_id`` so the structural tests can
  rebuild the tree from the exported file alone.
* **JSONL** (``write_jsonl``/``read_jsonl``) -- one self-describing
  object per line (``{"kind": "span", ...}`` / ``{"kind": "metric",
  ...}``), the interchange format the ``python -m repro.telemetry``
  CLI consumes.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Optional, Union

from .metrics import MetricsRegistry, merge_label_sets
from .spans import Span

__all__ = [
    "prometheus_text",
    "chrome_trace",
    "spans_to_jsonl",
    "write_jsonl",
    "read_jsonl",
]


# -- Prometheus text format --------------------------------------------------

def _fmt_labels(labels: dict[str, str], extra: Optional[dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every registered metric in the Prometheus text format."""
    lines: list[str] = []
    for name, family in sorted(merge_label_sets(registry.all_metrics()).items()):
        kind = family[0].kind
        lines.append(f"# TYPE {name} {kind}")
        for metric in family:
            if kind == "histogram":
                for bound, count in metric.bucket_counts():
                    le = {"le": _fmt_value(float(bound))}
                    lines.append(
                        f"{name}_bucket{_fmt_labels(metric.labels, le)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_fmt_labels(metric.labels)} {metric.sum!r}"
                )
                lines.append(
                    f"{name}_count{_fmt_labels(metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_fmt_labels(metric.labels)} "
                    f"{_fmt_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


# -- Chrome trace_event JSON -------------------------------------------------

def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans -> Chrome ``trace_event`` dict (dump with ``json.dump``).

    Timestamps are microseconds relative to the earliest span start, so
    the viewer timeline starts at zero regardless of the monotonic-clock
    origin.  Process rows are traces (jobs); thread rows are nodes.
    """
    spans = [s for s in spans]
    events: list[dict[str, Any]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    origin = min(s.start for s in spans)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_of(trace_id: str) -> int:
        if trace_id not in pids:
            pids[trace_id] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[trace_id],
                    "tid": 0,
                    "args": {"name": f"trace {trace_id}"},
                }
            )
        return pids[trace_id]

    def tid_of(trace_id: str, node: Optional[str]) -> int:
        label = node or "manager"
        key = (trace_id, label)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(trace_id),
                    "tid": tids[key],
                    "args": {"name": label},
                }
            )
        return tids[key]

    def usec(ts: float) -> float:
        return (ts - origin) * 1e6

    last = max(s.end if s.end is not None else s.start for s in spans)
    for span in spans:
        pid = pid_of(span.trace_id)
        tid = tid_of(span.trace_id, span.node)
        end = span.end if span.end is not None else last
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": usec(span.start),
                "dur": max(0.0, usec(end) - usec(span.start)),
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **{k: v for k, v in span.attrs.items() if _jsonable(v)},
                },
            }
        )
        for ts, name, attrs in span.events:
            events.append(
                {
                    "name": name,
                    "cat": span.kind,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": usec(ts),
                    "args": {
                        "span_id": span.span_id,
                        **{k: v for k, v in attrs.items() if _jsonable(v)},
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


# -- JSONL interchange -------------------------------------------------------

def spans_to_jsonl(spans: Iterable[Span]) -> list[str]:
    # the discriminator is "rec", not "kind": spans and metrics both have
    # a domain "kind" of their own (job/task/..., counter/gauge/...)
    return [
        json.dumps({"rec": "span", **span.to_dict()}, default=str)
        for span in spans
    ]


def write_jsonl(
    stream: IO[str],
    *,
    spans: Iterable[Span] = (),
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Write spans (and optionally a metrics snapshot) as JSONL lines."""
    written = 0
    for line in spans_to_jsonl(spans):
        stream.write(line + "\n")
        written += 1
    if registry is not None:
        for record in registry.snapshot():
            stream.write(json.dumps({"rec": "metric", **record}, default=str))
            stream.write("\n")
            written += 1
    return written


def read_jsonl(
    source: Union[IO[str], Iterable[str]],
) -> tuple[list[Span], list[dict[str, Any]]]:
    """Parse a JSONL export back into (spans, metric records)."""
    spans: list[Span] = []
    metrics: list[dict[str, Any]] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("rec") == "span":
            spans.append(Span.from_dict(record))
        elif record.get("rec") == "metric":
            metrics.append(record)
    return spans, metrics
