"""repro.cn.telemetry: first-class observability for the CN runtime.

The paper's evaluation hinges on knowing where a composed job's
wall-clock time goes; this subsystem is the measurement layer that
answers it.  One :class:`Telemetry` hub per cluster bundles:

* a :class:`~repro.cn.telemetry.metrics.MetricsRegistry` of counters,
  gauges, and streaming histograms (always-on, <5% overhead budget --
  see ``benchmarks/test_perf_telemetry.py``);
* a :class:`~repro.cn.telemetry.spans.SpanRecorder` collecting one
  causal span tree per job (trace id == job id), propagated across
  retries, node failures, and manager failovers via the ``trace_ctx``
  carried on every :class:`~repro.cn.messages.Message`;
* the :func:`~repro.cn.telemetry.critical_path.critical_path` analyzer
  folding spans + task DAG into the job's critical path and slack;
* exporters (Prometheus text, Chrome ``trace_event`` JSON, JSONL) and
  per-tick cluster samplers.

Pass ``Cluster(telemetry=Telemetry())`` (the default) or
``Cluster(telemetry=None)`` / ``Telemetry(enabled=False)`` to disable.
Disabled telemetry costs one attribute test on the hot paths.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Callable, Optional

from .critical_path import CriticalPath, TaskInterval, critical_path, task_intervals
from .export import (
    chrome_trace,
    prometheus_text,
    read_jsonl,
    spans_to_jsonl,
    write_jsonl,
)
from .metrics import (
    BYTES_BUCKETS,
    DURATION_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeScopedMetrics,
    NullMetric,
)
from .samplers import sample_cluster, sample_node
from .spans import Span, SpanRecorder, orphan_spans, span_children

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "NodeScopedMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "NullMetric",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DURATION_BUCKETS",
    "BYTES_BUCKETS",
    "Span",
    "SpanRecorder",
    "span_children",
    "orphan_spans",
    "CriticalPath",
    "TaskInterval",
    "critical_path",
    "task_intervals",
    "prometheus_text",
    "chrome_trace",
    "spans_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "sample_cluster",
    "sample_node",
]


class Telemetry:
    """The per-cluster observability hub: metrics + spans + exports."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else time.monotonic
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(clock=self._clock)

    def now(self) -> float:
        return self._clock()

    # -- analysis ------------------------------------------------------------
    def critical_path(self, trace_id: str) -> CriticalPath:
        """Critical path of one traced job (trace id == job id)."""
        return critical_path(self.spans.spans(trace_id), trace_id=trace_id)

    # -- export conveniences -------------------------------------------------
    def prometheus_text(self) -> str:
        return prometheus_text(self.metrics)

    def chrome_trace(self, trace_id: Optional[str] = None) -> dict[str, Any]:
        return chrome_trace(self.spans.spans(trace_id))

    def write_jsonl(
        self,
        stream: IO[str],
        trace_id: Optional[str] = None,
        *,
        include_metrics: bool = True,
    ) -> int:
        return write_jsonl(
            stream,
            spans=self.spans.spans(trace_id),
            registry=self.metrics if include_metrics else None,
        )

    def dump_chrome_trace(
        self, path: str, trace_id: Optional[str] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(trace_id), handle, indent=1)

    def dump_jsonl(self, path: str, trace_id: Optional[str] = None) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle, trace_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<Telemetry {state}: {len(self.spans)} span(s), "
            f"{len(self.metrics.all_metrics())} metric(s)>"
        )
