"""``python -m repro.telemetry`` -- inspect exported telemetry offline.

Operates on the JSONL interchange files produced by
``Telemetry.dump_jsonl`` (or the portal's per-submission timeline
artifacts):

* ``summarize trace.jsonl`` -- traces, span/metric counts, per-trace
  makespans, top metric families;
* ``critical-path trace.jsonl [--trace ID]`` -- the critical chain,
  per-task slack, and coverage of the measured wall clock;
* ``export trace.jsonl --format chrome|prometheus|jsonl [-o out]`` --
  re-render a capture for ``chrome://tracing``/Perfetto or a scrape.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Optional, Sequence

from .critical_path import critical_path
from .export import chrome_trace, read_jsonl, spans_to_jsonl
from .spans import Span, orphan_spans

__all__ = ["main"]


def _load(path: str) -> tuple[list[Span], list[dict]]:
    with open(path, encoding="utf-8") as handle:
        return read_jsonl(handle)


def _pick_trace(spans: list[Span], wanted: Optional[str]) -> str:
    traces: dict[str, None] = {}
    for span in spans:
        traces.setdefault(span.trace_id)
    if not traces:
        raise SystemExit("no spans in input")
    if wanted is None:
        if len(traces) > 1:
            names = ", ".join(traces)
            raise SystemExit(f"multiple traces ({names}); pick one with --trace")
        return next(iter(traces))
    if wanted not in traces:
        raise SystemExit(f"trace {wanted!r} not in input ({', '.join(traces)})")
    return wanted


def _cmd_summarize(args: argparse.Namespace, out: IO[str]) -> int:
    spans, metrics = _load(args.input)
    traces: dict[str, list[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    out.write(
        f"{args.input}: {len(spans)} span(s), {len(metrics)} metric(s), "
        f"{len(traces)} trace(s)\n"
    )
    for trace_id, members in traces.items():
        job = next((s for s in members if s.kind == "job"), None)
        makespan = job.duration if job is not None else None
        attempts = sum(1 for s in members if s.kind == "attempt")
        orphans = len(orphan_spans(members))
        shape = "connected" if orphans == 0 else f"{orphans} ORPHAN(S)"
        span_word = f"{len(members)} span(s), {attempts} attempt(s), {shape}"
        if makespan is not None:
            out.write(f"  trace {trace_id}: {span_word}, makespan {makespan:.4f}s\n")
        else:
            out.write(f"  trace {trace_id}: {span_word}, still open\n")
    families: dict[str, float] = {}
    for record in metrics:
        if record.get("kind_") != "histogram" and "value" in record:
            families[record["name"]] = families.get(record["name"], 0.0) + float(
                record["value"]
            )
    for name in sorted(families):
        out.write(f"  metric {name}: {families[name]:g}\n")
    return 0


def _cmd_critical_path(args: argparse.Namespace, out: IO[str]) -> int:
    spans, _ = _load(args.input)
    trace_id = _pick_trace(spans, args.trace)
    result = critical_path(spans, trace_id=trace_id)
    if args.json:
        json.dump(result.to_dict(), out, indent=2)
        out.write("\n")
        return 0
    out.write(f"trace {trace_id}\n")
    out.write(
        f"makespan {result.makespan:.4f}s, critical path "
        f"{result.path_duration:.4f}s ({result.coverage:.0%} coverage)\n"
    )
    for interval in result.path:
        slack = result.slack.get(interval.task, 0.0)
        node = interval.node or "?"
        out.write(
            f"  {interval.task:<16} {interval.duration:8.4f}s  "
            f"x{interval.attempts} on {node:<8} slack {slack:.4f}s\n"
        )
    off_path = sorted(
        (t for t in result.intervals if t not in set(result.task_names)),
        key=lambda t: result.slack.get(t, 0.0),
    )
    for task in off_path:
        out.write(
            f"  ({task:<14} {result.intervals[task].duration:8.4f}s  "
            f"slack {result.slack.get(task, 0.0):.4f}s)\n"
        )
    return 0


def _cmd_export(args: argparse.Namespace, out: IO[str]) -> int:
    spans, metrics = _load(args.input)
    if args.trace is not None:
        spans = [s for s in spans if s.trace_id == args.trace]
    sink = open(args.output, "w", encoding="utf-8") if args.output else out
    try:
        if args.format == "chrome":
            json.dump(chrome_trace(spans), sink, indent=1)
            sink.write("\n")
        elif args.format == "prometheus":
            # re-render metric records scraped into the capture
            for record in metrics:
                labels = record.get("labels") or {}
                body = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                suffix = "{" + body + "}" if body else ""
                value = record.get("value", record.get("sum", 0.0))
                sink.write(f"{record['name']}{suffix} {value}\n")
        else:  # jsonl passthrough (filtered by --trace)
            for line in spans_to_jsonl(spans):
                sink.write(line + "\n")
            for record in metrics:
                sink.write(json.dumps(record, default=str) + "\n")
    finally:
        if args.output:
            sink.close()
    return 0


def main(argv: Optional[Sequence[str]] = None, out: IO[str] = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect CN telemetry captures (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="traces, spans, metrics at a glance")
    p.add_argument("input", help="JSONL capture file")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("critical-path", help="critical chain + slack per task")
    p.add_argument("input", help="JSONL capture file")
    p.add_argument("--trace", help="trace (job) id when the capture holds several")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_critical_path)

    p = sub.add_parser("export", help="re-render a capture in another format")
    p.add_argument("input", help="JSONL capture file")
    p.add_argument(
        "--format",
        choices=("chrome", "prometheus", "jsonl"),
        default="chrome",
    )
    p.add_argument("--trace", help="restrict to one trace id")
    p.add_argument("-o", "--output", help="output file (default stdout)")
    p.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
