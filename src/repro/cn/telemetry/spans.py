"""Causal spans: the timing skeleton of a distributed job.

A *span* is a named interval with a parent, forming one tree per trace.
The CN runtime records a deterministic span topology per job:

* ``job`` -- the root, begun when the JobManager creates the job and
  ended when the roster drains (trace id == job id, so a job adopted by
  a successor manager after a failover keeps its trace across manager
  epochs for free);
* ``task:<name>`` -- one logical span per task, begun at first
  placement, ended at the terminal state (spanning every attempt);
* ``place:<name>#<epoch>`` -- each placement round (solicit + upload);
* ``attempt:<name>#<epoch>`` -- each execution attempt, on whichever
  node hosted it.  Retries and failover re-placements create sibling
  attempt spans under the same task span;
* ``adopt#<mepoch>`` -- a successor manager's adoption of the job.

Span ids are **deterministic**, which buys two properties: recording is
idempotent (an adoption replay cannot duplicate the job or task spans),
and the tree is connected by construction -- every attempt's parent
exists because ``begin`` is get-or-create.

Messages carry a ``trace_ctx`` -- ``(trace_id, span_id)`` of the sending
span -- propagated through queues, the bus, retries, and adoptions, so a
message can always be attributed to the span that produced it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["Span", "SpanRecorder", "span_children", "orphan_spans"]


@dataclass
class Span:
    """One named interval in a trace tree."""

    trace_id: str
    span_id: str
    name: str
    kind: str  # job | task | place | attempt | adopt | custom
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    node: Optional[str] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: (ts, name, attrs) in-span point events
    events: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "attrs": dict(self.attrs),
            "events": [
                {"ts": ts, "name": name, "attrs": dict(attrs)}
                for ts, name, attrs in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data.get("name", data["span_id"]),
            kind=data.get("kind", "custom"),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            node=data.get("node"),
            attrs=dict(data.get("attrs") or {}),
            events=[
                (e["ts"], e["name"], dict(e.get("attrs") or {}))
                for e in data.get("events") or ()
            ],
        )


class SpanRecorder:
    """Thread-safe, cluster-global span store.

    One recorder serves every node of a cluster -- spans recorded by a
    manager that later dies stay available to its successor, which is
    what keeps a failover job's trace whole.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._spans: dict[tuple[str, str], Span] = {}
        self._order: list[tuple[str, str]] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._clock()

    # -- recording -----------------------------------------------------------
    def begin(
        self,
        trace_id: str,
        span_id: str,
        *,
        name: Optional[str] = None,
        kind: str = "custom",
        parent_id: Optional[str] = None,
        node: Optional[str] = None,
        ts: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Get-or-create the span; idempotent on ``(trace_id, span_id)``.

        A repeated ``begin`` (e.g. an adoption replaying job creation)
        returns the existing span untouched, merging only new attrs.
        """
        key = (trace_id, span_id)
        with self._lock:
            span = self._spans.get(key)
            if span is None:
                span = Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                    name=name if name is not None else span_id,
                    kind=kind,
                    start=ts if ts is not None else self._clock(),
                    node=node,
                    attrs=dict(attrs),
                )
                self._spans[key] = span
                self._order.append(key)
            elif attrs:
                for k, v in attrs.items():
                    span.attrs.setdefault(k, v)
            return span

    def end(
        self, span: Span, *, ts: Optional[float] = None, **attrs: Any
    ) -> Span:
        """Close *span* (first close wins); extra attrs are merged."""
        with self._lock:
            if span.end is None:
                span.end = ts if ts is not None else self._clock()
            if attrs:
                span.attrs.update(attrs)
            return span

    def record(
        self,
        trace_id: str,
        span_id: str,
        *,
        start: float,
        end: float,
        name: Optional[str] = None,
        kind: str = "custom",
        parent_id: Optional[str] = None,
        node: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-complete span in one call."""
        span = self.begin(
            trace_id,
            span_id,
            name=name,
            kind=kind,
            parent_id=parent_id,
            node=node,
            ts=start,
            **attrs,
        )
        return self.end(span, ts=end)

    def add_event(self, span: Span, name: str, **attrs: Any) -> None:
        with self._lock:
            span.events.append((self._clock(), name, dict(attrs)))

    # -- queries -------------------------------------------------------------
    def get(self, trace_id: str, span_id: str) -> Optional[Span]:
        with self._lock:
            return self._spans.get((trace_id, span_id))

    def spans(self, trace_id: Optional[str] = None) -> list[Span]:
        """All spans (or one trace's), in recording order."""
        with self._lock:
            keys = list(self._order)
            spans = dict(self._spans)
        if trace_id is None:
            return [spans[k] for k in keys]
        return [spans[k] for k in keys if k[0] == trace_id]

    def trace_ids(self) -> list[str]:
        with self._lock:
            seen: dict[str, None] = {}
            for trace_id, _ in self._order:
                seen.setdefault(trace_id)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def span_children(spans: Iterable[Span]) -> dict[Optional[str], list[Span]]:
    """Parent span id -> children, per trace-tree edge."""
    children: dict[Optional[str], list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def orphan_spans(spans: Iterable[Span]) -> list[Span]:
    """Spans whose declared parent does not exist in the same trace.

    An empty return means the trace forms one connected tree (every
    non-root span hangs off a recorded ancestor) -- the structural
    invariant the telemetry tests assert for jobs that survived chaos
    and manager failover.
    """
    spans = list(spans)
    by_trace: dict[str, set[str]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, set()).add(span.span_id)
    return [
        span
        for span in spans
        if span.parent_id is not None
        and span.parent_id not in by_trace.get(span.trace_id, set())
    ]
