"""Per-node samplers: turn cluster state into gauges on each tick.

``Cluster.tick`` calls :func:`sample_cluster` once per step (when
telemetry is enabled), refreshing per-node gauges:

* ``cn_node_free_memory`` / ``cn_node_free_slots`` -- placement headroom
  as the JobManagers' best-fit scoring sees it;
* ``cn_node_hosted_tasks`` -- tasks currently hosted by the node;
* ``cn_node_queued_messages`` -- messages sitting in the node's hosted
  task queues (backpressure signal);
* ``cn_queue_rejected_total`` / ``cn_queue_shed_total`` -- backpressure
  outcomes on the node's hosted queues (puts refused by the ``reject``
  policy, oldest messages evicted by ``shed_oldest``);
* ``cn_budget_drops_total`` -- task attempts dropped because their
  job's end-to-end budget was already spent;
* ``cn_node_heartbeat_misses`` -- consecutive missed heartbeats as seen
  by the watching failure detectors (max over watchers), i.e. how close
  each node is to being declared dead;
* ``cn_node_alive`` -- 1/0 liveness flag;
* ``cn_cluster_ticks_total`` -- detection periods elapsed.

Everything is duck-typed against the ``Cluster``/``CNServer`` surface
(``alive_servers``, ``taskmanager``, ``jobmanager``) so this module
never imports the runtime -- the runtime imports *us*.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry

__all__ = ["sample_cluster", "sample_node"]


def sample_node(
    registry: MetricsRegistry, server: Any, *, alive: bool = True
) -> None:
    """Refresh one node's gauges from its TaskManager state.

    All series go through the registry's node-scoped view, the single
    namespacing point that keeps per-node families from colliding (the
    proc backend merges worker-forwarded counters through the same
    view)."""
    scoped = registry.namespaced(server.name)
    scoped.gauge("cn_node_alive").set(1.0 if alive else 0.0)
    tm = getattr(server, "taskmanager", None)
    if tm is None:
        return
    scoped.gauge("cn_node_free_memory").set(tm.free_memory)
    scoped.gauge("cn_node_free_slots").set(tm.free_slots)
    hosted = getattr(tm, "hosted_count", None)
    if callable(hosted):
        scoped.gauge("cn_node_hosted_tasks").set(hosted())
    queued = getattr(tm, "queued_messages", None)
    if callable(queued):
        scoped.gauge("cn_node_queued_messages").set(queued())
    overload = getattr(tm, "queue_overload_stats", None)
    if callable(overload):
        # backpressure outcomes across the node's hosted queues: how many
        # puts were refused (reject policy) or evicted (shed_oldest)
        rejected, shed = overload()
        scoped.gauge("cn_queue_rejected_total").set(rejected)
        scoped.gauge("cn_queue_shed_total").set(shed)
    poisoned = getattr(tm, "queue_poisoned", None)
    if callable(poisoned):
        # frames quarantined by dequeue-time digest verification
        scoped.gauge("cn_queue_poisoned_total").set(poisoned())
    drops = getattr(tm, "budget_drops", None)
    if drops is not None:
        scoped.gauge("cn_budget_drops_total").set(drops)


def sample_cluster(registry: MetricsRegistry, cluster: Any) -> None:
    """Refresh every node's gauges plus cluster-level counters."""
    alive = {server.name for server in cluster.alive_servers()}
    misses: dict[str, int] = {}
    for server in cluster.servers:
        jm = getattr(server, "jobmanager", None)
        detector = getattr(jm, "failure_detector", None)
        if detector is None or server.name not in alive:
            continue
        for peer in cluster.servers:
            if peer.name == server.name:
                continue
            seen = detector.misses(peer.name)
            misses[peer.name] = max(misses.get(peer.name, 0), seen)
    for server in cluster.servers:
        sample_node(registry, server, alive=server.name in alive)
        registry.gauge("cn_node_heartbeat_misses", node=server.name).set(
            misses.get(server.name, 0)
        )
    registry.counter("cn_cluster_ticks_total").inc()
