"""Always-on metrics primitives: counters, gauges, streaming histograms.

The registry is the CN runtime's numeric memory: every routed message,
task start, retry, placement, and sampler reading increments a metric
here.  The design constraints come from the <5% overhead budget measured
by ``benchmarks/test_perf_telemetry.py``:

* one short critical section per update (a plain ``threading.Lock``),
* no allocation on the hot path -- callers bind their metric once
  (``registry.counter(...)`` returns the live object) and then call
  ``inc``/``observe`` on it,
* histograms are *streaming*: fixed cumulative buckets (Prometheus
  style) plus a bounded reservoir for p50/p95/p99 estimates.  Reservoir
  replacement uses a deterministic LCG, so two identical runs report
  identical quantiles -- the same determinism discipline the chaos layer
  follows.

Disabled telemetry never reaches this module: components hold
:data:`NULL_COUNTER` / :data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM`
stand-ins whose methods are no-ops.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeScopedMetrics",
    "NullMetric",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DURATION_BUCKETS",
    "BYTES_BUCKETS",
]

#: default cumulative bucket bounds for second-valued histograms
DURATION_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: default cumulative bucket bounds for byte-valued histograms
BYTES_BUCKETS: tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)

_RESERVOIR_CAP = 1024


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def _set_total(self, value: float) -> None:
        """Collector hook: overwrite with an externally tracked total
        (for counters derived from runtime stats at scrape time)."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, free memory)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Streaming histogram: cumulative buckets + deterministic reservoir.

    ``observe`` is O(log buckets); quantiles are computed on demand from
    the reservoir (exact until ``_RESERVOIR_CAP`` observations, then a
    uniform sample maintained with a deterministic LCG).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: Sequence[float] = DURATION_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0
        self._reservoir: list[float] = []
        self._lcg = 0x2545F491  # fixed seed: deterministic replacement
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if len(self._reservoir) < _RESERVOIR_CAP:
                self._reservoir.append(value)
            else:
                # deterministic pseudo-random slot (LCG, Numerical Recipes)
                self._lcg = (self._lcg * 1664525 + 1013904223) & 0xFFFFFFFF
                slot = self._lcg % self._count
                if slot < _RESERVOIR_CAP:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Reservoir quantile estimate in [0, 1]; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return None
        index = min(len(sample) - 1, int(q * len(sample)))
        return sample[index]

    def percentiles(self) -> dict[str, Optional[float]]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus style."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            total, count = self._sum, self._count
        return {"sum": total, "count": count, **self.percentiles()}


class NullMetric:
    """No-op stand-in handed out when telemetry is disabled."""

    kind = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullMetric()
NULL_GAUGE = NullMetric()
NULL_HISTOGRAM = NullMetric()


class MetricsRegistry:
    """Named, labelled metrics with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the live metric object;
    callers on hot paths bind once and update lock-free of the registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()
        self._collectors: list[Callable[[], None]] = []

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a scrape-time callback that refreshes derived metrics
        from runtime state.  Hot paths that already keep their own plain
        counters (e.g. ``BusStats``) use this instead of paying a locked
        ``inc()`` per event; the callback folds the totals in whenever
        the registry is read."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = tuple(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # noqa: BLE001  # conclint: waive CC302 -- a collector outliving its source must not kill reads
                continue

    def _get(self, factory, kind: str, name: str, labels: dict[str, str], **kw):
        key = (name, _label_key(labels))
        with self._lock:
            seen = self._kinds.get(name)
            if seen is not None and seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen}, "
                    f"cannot re-register as {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, {k: str(v) for k, v in labels.items()}, **kw)
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self, name: str, *, buckets: Sequence[float] = DURATION_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, "histogram", name, labels, buckets=buckets)

    def all_metrics(self) -> list[Any]:
        """Every registered metric, ordered by (name, labels)."""
        self._collect()
        with self._lock:
            items = sorted(self._metrics.items())
        return [metric for _, metric in items]

    def find(self, name: str, **labels: Any) -> Optional[Any]:
        """The metric registered under exactly (name, labels), or None."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Convenience: current value of a counter/gauge, or None."""
        self._collect()
        metric = self.find(name, **labels)
        return metric.value if metric is not None else None

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        self._collect()
        with self._lock:
            metrics = [m for (n, _), m in self._metrics.items() if n == name]
        return sum(m.value for m in metrics)

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-friendly dump of every metric (for the JSONL exporter)."""
        out = []
        for metric in self.all_metrics():
            out.append(
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "labels": dict(metric.labels),
                    **metric.snapshot(),
                }
            )
        return out

    def namespaced(self, node: str) -> "NodeScopedMetrics":
        """A view of this registry that stamps ``node=<id>`` on every
        metric it hands out.  This is how per-node series stay distinct
        in the one coordinator registry: samplers use it for node
        gauges, and the proc backend merges worker-forwarded counters
        through it so two workers incrementing the same counter name
        can never collide on a label set."""
        return NodeScopedMetrics(self, node)


class NodeScopedMetrics:
    """A :class:`MetricsRegistry` facade scoped to one node id.

    Every ``counter``/``gauge``/``histogram`` call adds ``node=<id>``
    unless the caller already pinned an explicit ``node`` label (an
    explicit label wins; the scope is a default, not a rewrite).
    """

    __slots__ = ("_registry", "_node")

    def __init__(self, registry: MetricsRegistry, node: str) -> None:
        self._registry = registry
        self._node = node

    @property
    def node(self) -> str:
        return self._node

    def _scoped(self, labels: dict[str, Any]) -> dict[str, Any]:
        labels.setdefault("node", self._node)
        return labels

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._registry.counter(name, **self._scoped(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._registry.gauge(name, **self._scoped(labels))

    def histogram(
        self, name: str, *, buckets: Sequence[float] = DURATION_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._registry.histogram(
            name, buckets=buckets, **self._scoped(labels)
        )


def merge_label_sets(metrics: Iterable[Any]) -> dict[str, list[Any]]:
    """Group metrics by family name (export helper)."""
    families: dict[str, list[Any]] = {}
    for metric in metrics:
        families.setdefault(metric.name, []).append(metric)
    return families
