"""CNServer: the servant combining JobManager and TaskManager.

"JobManager and the TaskManager are part of the same process, CNServer,
which is a servant (since it acts as a client and a server)." (paper
section 3)

A CNServer is one simulated cluster node: it subscribes both of its
components to the multicast bus (jobmanager solicitations answered by
the JobManager, taskmanager solicitations by the TaskManager's capacity
check) and registers itself with peer JobManagers so any manager can
upload tasks to any node.  It also relays heartbeat events from the bus
into its JobManager's failure detector, and can leave/rejoin the subnet
wholesale when its node crashes or revives.
"""

from __future__ import annotations

from typing import Any, Optional

from .chaos import ChaosPolicy, VirtualClock
from .durability import JobDirectory, ReplicatedJournal
from .jobmanager import JobManager
from .multicast import MulticastBus, Solicitation
from .registry import TaskRegistry
from .runmodel import RunModel
from .taskmanager import TaskManager
from .transport.base import Transport

__all__ = ["CNServer"]


class CNServer:
    """One cluster node hosting a JobManager + TaskManager pair."""

    def __init__(
        self,
        name: str,
        bus: MulticastBus,
        registry: TaskRegistry,
        *,
        memory_capacity: int = 8000,
        slots: int = 64,
        max_jobs: int = 16,
        accept_jobs: bool = True,
        accept_tasks: bool = True,
        chaos: Optional[ChaosPolicy] = None,
        clock: Optional[VirtualClock] = None,
        failure_k: int = 3,
        retry_backoff=None,
        queue_maxsize: int = 0,
        queue_policy: str = "block",
        checksums: bool = False,
        transport: Optional[Transport] = None,
        scheduler: str = "solicit",
    ) -> None:
        self.name = name
        self.bus = bus
        self.accept_jobs = accept_jobs
        self.accept_tasks = accept_tasks
        self.taskmanager = TaskManager(
            f"{name}/tm",
            memory_capacity=memory_capacity,
            slots=slots,
            chaos=chaos,
            clock=clock,
            queue_maxsize=queue_maxsize,
            queue_policy=queue_policy,
            checksums=checksums,
        )
        #: this node's execution backend; the TaskManager runs every
        #: attempt through the executor the transport hands it
        self.transport = transport
        if transport is not None:
            self.taskmanager.executor = transport.executor_for(self.taskmanager)
        self.jobmanager = JobManager(
            f"{name}/jm",
            bus,
            registry,
            max_jobs=max_jobs,
            local_taskmanager=self.taskmanager,
            failure_k=failure_k,
            retry_backoff=retry_backoff,
        )
        self.jobmanager.checksums = checksums
        self.jobmanager.scheduler = scheduler
        self._subscribed = False
        #: this node's replica of the write-ahead job journal (durability
        #: extension); None until the Cluster attaches one
        self.journal: Optional[ReplicatedJournal] = None
        #: the cluster Telemetry hub (observability extension); None until
        #: the Cluster wires one in via :meth:`set_telemetry`
        self.telemetry = None

    # -- telemetry -------------------------------------------------------------
    def set_telemetry(self, telemetry) -> None:
        """Hand the cluster's Telemetry hub to both components; a None (or
        disabled) hub leaves every hot path uninstrumented."""
        self.telemetry = telemetry
        self.jobmanager.telemetry = telemetry
        self.taskmanager.telemetry = telemetry

    # -- durability ------------------------------------------------------------
    def attach_durability(
        self, journal: ReplicatedJournal, directory: JobDirectory
    ) -> None:
        """Wire the write-ahead journal and the cluster job directory into
        this node's JobManager; journal replicas arriving on the bus are
        folded into the local backend by :meth:`_on_event`."""
        self.journal = journal
        self.jobmanager.journal = journal
        self.jobmanager.directory = directory

    # -- bus integration ------------------------------------------------------
    def start(self) -> None:
        """Join the neighborhood: subscribe to multicast solicitations and
        heartbeat events."""
        if self._subscribed:
            return
        self.bus.subscribe(self.name, self._respond)
        self.bus.attach_listener(self.name, self._on_event)
        self._subscribed = True

    def _respond(self, solicitation: Solicitation) -> Optional[Any]:
        if solicitation.kind == "jobmanager":
            if not self.accept_jobs:
                return None
            return self.jobmanager.willing_to_manage(solicitation)
        if solicitation.kind == "taskmanager":
            if not self.accept_tasks:
                return None
            memory = int(solicitation.requirements.get("memory", 0))
            runmodel = RunModel.parse(
                solicitation.requirements.get("runmodel", RunModel.RUN_AS_THREAD_IN_TM.value)
            )
            if not self.taskmanager.can_host(memory, runmodel):
                return None
            return {
                "taskmanager": self.taskmanager.name,
                "free_memory": self.taskmanager.free_memory,
                "free_slots": self.taskmanager.free_slots,
            }
        if solicitation.kind == "rule":
            # decentralized scheduling: expand the rule locally and bid
            if not self.accept_tasks:
                return None
            rule = solicitation.requirements.get("rule")
            if rule is None:
                return None
            return self.taskmanager.compute_bid(rule)
        return None

    def _on_event(self, topic: str, payload: dict) -> None:
        """Bus event listener: feed heartbeats to the failure detector and
        journal replicas into the local journal backend."""
        if topic == "heartbeat":
            node = payload.get("node")
            if node:
                self.jobmanager.on_heartbeat(node)
        elif topic == "journal":
            journal = self.journal
            if journal is not None:
                journal.receive(payload)

    def connect_peer(self, peer: "CNServer") -> None:
        """Allow this node's JobManager to upload tasks to *peer*'s TM."""
        self.jobmanager.register_taskmanager(peer.taskmanager)

    # -- node-level failure ----------------------------------------------------
    def leave_subnet(self) -> None:
        """Drop off the bus (crash or partition isolation): no more
        solicitation responses, no more event deliveries."""
        if self._subscribed:
            self.bus.unsubscribe(self.name)
            self.bus.detach_listener(self.name)
            self._subscribed = False

    def rejoin_subnet(self) -> None:
        if not self._subscribed:
            self.bus.subscribe(self.name, self._respond)
            self.bus.attach_listener(self.name, self._on_event)
            self._subscribed = True

    def shutdown(self) -> None:
        self.leave_subnet()
        self.jobmanager.shutdown()
        self.taskmanager.shutdown()

    def __repr__(self) -> str:
        return f"<CNServer {self.name!r}>"
