"""Durable job state: write-ahead journal, replication, and replay.

PR 2 made *worker* nodes expendable; this module makes the coordinating
JobManager expendable too.  Every job mutation -- submission (with the
CNX descriptor), task specs, placements, delivery-ledger entries, state
transitions, checkpoints -- is appended to a write-ahead **job journal**
before (or atomically with) taking effect, and each append is replicated
to every peer CNServer over the existing multicast bus (topic
``journal``).  When the failure detector declares a manager node dead, a
deterministic successor replays its replica of the journal into a fresh
:class:`~repro.cn.job.Job` and adopts the in-flight work (see
:meth:`JobManager.adopt_job`).

Fencing: each job carries a *manager epoch*, bumped by the adoption
record.  Journal backends keep a per-job high-water mark and reject any
record stamped with an older epoch, so a zombie manager (its node
declared dead but its threads still running) cannot corrupt the log the
successor now owns.  This extends the per-task attempt-epoch fence of
PR 2 one level up.

Backends are pluggable: :class:`MemoryJournal` keeps records in-process
(tests, default), :class:`FileJournal` persists JSONL to disk (payloads
that are not JSON-serializable -- numpy blocks, :class:`TaskSpec`,
:class:`Message` -- ride in a pickle/base64 envelope).

:func:`replay_job` is a *pure* function from a record sequence to a
:class:`JobSnapshot`; determinism of recovery reduces to determinism of
this function, which the property tests exercise directly.
"""

from __future__ import annotations

import base64
import itertools
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..analysis.conc.runtime import make_lock
from .errors import JournalError
from .job import TaskSpec, TaskState
from .messages import Message

__all__ = [
    "JournalRecord",
    "MemoryJournal",
    "FileJournal",
    "ReplicatedJournal",
    "JobDirectory",
    "DirectoryEntry",
    "JobSnapshot",
    "replay_job",
    "journal_factory_for_dir",
    "RECORD_KINDS",
]

#: every record kind the journal understands, in no particular order
RECORD_KINDS = (
    "job-created",   # client, manager, descriptor?   -- job submission
    "job-adopted",   # manager, previous              -- failover fence
    "task-spec",     # spec (TaskSpec)                -- roster entry
    "task-placed",   # task, node, epoch              -- placement
    "task-state",    # task, state, attempts, result?, error?
    "delivery",      # message (Message)              -- ledger entry
    "delivery_batch",  # messages (list[Message])     -- one fan-out, batched
    "ledger-gc",     # task, upto                     -- ledger truncation
    "shed",          # task, serial                   -- backpressure eviction
    "dead-letter",   # task, serial, digests          -- poison quarantine
    "checkpoint",    # task, tag, state               -- application state
    "job-finished",  # failed (bool)
)


@dataclass(frozen=True)
class JournalRecord:
    """One append-only journal entry.

    ``seq`` orders records from one origin; ``mepoch`` is the manager
    epoch the writer believed it held -- the fencing token.  ``data`` is
    kind-specific (see :data:`RECORD_KINDS`).
    """

    seq: int
    job_id: str
    kind: str
    mepoch: int
    origin: str
    data: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """Bus-transportable form (in-process: objects pass by reference)."""
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "mepoch": self.mepoch,
            "origin": self.origin,
            "data": self.data,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalRecord":
        return cls(
            seq=payload["seq"],
            job_id=payload["job_id"],
            kind=payload["kind"],
            mepoch=payload["mepoch"],
            origin=payload["origin"],
            data=payload.get("data") or {},
        )


class MemoryJournal:
    """In-process append-only journal with manager-epoch fencing.

    The base backend: keeps everything in a list, no serialization.
    Subclasses add persistence by overriding :meth:`_persist`.
    """

    def __init__(self) -> None:
        self._lock = make_lock(f"{type(self).__name__}._lock")
        self._records: list[JournalRecord] = []
        self._high_water: dict[str, int] = {}
        #: records rejected by the epoch fence (zombie-manager writes)
        self.fenced: list[JournalRecord] = []

    def append(self, record: JournalRecord) -> bool:
        """Append unless fenced; returns whether the record was accepted.

        A record stamped with a manager epoch older than the job's
        high-water mark is a zombie write and is dropped (but kept on
        :attr:`fenced` for observability)."""
        with self._lock:
            high = self._high_water.get(record.job_id, 0)
            if record.mepoch < high:
                self.fenced.append(record)
                return False
            self._high_water[record.job_id] = max(high, record.mepoch)
            self._records.append(record)
            self._persist(record)
            return True

    def records(self, job_id: Optional[str] = None) -> list[JournalRecord]:
        with self._lock:
            if job_id is None:
                return list(self._records)
            return [r for r in self._records if r.job_id == job_id]

    def job_ids(self) -> list[str]:
        with self._lock:
            seen: dict[str, None] = {}
            for record in self._records:
                seen.setdefault(record.job_id, None)
            return list(seen)

    def manager_epoch(self, job_id: str) -> int:
        """The fencing high-water mark for *job_id* (0 if never seen)."""
        with self._lock:
            return self._high_water.get(job_id, 0)

    def _persist(self, record: JournalRecord) -> None:
        """Hook for durable backends; the lock is held."""

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def _encode_data(data: dict) -> dict:
    """JSON when possible; otherwise a pickle/base64 envelope (numpy
    blocks, TaskSpec, Message payloads)."""
    try:
        json.dumps(data)
        return data
    except (TypeError, ValueError):
        blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        return {"__pickled__": base64.b64encode(blob).decode("ascii")}


def _decode_data(data: dict) -> dict:
    if isinstance(data, dict) and set(data) == {"__pickled__"}:
        return pickle.loads(base64.b64decode(data["__pickled__"]))
    return data


class FileJournal(MemoryJournal):
    """JSONL-on-disk journal: one JSON object per line, append-only.

    Existing records are loaded on construction, so a restarted server
    resumes with its journal intact (fencing state is rebuilt too).
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._fh = None  # not writing yet: loads must not re-persist
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    raw = json.loads(line)
                    raw["data"] = _decode_data(raw.get("data") or {})
                    # re-run the fence so a tampered/merged file cannot
                    # smuggle stale-epoch records back in
                    super().append(JournalRecord.from_payload(raw))
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, KeyError, OSError) as exc:
            raise JournalError(f"corrupt journal file {path!r}: {exc}") from exc
        self._fh = open(path, "a", encoding="utf-8")

    def _persist(self, record: JournalRecord) -> None:
        if self._fh is None:
            return  # constructor replaying the existing file
        payload = record.to_payload()
        payload["data"] = _encode_data(payload["data"])
        try:
            self._fh.write(json.dumps(payload) + "\n")
            self._fh.flush()
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"cannot append to journal {self.path!r}: {exc}"
            ) from exc

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass


class ReplicatedJournal:
    """A node's journal writer: local append + multicast replication.

    Appends go to the local backend first (write-ahead), then one bus
    publish on topic ``journal`` fans the record out; every peer
    CNServer feeds it into its own backend via :meth:`receive`.  The
    lock is held across append+publish so all replicas see one job's
    records in the same order (each job has a single writer per manager
    epoch, so this is enough for per-job total order).
    """

    def __init__(
        self,
        backend: Optional[MemoryJournal] = None,
        bus: Optional[Any] = None,
        origin: str = "",
    ) -> None:
        self.backend = backend if backend is not None else MemoryJournal()
        self.bus = bus
        self.origin = origin
        self._seq = itertools.count(1)
        self._lock = make_lock("ReplicatedJournal._lock", reentrant=False)

    def append(
        self, job_id: str, kind: str, data: dict, mepoch: int = 1
    ) -> Optional[JournalRecord]:
        """Journal one event; returns the record, or None if fenced."""
        with self._lock:
            record = JournalRecord(
                seq=next(self._seq),
                job_id=job_id,
                kind=kind,
                mepoch=mepoch,
                origin=self.origin,
                data=dict(data),
            )
            # append+publish stay under _lock so every replica sees this
            # origin's records in seq order; the backend and bus are leaf
            # locks below ReplicatedJournal._lock in the hierarchy.
            # conclint: waive CC201 -- ordered-replication invariant (see above)
            if not self.backend.append(record):
                return None
            if self.bus is not None:
                # conclint: waive CC201 -- ordered-replication invariant, see above
                self.bus.publish("journal", record.to_payload(), sender=self.origin)
            return record

    def receive(self, payload: dict) -> bool:
        """A replica arrived on the bus; returns whether it was accepted
        (own-origin records already applied locally are skipped)."""
        record = JournalRecord.from_payload(payload)
        if record.origin == self.origin:
            return False
        # remote replicas bypass _lock on purpose: _lock only orders *local*
        # appends with their publishes; the backend serializes all writers.
        # conclint: waive CC101 -- backend is internally locked (see above)
        return self.backend.append(record)

    def records(self, job_id: Optional[str] = None) -> list[JournalRecord]:
        return self.backend.records(job_id)

    def jobs_managed_by(
        self, manager: str, *, unfinished_only: bool = True
    ) -> list[str]:
        """Job ids whose *current* manager (after any adoptions) is
        *manager*; with ``unfinished_only`` jobs with a job-finished
        record at the current epoch are excluded."""
        owner: dict[str, tuple[int, str]] = {}
        finished: dict[str, int] = {}
        for record in self.backend.records():
            if record.kind in ("job-created", "job-adopted"):
                best = owner.get(record.job_id, (0, ""))
                if record.mepoch >= best[0]:
                    owner[record.job_id] = (
                        record.mepoch,
                        record.data.get("manager", ""),
                    )
            elif record.kind == "job-finished":
                finished[record.job_id] = max(
                    finished.get(record.job_id, 0), record.mepoch
                )
        out = []
        for job_id, (epoch, who) in owner.items():
            if who != manager:
                continue
            if unfinished_only and finished.get(job_id, 0) >= epoch:
                continue
            out.append(job_id)
        return sorted(out)


@dataclass(frozen=True)
class DirectoryEntry:
    """Current binding of one job id: who manages it, which Job object."""

    manager: Any  # JobManager (untyped to avoid an import cycle)
    job: Any      # Job
    epoch: int = 1


class JobDirectory:
    """Cluster-wide job_id -> (manager, Job) map.

    Client-side :class:`~repro.cn.api.JobHandle` objects resolve through
    the directory on every access, so when a successor adopts a job and
    re-registers it, existing handles transparently re-bind -- the
    client never learns its manager died.
    """

    def __init__(self) -> None:
        self._entries: dict[str, DirectoryEntry] = {}
        self._lock = make_lock("JobDirectory._lock", reentrant=False)

    def register(self, job_id: str, manager: Any, job: Any, epoch: int = 1) -> None:
        replaced = None
        with self._lock:
            current = self._entries.get(job_id)
            if current is not None and current.epoch > epoch:
                return  # a zombie manager cannot re-claim an adopted job
            if current is not None and current.job is not job:
                replaced = current.job
            self._entries[job_id] = DirectoryEntry(manager, job, epoch)
        # wake clients blocked on the superseded Job *after* releasing the
        # directory lock (mark_rebound takes the job lock; keep the order
        # one-way to stay deadlock-free) so they re-resolve to this entry
        if replaced is not None:
            mark = getattr(replaced, "mark_rebound", None)
            if callable(mark):
                mark()

    def lookup(self, job_id: str) -> Optional[DirectoryEntry]:
        with self._lock:
            return self._entries.get(job_id)

    def job_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)


@dataclass
class JobSnapshot:
    """The state :func:`replay_job` reconstructs from a journal."""

    job_id: str
    client: str = ""
    manager: str = ""
    mepoch: int = 1
    descriptor: Optional[str] = None
    specs: dict[str, TaskSpec] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    states: dict[str, str] = field(default_factory=dict)
    results: dict[str, Any] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    epochs: dict[str, int] = field(default_factory=dict)
    nodes: dict[str, str] = field(default_factory=dict)
    deliveries: dict[str, list[Message]] = field(default_factory=dict)
    #: cumulative per-task ledger-GC truncation counts (see ``ledger-gc``)
    gc_watermarks: dict[str, int] = field(default_factory=dict)
    #: message serials evicted from bounded queues, per task; every serial
    #: here must also appear in ``deliveries`` (write-ahead ledger before
    #: delivery), so a replay re-offers the shed message instead of losing it
    sheds: dict[str, list[int]] = field(default_factory=dict)
    #: absolute end-to-end deadline on the cluster clock, if the job
    #: carried a budget
    deadline: Optional[float] = None
    #: quarantined-frame records (one per poisoned dequeue); survive
    #: adoption so the successor's portal artifacts stay complete
    dead_letters: list[dict] = field(default_factory=list)
    checkpoints: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    finished: bool = False
    failed: bool = False

    def terminal_tasks(self) -> list[str]:
        return [
            name
            for name in self.order
            if TaskState(self.states.get(name, "PENDING")).terminal
        ]

    def pending_tasks(self) -> list[str]:
        """Tasks a successor must re-place: everything not terminal."""
        return [name for name in self.order if name not in self.terminal_tasks()]


def replay_job(job_id: str, records: Iterable[JournalRecord]) -> JobSnapshot:
    """Fold a journal into a :class:`JobSnapshot` -- pure and total.

    Records for other jobs are skipped; records stamped with a stale
    manager epoch are ignored (the same fence the backends apply, so
    replaying an unfenced raw sequence gives the same snapshot as the
    fenced journal).  Later records win: states and checkpoints are
    last-writer, placements keep the highest attempt epoch, deliveries
    accumulate in order.
    """
    snapshot = JobSnapshot(job_id=job_id)
    high = 0
    for record in records:
        if record.job_id != job_id:
            continue
        if record.mepoch < high:
            continue
        high = max(high, record.mepoch)
        snapshot.mepoch = high
        kind, data = record.kind, record.data
        if kind == "job-created":
            snapshot.client = data.get("client", snapshot.client)
            snapshot.manager = data.get("manager", snapshot.manager)
            snapshot.descriptor = data.get("descriptor", snapshot.descriptor)
            snapshot.deadline = data.get("deadline", snapshot.deadline)
        elif kind == "job-adopted":
            snapshot.manager = data.get("manager", snapshot.manager)
        elif kind == "task-spec":
            spec = data["spec"]
            if spec.name not in snapshot.specs:
                snapshot.order.append(spec.name)
            snapshot.specs[spec.name] = spec
            snapshot.states.setdefault(spec.name, TaskState.PENDING.value)
        elif kind == "task-placed":
            task = data["task"]
            snapshot.nodes[task] = data.get("node")
            snapshot.epochs[task] = max(
                snapshot.epochs.get(task, 0), int(data.get("epoch", 0))
            )
        elif kind == "task-state":
            task = data["task"]
            snapshot.states[task] = data.get("state", TaskState.PENDING.value)
            snapshot.attempts[task] = max(
                snapshot.attempts.get(task, 0), int(data.get("attempts", 0))
            )
            if "result" in data:
                snapshot.results[task] = data["result"]
            if data.get("error"):
                snapshot.errors[task] = data["error"]
        elif kind == "delivery":
            message = data["message"]
            snapshot.deliveries.setdefault(message.recipient, []).append(message)
        elif kind == "delivery_batch":
            # one record per fan-out: unpack in order -- the snapshot is
            # identical to the per-message `delivery` encoding
            for message in data["messages"]:
                snapshot.deliveries.setdefault(message.recipient, []).append(
                    message
                )
        elif kind == "ledger-gc":
            # the manager truncated a terminal task's ledger; `upto` is
            # the cumulative count of entries dropped for that task, so
            # replay drops exactly the not-yet-dropped prefix (idempotent
            # under record duplication and monotone across adoptions)
            task = data["task"]
            upto = int(data.get("upto", 0))
            already = snapshot.gc_watermarks.get(task, 0)
            drop = upto - already
            if drop > 0:
                messages = snapshot.deliveries.get(task)
                if messages:
                    del messages[:drop]
                snapshot.gc_watermarks[task] = upto
        elif kind == "shed":
            # a bounded queue evicted this delivery before the task
            # consumed it; the message itself is already in `deliveries`
            # (ledgered write-ahead), so the shed record only marks which
            # serials need re-offering on replay
            task = data["task"]
            serial = int(data.get("serial", 0))
            serials = snapshot.sheds.setdefault(task, [])
            if serial not in serials:
                serials.append(serial)
        elif kind == "dead-letter":
            # a corrupt frame was quarantined at dequeue; keep the full
            # record so portal artifacts and oracles can account for it
            snapshot.dead_letters.append(dict(data))
        elif kind == "checkpoint":
            snapshot.checkpoints[data["task"]] = (data.get("tag"), data.get("state"))
        elif kind == "job-finished":
            snapshot.finished = True
            snapshot.failed = bool(data.get("failed"))
    return snapshot


def journal_factory_for_dir(
    directory: str,
) -> Callable[[str], FileJournal]:
    """A per-node :class:`FileJournal` factory writing ``<node>.jsonl``
    under *directory* (convenience for ``Cluster(journal_dir=...)``)."""
    import os

    os.makedirs(directory, exist_ok=True)

    def factory(node: str) -> FileJournal:
        return FileJournal(os.path.join(directory, f"{node}.jsonl"))

    return factory
