"""Utility tests: XML helpers and id generation."""

import threading

import pytest

from repro.util.idgen import IdGenerator, SequentialIds
from repro.util.xmlutil import (
    canonicalize,
    escape_attr,
    escape_text,
    parse_prefixed,
    pretty_print,
    serialize_prefixed,
    strip_whitespace_nodes,
    xml_equal,
)


class TestEscaping:
    def test_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_quotes_and_newlines(self):
        assert escape_attr('say "hi"\n') == "say &quot;hi&quot;&#10;"


class TestPrefixed:
    def test_parse_undeclared_prefix(self):
        root = parse_prefixed("<UML:Model name='m'><UML:Package/></UML:Model>")
        assert root.tag == "UML.Model"
        assert root[0].tag == "UML.Package"

    def test_attributes_untouched(self):
        root = parse_prefixed("<UML:Model xmi.id='a1'/>")
        assert root.get("xmi.id") == "a1"

    def test_serialize_restores_uml_only(self):
        import xml.etree.ElementTree as ET

        root = ET.Element("XMI")
        ET.SubElement(root, "XMI.header")
        ET.SubElement(root, "UML.Model", {"xmi.id": "a1"})
        out = serialize_prefixed(root)
        assert "<UML:Model" in out
        assert "<XMI.header/>" in out  # XMI.* stays dotted

    def test_roundtrip(self):
        text = "<XMI><XMI.content><UML:Model xmi.id='a1'/></XMI.content></XMI>"
        root = parse_prefixed(text)
        out = serialize_prefixed(root)
        assert xml_equal(parse_prefixed(out), root)


class TestCanonical:
    def test_attribute_order_insensitive(self):
        assert xml_equal('<a x="1" y="2"/>', '<a y="2" x="1"/>')

    def test_whitespace_insensitive(self):
        assert xml_equal("<a>\n  <b/>\n</a>", "<a><b/></a>")

    def test_child_order_sensitive(self):
        assert not xml_equal("<a><b/><c/></a>", "<a><c/><b/></a>")

    def test_text_significant(self):
        assert not xml_equal("<a>x</a>", "<a>y</a>")

    def test_canonicalize_hashable(self):
        assert isinstance(hash(canonicalize("<a><b/></a>")), int)


class TestPrettyPrint:
    def test_declaration_toggle(self):
        import xml.etree.ElementTree as ET

        elem = ET.fromstring("<a/>")
        assert pretty_print(elem).startswith("<?xml")
        assert not pretty_print(elem, xml_declaration=False).startswith("<?xml")

    def test_indentation(self):
        import xml.etree.ElementTree as ET

        elem = ET.fromstring("<a><b><c/></b></a>")
        out = pretty_print(elem, xml_declaration=False)
        assert out == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_strip_whitespace_nodes(self):
        import xml.etree.ElementTree as ET

        elem = ET.fromstring("<a>\n  <b/>\n</a>")
        strip_whitespace_nodes(elem)
        assert elem.text is None and elem[0].tail is None


class TestIdGen:
    def test_sequential(self):
        ids = SequentialIds("a")
        assert [ids.next() for _ in range(3)] == ["a1", "a2", "a3"]

    def test_namespaced(self):
        gen = IdGenerator()
        assert gen.next("task") == "task1"
        assert gen.next("task") == "task2"
        assert gen.next("job") == "job1"

    def test_thread_safety(self):
        ids = SequentialIds("x")
        seen = []
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                value = ids.next()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 1600
