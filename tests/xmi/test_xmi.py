"""XMI writer/reader tests: Fig. 7 structure and model roundtrips."""

import pytest

from repro.apps.floyd.model import build_fig3_model, build_fig5_model
from repro.core.uml import ActivityBuilder, Model
from repro.core.xmi import XmiReadError, read_graphs, read_model, write_graph, write_model
from repro.util.xmlutil import parse_prefixed


def fig3():
    return build_fig3_model(n_workers=5)


class TestWriterStructure:
    def test_fig7_vocabulary(self):
        xmi = write_graph(fig3())
        # the elements of the paper's Fig. 7 fragment, verbatim
        for token in (
            "<UML:ActionState",
            "<UML:TaggedValue",
            "<UML:TaggedValue.type>",
            "<UML:TagDefinition",
            "xmi.idref",
            "<UML:StateVertex.outgoing>",
            "<UML:StateVertex.incoming>",
            "<UML:Transition",
            "isSpecification=\"false\"",
            "isDynamic=\"false\"",
            "dataValue=\"1000\"",
            "dataValue=\"RUN_AS_THREAD_IN_TM\"",
            "dataValue=\"tctask.jar\"",
            "dataValue=\"org.jhpc.cn2.trnsclsrtask.TCTask\"",
        ):
            assert token in xmi, f"missing {token}"

    def test_xmi_structure_nesting(self):
        xmi = write_graph(fig3())
        root = parse_prefixed(xmi)
        assert root.tag == "XMI"
        assert root.get("xmi.version") == "1.2"
        assert root.find("XMI.header") is not None
        content = root.find("XMI.content")
        assert content is not None
        assert content.find("UML.Model") is not None

    def test_deterministic_output(self):
        assert write_graph(fig3()) == write_graph(fig3())

    def test_tag_definitions_declared_once(self):
        xmi = write_graph(fig3())
        root = parse_prefixed(xmi)
        defs = [
            e for e in root.iter("UML.TagDefinition") if e.get("xmi.id") is not None
        ]
        names = [e.get("name") for e in defs]
        assert len(names) == len(set(names))
        assert "jar" in names and "pvalue0" in names

    def test_id_integrity(self):
        xmi = write_graph(fig3())
        root = parse_prefixed(xmi)
        ids = set()
        refs = set()
        for elem in root.iter():
            if elem.get("xmi.id"):
                assert elem.get("xmi.id") not in ids, "duplicate xmi.id"
                ids.add(elem.get("xmi.id"))
            if elem.get("xmi.idref"):
                refs.add(elem.get("xmi.idref"))
        assert refs <= ids, f"dangling idrefs: {refs - ids}"

    def test_dynamic_action_state(self):
        xmi = write_graph(build_fig5_model())
        assert 'isDynamic="true"' in xmi
        assert 'dynamicMultiplicity="0..*"' in xmi
        assert "<UML:ArgListsExpression" in xmi

    def test_transition_endpoints(self):
        xmi = write_graph(fig3())
        root = parse_prefixed(xmi)
        transitions = [
            e for e in root.iter("UML.Transition") if e.get("xmi.id") is not None
        ]
        # init->split, split->fork, 5x fork->w, 5x w->join, join->joiner, joiner->final
        assert len(transitions) == 14
        for t in transitions:
            assert t.find("UML.Transition.source") is not None
            assert t.find("UML.Transition.target") is not None


class TestRoundtrip:
    def test_graph_roundtrip_preserves_everything(self):
        original = fig3()
        restored = read_graphs(write_graph(original))[0]
        assert restored.name == original.name
        assert [v.name for v in restored.vertices] == [v.name for v in original.vertices]
        assert restored.action_dependencies() == original.action_dependencies()
        for a, b in zip(original.action_states(), restored.action_states()):
            assert a.tags_dict() == b.tags_dict()

    def test_dynamic_roundtrip(self):
        original = build_fig5_model()
        restored = read_graphs(write_graph(original))[0]
        worker = restored.find("tctask")
        assert worker.is_dynamic
        assert worker.dynamic_multiplicity == "0..*"
        assert worker.dynamic_arguments == original.find("tctask").dynamic_arguments

    def test_multi_package_model(self):
        m = Model("M")
        p1 = m.new_package("p1")
        p2 = m.new_package("p2")
        for p, label in ((p1, "A"), (p2, "B")):
            b = ActivityBuilder(label)
            t = b.task("t", jar="x.jar", cls="X")
            b.chain(b.initial(), t, b.final())
            p.add_graph(b.build())
        restored = read_model(write_model(m))
        assert [p.name for p in restored.packages] == ["p1", "p2"]
        assert [g.name for g in restored.all_graphs()] == ["A", "B"]

    def test_roundtrip_twice_stable(self):
        xmi1 = write_graph(fig3())
        graph = read_graphs(xmi1)[0]
        xmi2 = write_graph(graph)
        assert xmi1 == xmi2


class TestReaderRobustness:
    def test_rejects_non_xmi(self):
        with pytest.raises(XmiReadError):
            read_model("<html/>")

    def test_rejects_missing_model(self):
        with pytest.raises(XmiReadError):
            read_model("<XMI><XMI.content/></XMI>")

    def test_dangling_transition_ref(self):
        bad = """<XMI><XMI.content><UML:Model name="m">
          <UML:Package name="p">
            <UML:ActivityGraph name="g">
              <UML:ActionState xmi.id="a1" name="t"/>
              <UML:Transition xmi.id="t1">
                <UML:Transition.source><UML:ActionState xmi.idref="a1"/></UML:Transition.source>
                <UML:Transition.target><UML:ActionState xmi.idref="GHOST"/></UML:Transition.target>
              </UML:Transition>
            </UML:ActivityGraph>
          </UML:Package>
        </UML:Model></XMI.content></XMI>"""
        with pytest.raises(XmiReadError, match="unknown vertex"):
            read_model(bad)

    def test_dangling_tagdef_ref(self):
        bad = """<XMI><XMI.content><UML:Model name="m">
          <UML:Package name="p">
            <UML:ActivityGraph name="g">
              <UML:ActionState xmi.id="a1" name="t">
                <UML:ModelElement.taggedValue>
                  <UML:TaggedValue xmi.id="tv1" dataValue="x">
                    <UML:TaggedValue.type><UML:TagDefinition xmi.idref="GHOST"/></UML:TaggedValue.type>
                  </UML:TaggedValue>
                </UML:ModelElement.taggedValue>
              </UML:ActionState>
            </UML:ActivityGraph>
          </UML:Package>
        </UML:Model></XMI.content></XMI>"""
        with pytest.raises(XmiReadError, match="TagDefinition"):
            read_model(bad)

    def test_tolerates_inline_tagdef_name(self):
        doc = """<XMI><XMI.content><UML:Model name="m">
          <UML:Package name="p">
            <UML:ActivityGraph name="g">
              <UML:ActionState xmi.id="a1" name="t">
                <UML:ModelElement.taggedValue>
                  <UML:TaggedValue xmi.id="tv1" dataValue="x.jar">
                    <UML:TaggedValue.type><UML:TagDefinition name="jar"/></UML:TaggedValue.type>
                  </UML:TaggedValue>
                </UML:ModelElement.taggedValue>
              </UML:ActionState>
            </UML:ActivityGraph>
          </UML:Package>
        </UML:Model></XMI.content></XMI>"""
        graph = read_graphs(doc)[0]
        assert graph.find("t").get_tag("jar") == "x.jar"

    def test_graphs_directly_under_model(self):
        doc = """<XMI><XMI.content><UML:Model name="m">
          <UML:ActivityGraph name="g">
            <UML:ActionState xmi.id="a1" name="t"/>
          </UML:ActivityGraph>
        </UML:Model></XMI.content></XMI>"""
        model = read_model(doc)
        assert model.packages[0].name == "default"
        assert model.all_graphs()[0].name == "g"
