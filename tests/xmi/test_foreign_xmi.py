"""Tolerance for foreign XMI flavors (Poseidon/ArgoUML-era exporters).

The paper's toolchain consumed XMI from commercial modeling tools; real
exporters differ in details our reader must absorb: dataValue as a child
element instead of an attribute, CallState instead of ActionState,
vendor extension elements, diagram-geometry noise, and attributes we do
not model.
"""

import pytest

from repro.core.transform.xmi2cnx import xmi_to_cnx_native
from repro.core.xmi import read_graphs

FOREIGN = """<XMI xmi.version="1.2">
  <XMI.header>
    <XMI.documentation>
      <XMI.exporter>SomeCommercialTool</XMI.exporter>
      <XMI.exporterVersion>2.1</XMI.exporterVersion>
    </XMI.documentation>
  </XMI.header>
  <XMI.content>
    <UML:Model xmi.id="m1" name="Exported" isSpecification="false"
               isRoot="false" isLeaf="false" isAbstract="false">
      <UML:Namespace.ownedElement>
        <UML:Package xmi.id="p1" name="jobs" isSpecification="false">
          <UML:Namespace.ownedElement>
            <UML:TagDefinition xmi.id="td1" name="jar"/>
            <UML:TagDefinition xmi.id="td2" name="class"/>
            <UML:TagDefinition xmi.id="td3" name="memory"/>
            <UML:TagDefinition xmi.id="td4" name="runmodel"/>
            <UML:ActivityGraph xmi.id="g1" name="Foreign"
                               isSpecification="false">
              <UML:StateMachine.top>
                <UML:CompositeState xmi.id="cs1" name="top">
                  <UML:CompositeState.subvertex>
                    <UML:Pseudostate xmi.id="v0" kind="initial" name=""/>
                    <UML:CallState xmi.id="v1" name="worker"
                                   isSpecification="false" isDynamic="false">
                      <UML:ModelElement.taggedValue>
                        <UML:TaggedValue xmi.id="tv1" isSpecification="false">
                          <UML:TaggedValue.dataValue>work.jar</UML:TaggedValue.dataValue>
                          <UML:TaggedValue.type>
                            <UML:TagDefinition xmi.idref="td1"/>
                          </UML:TaggedValue.type>
                        </UML:TaggedValue>
                        <UML:TaggedValue xmi.id="tv2" dataValue="com.example.Worker">
                          <UML:TaggedValue.type>
                            <UML:TagDefinition xmi.idref="td2"/>
                          </UML:TaggedValue.type>
                        </UML:TaggedValue>
                        <UML:TaggedValue xmi.id="tv3" dataValue="500">
                          <UML:TaggedValue.type>
                            <UML:TagDefinition xmi.idref="td3"/>
                          </UML:TaggedValue.type>
                        </UML:TaggedValue>
                        <UML:TaggedValue xmi.id="tv4" dataValue="RUN_AS_THREAD_IN_TM">
                          <UML:TaggedValue.type>
                            <UML:TagDefinition xmi.idref="td4"/>
                          </UML:TaggedValue.type>
                        </UML:TaggedValue>
                      </UML:ModelElement.taggedValue>
                    </UML:CallState>
                    <UML:FinalState xmi.id="v2" name="end"/>
                  </UML:CompositeState.subvertex>
                </UML:CompositeState>
              </UML:StateMachine.top>
              <UML:StateMachine.transitions>
                <UML:Transition xmi.id="t1" isSpecification="false">
                  <UML:Transition.source><UML:Pseudostate xmi.idref="v0"/></UML:Transition.source>
                  <UML:Transition.target><UML:CallState xmi.idref="v1"/></UML:Transition.target>
                </UML:Transition>
                <UML:Transition xmi.id="t2" isSpecification="false">
                  <UML:Transition.source><UML:CallState xmi.idref="v1"/></UML:Transition.source>
                  <UML:Transition.target><UML:FinalState xmi.idref="v2"/></UML:Transition.target>
                </UML:Transition>
              </UML:StateMachine.transitions>
            </UML:ActivityGraph>
          </UML:Namespace.ownedElement>
        </UML:Package>
      </UML:Namespace.ownedElement>
    </UML:Model>
  </XMI.content>
  <XMI.extensions xmi.extender="SomeCommercialTool">
    <diagramGeometry>ignored vendor noise</diagramGeometry>
  </XMI.extensions>
</XMI>"""


class TestForeignFlavor:
    def test_reads_callstate_as_action(self):
        graph = read_graphs(FOREIGN)[0]
        worker = graph.find("worker")
        assert worker.kind == "action"

    def test_reads_child_element_datavalue(self):
        graph = read_graphs(FOREIGN)[0]
        assert graph.find("worker").get_tag("jar") == "work.jar"
        assert graph.find("worker").get_tag("class") == "com.example.Worker"

    def test_transitions_resolved(self):
        graph = read_graphs(FOREIGN)[0]
        assert graph.action_dependencies() == {"worker": []}
        assert len(graph.transitions) == 2

    def test_extensions_ignored(self):
        # vendor extension elements must not break anything
        assert read_graphs(FOREIGN)[0].name == "Foreign"

    def test_full_native_transform(self):
        doc = xmi_to_cnx_native(FOREIGN)
        task = doc.client.jobs[0].find("worker")
        assert task.jar == "work.jar"
        assert task.cls == "com.example.Worker"
        assert task.task_req.memory == 500

    def test_xslt_transform_rejects_callstate_flavor(self):
        from repro.core.cnx import CnxParseError
        from repro.core.transform.xmi2cnx import xmi_to_cnx

        # The stylesheet intentionally targets the Fig. 7 vocabulary
        # (UML:ActionState); a CallState-flavored export yields an empty
        # job which the CNX parser rejects loudly rather than running a
        # silently-empty client.  The native path is the tolerant one.
        with pytest.raises(CnxParseError, match="no <task>"):
            xmi_to_cnx(FOREIGN)
